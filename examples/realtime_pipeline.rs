//! The paper's real-time computing application (Section 3, Figure 3):
//! partition a deadline-bounded task chain, map it onto a bus-based
//! shared-memory machine, and stream task instances through it.
//!
//! Run with:
//!
//! ```text
//! cargo run --example realtime_pipeline
//! ```

use tgp::graph::Weight;
use tgp::realtime::{admit, RealTimeTask, Strategy};
use tgp::shmem::machine::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sensor-processing task maximally divided into twelve subtasks;
    // dependency weights mix traffic volume with reliability sensitivity
    // (noisier links are costlier to cut), exactly as §3 describes.
    let durations = [6, 9, 4, 7, 3, 8, 5, 9, 2, 6, 7, 4];
    let dep_costs = [20, 3, 45, 12, 9, 30, 2, 25, 14, 5, 18];
    let deadline = Weight::new(18);
    let task = RealTimeTask::new(&durations, &dep_costs, deadline)?;

    for strategy in [
        Strategy::MinBandwidth,
        Strategy::MinBottleneck,
        Strategy::MinProcessors,
        Strategy::Lexicographic,
    ] {
        println!("== strategy: {strategy:?} ==");
        let part = task.partition(strategy)?;
        print!("{}", part.render());

        let machine = Machine::bus(8)?;
        let report = admit(&task, &part, &machine, 100)?;
        println!(
            "streamed 100 instances: makespan {}  throughput {:.4}/unit  bus utilization {:.3}",
            report.makespan,
            report.throughput(),
            report.interconnect_utilization()
        );
        println!(
            "mean processor utilization {:.3}  total bus traffic {}\n",
            report.mean_utilization(),
            report.total_traffic
        );
    }

    // Admission control in action: a machine that is too small is
    // rejected before anything runs.
    let part = task.partition(Strategy::MinBandwidth)?;
    let tiny = Machine::bus(1)?;
    match admit(&task, &part, &tiny, 10) {
        Err(e) => println!("admission on a 1-processor machine rejected: {e}"),
        Ok(_) => unreachable!("partition needs more than one processor"),
    }
    Ok(())
}
