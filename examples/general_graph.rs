//! Partitioning a *general* process graph — the route the paper's
//! conclusion sketches: "more general cases may be approximated by
//! generating a linear or tree supergraph of the original process graph."
//!
//! We build a 2D mesh of communicating processes (a stencil computation),
//! try all three super-graph approximations, and render the winning
//! partition as Graphviz DOT.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example general_graph
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tgp::core::approx::{partition_process_graph, partition_process_graph_best, ApproxMethod};
use tgp::graph::{dot, ProcessGraph, Weight};

/// A `rows × cols` mesh: process (r, c) talks to its right and down
/// neighbours, with mildly non-uniform weights (a refined region in the
/// middle works harder).
fn mesh(rows: usize, cols: usize, seed: u64) -> ProcessGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| r * cols + c;
    let mut nodes = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let refined = (rows / 3..2 * rows / 3).contains(&r);
        for _ in 0..cols {
            nodes.push(if refined {
                rng.gen_range(20..40)
            } else {
                rng.gen_range(2..8)
            });
        }
    }
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), rng.gen_range(1..10)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), rng.gen_range(1..10)));
            }
        }
    }
    ProcessGraph::from_raw(&nodes, &edges).expect("mesh is connected and consistent")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = mesh(9, 9, 0x9E5);
    let bound = Weight::new(g.total_weight().get() / 5);
    println!(
        "mesh process graph: {} processes, {} channels, total work {}, bound {}",
        g.len(),
        g.edge_count(),
        g.total_weight(),
        bound
    );

    println!("\nper-method results (true cut cost on the mesh):");
    for method in ApproxMethod::ALL {
        let part = partition_process_graph(&g, bound, method)?;
        println!(
            "  {method:?}: {} parts, cut weight {}, heaviest part {}",
            part.parts,
            part.cut_weight,
            part.max_part_weight()
        );
    }

    let best = partition_process_graph_best(&g, bound)?;
    println!(
        "\nwinner: {:?} with cut weight {} over {} parts",
        best.method, best.cut_weight, best.parts
    );

    println!("\nGraphviz DOT of the winning partition (dashed = cut):");
    print!("{}", dot::process_to_dot(&g, Some(&best.part_of)));
    Ok(())
}
