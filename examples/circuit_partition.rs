//! The paper's distributed discrete-event simulation application
//! (Section 3): measure a logic circuit's activity, approximate its
//! process graph by a linear super-graph, partition it with the paper's
//! bandwidth-minimization algorithm, and compare against a naive block
//! split.
//!
//! Run with:
//!
//! ```text
//! cargo run --example circuit_partition
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp::dds::generators::{johnson_counter, shift_register};
use tgp::dds::parallel::simulate_parallel;
use tgp::dds::partition::{partition_circuit, partition_circuit_block};
use tgp::dds::sim::simulate_activity;
use tgp::graph::Weight;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuits = vec![
        ("johnson_counter(64)", johnson_counter(64)?),
        ("shift_register(128)", shift_register(128)?),
    ];
    for (name, circuit) in circuits {
        println!("== {name} ({} gates) ==", circuit.len());
        // Measure activity under 500 cycles of random stimulus.
        let profile = simulate_activity(&circuit, 500, &mut SmallRng::seed_from_u64(42));
        println!(
            "measured: {} evaluations, {} messages over {} wires",
            profile.total_work(),
            profile.total_messages(),
            circuit.wires().len()
        );

        // Target roughly four processors.
        let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
        let bound = Weight::new(total / 4 + total / 16);
        let smart = partition_circuit(&circuit, &profile, bound)?;
        let block = partition_circuit_block(&circuit, &profile, smart.processors);

        println!("processors: {}", smart.processors);
        println!(
            "  algorithm : inter-processor messages {:>6}  locality {:.3}  imbalance {:.3}",
            smart.inter_messages,
            smart.locality(),
            smart.load_imbalance()
        );
        println!(
            "  block     : inter-processor messages {:>6}  locality {:.3}  imbalance {:.3}",
            block.inter_messages,
            block.locality(),
            block.load_imbalance()
        );

        // Conservative distributed simulation: how much synchronization
        // (null-message) traffic does each placement induce?
        let ps = simulate_parallel(&circuit, &smart, 500, &mut SmallRng::seed_from_u64(42));
        let pb = simulate_parallel(&circuit, &block, 500, &mut SmallRng::seed_from_u64(42));
        println!(
            "  conservative DES: {} cross-LP channels / {:.1}% null traffic (algorithm) vs {} / {:.1}% (block)",
            ps.channels,
            100.0 * ps.sync_overhead(),
            pb.channels,
            100.0 * pb.sync_overhead()
        );
        println!();
    }
    Ok(())
}
