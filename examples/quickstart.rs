//! Quickstart: partition a linear task graph for a shared-memory machine.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tgp::core::bandwidth::analyze_bandwidth;
use tgp::core::pipeline::{partition_chain, partition_tree, tree_from_path};
use tgp::graph::{dot, PathGraph, Weight};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ten-stage pipeline: vertex weights are per-stage instruction
    // counts, edge weights are message volumes between stages.
    let chain = PathGraph::from_raw(
        &[12, 7, 9, 14, 4, 11, 6, 10, 8, 5],
        &[40, 12, 95, 23, 7, 61, 18, 33, 26],
    )?;
    let bound = Weight::new(25);

    println!("== bandwidth minimization (Section 2.3, O(n + p log q)) ==");
    let part = partition_chain(&chain, bound)?;
    for (i, seg) in part.segments.iter().enumerate() {
        println!(
            "  processor {i}: tasks {}..={} (load {})",
            seg.start, seg.end, seg.weight
        );
    }
    println!(
        "  cut weight (bus traffic): {}   bottleneck link: {}",
        part.bandwidth, part.bottleneck
    );

    println!("\n== instance statistics (the Figure 2 quantities) ==");
    let (_, stats) = analyze_bandwidth(&chain, bound)?;
    println!(
        "  n = {}  p = {}  q = {:.2}  p·log2 q = {:.1}  vs n·log2 n = {:.1}",
        stats.n, stats.p, stats.q_bar, stats.p_log_q, stats.n_log_n
    );

    println!("\n== the same chain through the tree workflow (2.1 + 2.2) ==");
    let tree = tree_from_path(&chain);
    let tp = partition_tree(&tree, bound)?;
    println!(
        "  processors: {}   bottleneck: {}   bandwidth: {}",
        tp.processors, tp.bottleneck, tp.bandwidth
    );

    println!("\n== Graphviz rendering of the bandwidth partition ==");
    print!("{}", dot::path_to_dot(&chain, Some(&part.cut)));
    Ok(())
}
