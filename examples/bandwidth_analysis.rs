//! A miniature of the paper's Figure 2 study: how the adaptive cost term
//! `p log q` behaves as the load bound `K` sweeps from tight to loose on
//! one random chain.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bandwidth_analysis
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp::core::bandwidth::analyze_bandwidth;
use tgp::graph::generators::{random_chain, WeightDist};
use tgp::graph::Weight;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 20_000;
    let mut rng = SmallRng::seed_from_u64(7);
    let chain = random_chain(
        n,
        WeightDist::Uniform { lo: 1, hi: 100 },
        WeightDist::Uniform { lo: 1, hi: 1000 },
        &mut rng,
    );
    let lo = chain.max_node_weight().get();
    let hi = chain.total_weight().get();
    println!("chain: n = {n}, max vertex weight = {lo}, total = {hi}");
    println!(
        "{:>12} {:>8} {:>9} {:>12} {:>9} {:>10} {:>10}",
        "K", "p", "q", "p·log2 q", "ratio", "cut |S|", "cut β(S)"
    );
    // Geometric sweep over the feasible range of K.
    let points = 14;
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (points as f64 - 1.0));
    for i in 0..points {
        let k = Weight::new((lo as f64 * ratio.powi(i)).round() as u64);
        let (cut, stats) = analyze_bandwidth(&chain, k)?;
        println!(
            "{:>12} {:>8} {:>9.2} {:>12.1} {:>9.4} {:>10} {:>10}",
            k.get(),
            stats.p,
            stats.q_bar,
            stats.p_log_q,
            stats.advantage_ratio(),
            cut.len(),
            stats.cut_weight
        );
    }
    println!();
    println!("reading: the ratio column is p·log2 q / n·log2 n — the paper's");
    println!("adaptivity claim is that it stays well below 1 and dips at both ends.");
    Ok(())
}
