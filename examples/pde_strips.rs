//! The paper's §1 motivating workload: an iterative PDE solver whose
//! domain is decomposed "into strips of grid points of simple iterative
//! calculations where each strip needs data from neighbouring strips".
//!
//! We build the strip chain (non-uniform strip sizes, as produced by local
//! mesh refinement), partition it with the paper's bandwidth-minimization
//! algorithm, and run the iteration loop on a bus-based shared-memory
//! machine, comparing against a blind equal-count block split.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pde_strips
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tgp::baselines::block::block_partition;
use tgp::core::pipeline::{partition_chain, tree_from_path};
use tgp::graph::{PathGraph, Weight};
use tgp::shmem::machine::Machine;
use tgp::shmem::onepass::simulate_onepass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 400 strips; refined regions have many more grid points. Work per
    // strip = points (one update per point per iteration); interface
    // exchange = boundary cells × 8 bytes, here abstracted to "cells".
    let mut rng = SmallRng::seed_from_u64(0x9DE);
    let strips: Vec<u64> = (0..400)
        .map(|i| {
            let refined = (100..150).contains(&i) || (300..320).contains(&i);
            if refined {
                rng.gen_range(400..800)
            } else {
                rng.gen_range(40..80)
            }
        })
        .collect();
    let interfaces: Vec<u64> = (0..399).map(|_| rng.gen_range(8..64)).collect();
    let chain = PathGraph::from_raw(&strips, &interfaces)?;

    let total = chain.total_weight().get();
    let bound = Weight::new(total / 8 + chain.max_node_weight().get());
    println!(
        "domain: {} strips, {} total points, per-processor bound {}",
        chain.len(),
        total,
        bound
    );

    let part = partition_chain(&chain, bound)?;
    let blocks = block_partition(&chain, part.processors);
    println!(
        "partition: {} processors; interface traffic {} (algorithm) vs {} (block split)",
        part.processors,
        part.bandwidth,
        chain.cut_weight(&blocks)?
    );

    // The iteration loop: each sweep is one compute-and-exchange round.
    let tree = tree_from_path(&chain);
    let machine = Machine::bus(part.processors)?;
    let iterations = 1_000u64;
    for (name, cut) in [("algorithm", &part.cut), ("block split", &blocks)] {
        let round = simulate_onepass(&tree, cut, &machine)?;
        println!(
            "{name:<12}: per-sweep makespan {:>6}  → {iterations} sweeps take {:>9}  \
             (bus busy {:.1}%, worst strip-set load {})",
            round.makespan,
            round.makespan * iterations,
            100.0 * round.interconnect_utilization(),
            round.processor_busy.iter().max().unwrap()
        );
    }

    // Sensitivity: how does the processor count react to the bound?
    println!("\nbound sweep (K → processors, interface traffic):");
    for div in [2u64, 4, 8, 16, 32] {
        let k = Weight::new(total / div + chain.max_node_weight().get());
        let p = partition_chain(&chain, k)?;
        println!(
            "  K = {:>7} → {:>3} processors, traffic {:>5}",
            k, p.processors, p.bandwidth
        );
    }
    Ok(())
}
