//! The paper's motivating use case for *tree* task graphs:
//! "algorithms and computations of divide-and-conquer nature form tree
//! type structures" (§1). We model a mergesort-style computation: a
//! binary task tree whose leaves sort base blocks and whose internal
//! nodes merge their children's results; edge weights are the data
//! volumes flowing up.
//!
//! The composed workflow (bottleneck minimization → contraction →
//! processor minimization) partitions the tree, and the shared-memory
//! simulator executes one pass of it against a naive "cut the top levels"
//! partition.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example divide_and_conquer
//! ```

use tgp::core::pipeline::partition_tree;
use tgp::core::procmin::proc_min;
use tgp::graph::{CutSet, EdgeId, NodeId, Tree, TreeEdge, Weight};
use tgp::shmem::machine::Machine;
use tgp::shmem::onepass::simulate_onepass;

/// Builds the mergesort task tree over `elements` items with leaf blocks
/// of `base` items. Node weight ≈ merge cost (n log-ish), edge weight =
/// data volume sent to the parent.
fn mergesort_tree(elements: u64, base: u64) -> Tree {
    fn build(span: u64, base: u64, nodes: &mut Vec<Weight>, edges: &mut Vec<TreeEdge>) -> NodeId {
        // Merge cost at this node: proportional to span (a single merge
        // pass); leaves pay span * 4 for the base sort.
        let id = NodeId::new(nodes.len());
        if span <= base {
            nodes.push(Weight::new(span * 4));
            return id;
        }
        nodes.push(Weight::new(span));
        let placeholder = nodes.len() - 1;
        let left = build(span / 2, base, nodes, edges);
        let right = build(span - span / 2, base, nodes, edges);
        // Children send their sorted halves up.
        edges.push(TreeEdge::new(
            NodeId::new(placeholder),
            left,
            Weight::new(span / 2),
        ));
        edges.push(TreeEdge::new(
            NodeId::new(placeholder),
            right,
            Weight::new(span - span / 2),
        ));
        id
    }
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    build(elements, base, &mut nodes, &mut edges);
    Tree::from_edges(nodes, edges).expect("construction yields a valid tree")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = mergesort_tree(4096, 256);
    println!(
        "mergesort task tree: {} tasks, total work {}",
        tree.len(),
        tree.total_weight()
    );

    let bound = Weight::new(tree.total_weight().get() / 6);
    let part = partition_tree(&tree, bound)?;
    println!(
        "\ncomposed workflow (Alg. 2.1 + 2.2): {} processors, bottleneck {}, bandwidth {}",
        part.processors, part.bottleneck, part.bandwidth
    );
    let pm = proc_min(&tree, bound)?;
    println!(
        "processor minimization alone would also need {} processors",
        pm.component_count
    );

    // Naive comparison: cut the two top-level edges (subtree-per-branch).
    let naive = CutSet::new(vec![
        EdgeId::new(tree.edge_count() - 1),
        EdgeId::new(tree.edge_count() - 2),
    ]);
    let machine = Machine::bus(part.processors.max(3))?;
    let smart_run = simulate_onepass(&tree, &part.cut, &machine)?;
    let naive_run = simulate_onepass(&tree, &naive, &machine)?;
    println!(
        "\none pass on a bus machine ({} processors):",
        machine.processors()
    );
    println!(
        "  algorithm : makespan {:>6}, traffic {:>6}, imbalance {:.2}",
        smart_run.makespan,
        smart_run.total_traffic,
        smart_run.load_imbalance()
    );
    println!(
        "  top-split : makespan {:>6}, traffic {:>6}, imbalance {:.2}",
        naive_run.makespan,
        naive_run.total_traffic,
        naive_run.load_imbalance()
    );
    Ok(())
}
