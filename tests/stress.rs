//! Large-scale stress tests, `#[ignore]`d by default. Run with
//! `cargo test --release --test stress -- --ignored`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp::baselines::nicol::nicol_bandwidth_cut;
use tgp::core::bandwidth::{analyze_bandwidth, min_bandwidth_cut_window};
use tgp::core::pipeline::partition_tree;
use tgp::core::procmin::proc_min;
use tgp::graph::generators::{random_chain, random_tree, WeightDist};
use tgp::graph::Weight;

const DIST: WeightDist = WeightDist::Uniform { lo: 1, hi: 100 };
const EDGE: WeightDist = WeightDist::Uniform { lo: 1, hi: 1000 };

#[test]
#[ignore = "multi-second large-scale run"]
fn five_million_node_chain_partitions_correctly() {
    let n = 5_000_000;
    let chain = random_chain(n, DIST, EDGE, &mut SmallRng::seed_from_u64(1));
    let k = Weight::new(chain.total_weight().get() / 1000);
    let (cut, stats) = analyze_bandwidth(&chain, k).unwrap();
    assert!(chain.is_feasible_cut(&cut, k).unwrap());
    assert!(stats.p > 0);
    // Cross-check against the independent O(n) DP at this scale.
    let reference = min_bandwidth_cut_window(&chain, k).unwrap();
    assert_eq!(
        chain.cut_weight(&cut).unwrap(),
        chain.cut_weight(&reference).unwrap()
    );
    // And the external baseline.
    let baseline = nicol_bandwidth_cut(&chain, k).unwrap();
    assert_eq!(
        chain.cut_weight(&cut).unwrap(),
        chain.cut_weight(&baseline).unwrap()
    );
}

#[test]
#[ignore = "multi-second large-scale run"]
fn two_million_node_tree_pipeline() {
    let n = 2_000_000;
    let tree = random_tree(n, DIST, EDGE, &mut SmallRng::seed_from_u64(2));
    let k = Weight::new(tree.total_weight().get() / 256);
    let part = partition_tree(&tree, k).unwrap();
    assert!(part.components.is_feasible(k));
    assert_eq!(part.processors, part.cut.len() + 1);
    // Deep-tree safety: procmin alone as well.
    let pm = proc_min(&tree, k).unwrap();
    assert!(pm.component_count <= part.processors + part.cut.len() + 1);
}

#[test]
#[ignore = "multi-second large-scale run"]
fn degenerate_deep_path_tree_at_scale() {
    // A pure path as a tree: maximal recursion depth risk.
    let n = 1_000_000;
    let nodes = vec![1u64; n];
    let edges: Vec<(usize, usize, u64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
    let tree = tgp::graph::Tree::from_raw(&nodes, &edges).unwrap();
    let r = proc_min(&tree, Weight::new(1000)).unwrap();
    assert_eq!(r.component_count, n.div_ceil(1000));
}
