//! Experiment T1 — Theorem 1's NP-completeness reduction, made executable
//! and property-tested in both directions.

use proptest::prelude::*;

use tgp::core::knapsack::{
    knapsack_to_star, min_star_bandwidth_cut, star_cut_decision, star_to_knapsack, KnapsackInstance,
};
use tgp::graph::Weight;

fn arb_instance() -> impl Strategy<Value = KnapsackInstance> {
    (1usize..10).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..15, n),
            prop::collection::vec(0u64..25, n),
            1u64..60,
        )
            .prop_map(|(w, p, cap)| {
                // Capacity at least the heaviest item so the star instance
                // is feasible (the paper assumes K >= max vertex weight).
                let cap = cap.max(*w.iter().max().unwrap());
                KnapsackInstance::new(w, p, cap)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Forward direction: the optimal star cut weight complements the
    /// optimal knapsack profit (δ(S*) = Σp − profit*).
    #[test]
    fn optimal_cut_complements_optimal_packing(inst in arb_instance()) {
        let star = knapsack_to_star(&inst);
        let cut = min_star_bandwidth_cut(&star, Weight::new(inst.capacity)).unwrap();
        let cut_weight = star.cut_weight(&cut).unwrap().get();
        prop_assert_eq!(inst.total_profit() - inst.solve().profit, cut_weight);
        // The cut is feasible for the load bound.
        prop_assert!(star
            .components(&cut)
            .unwrap()
            .is_feasible(Weight::new(inst.capacity)));
    }

    /// Decision form across the full budget range: the star admits a cut
    /// of weight ≤ Σp − k₁ iff the knapsack reaches profit k₁ — exactly
    /// the paper's iff.
    #[test]
    fn decision_equivalence(inst in arb_instance(), k1_frac in 0u64..=100) {
        let star = knapsack_to_star(&inst);
        let k1 = inst.total_profit() * k1_frac / 100;
        let budget = inst.total_profit() - k1;
        let lhs = star_cut_decision(&star, Weight::new(budget), Weight::new(inst.capacity))
            .unwrap();
        let rhs = inst.solve().profit >= k1;
        prop_assert_eq!(lhs, rhs);
    }

    /// Round trip: star → knapsack → star preserves the instance.
    #[test]
    fn reduction_round_trips(inst in arb_instance()) {
        let star = knapsack_to_star(&inst);
        let back = star_to_knapsack(&star, Weight::new(inst.capacity));
        prop_assert_eq!(back, inst);
    }
}

#[test]
fn worked_example_from_the_proof() {
    // Items i with weights w_i and profits p_i become leaves v_i with
    // ω(v_i) = w_i and edges δ(e_i) = p_i; the centre u has ω(u) = 0.
    let inst = KnapsackInstance::new(vec![3, 5, 7], vec![10, 20, 30], 8);
    let star = knapsack_to_star(&inst);
    assert_eq!(star.len(), 4);
    assert_eq!(star.node_weight(tgp::graph::NodeId::new(0)), Weight::ZERO);
    // Best packing within capacity 8: items {0, 1} (weight 8, profit 30).
    let sol = inst.solve();
    assert_eq!(sol.profit, 30);
    assert_eq!(sol.items, vec![0, 1]);
    // So the optimal cut severs exactly item 2's edge: weight 30.
    let cut = min_star_bandwidth_cut(&star, Weight::new(8)).unwrap();
    assert_eq!(star.cut_weight(&cut).unwrap(), Weight::new(30));
}
