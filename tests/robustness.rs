//! Failure injection and boundary-condition tests across the stack:
//! extreme weights, degenerate graphs, exact-boundary bounds, and
//! determinism guarantees.

use tgp::core::bandwidth::{analyze_bandwidth, min_bandwidth_cut};
use tgp::core::bottleneck::min_bottleneck_cut;
use tgp::core::pipeline::{partition_chain, partition_tree};
use tgp::core::procmin::proc_min;
use tgp::core::PartitionError;
use tgp::graph::{GraphError, PathGraph, Tree, Weight};

#[test]
fn weight_overflow_is_rejected_at_construction() {
    assert_eq!(
        PathGraph::from_raw(&[u64::MAX, 2], &[1]),
        Err(GraphError::WeightOverflow)
    );
    assert_eq!(
        Tree::from_raw(&[u64::MAX - 1, 2], &[(0, 1, 1)]),
        Err(GraphError::WeightOverflow)
    );
}

#[test]
fn huge_but_valid_weights_work() {
    // The crate-wide budget: all weights together must stay below
    // u64::MAX. Values near that budget must work without overflow.
    let big = u64::MAX / 8;
    let p = PathGraph::from_raw(&[big, big, big], &[2 * big, 2 * big]).unwrap();
    // K below the pair sum forces isolating cuts.
    let cut = min_bandwidth_cut(&p, Weight::new(big)).unwrap();
    assert_eq!(cut.len(), 2);
    assert_eq!(p.cut_weight(&cut).unwrap(), Weight::new(4 * big));
    // K above the total allows the empty cut.
    let cut = min_bandwidth_cut(&p, Weight::new(3 * big)).unwrap();
    assert!(cut.is_empty());
}

#[test]
fn combined_weight_budget_is_enforced() {
    // Node weights alone fit u64, but nodes + edges together do not:
    // construction must reject rather than let a DP overflow later.
    let big = u64::MAX / 4;
    assert_eq!(
        PathGraph::from_raw(&[big, big, big], &[u64::MAX, u64::MAX]),
        Err(GraphError::WeightOverflow)
    );
    assert_eq!(
        Tree::from_raw(&[big, big], &[(0, 1, u64::MAX)]),
        Err(GraphError::WeightOverflow)
    );
}

#[test]
fn bound_exactly_at_max_vertex_weight_is_feasible() {
    let p = PathGraph::from_raw(&[7, 3, 7], &[1, 1]).unwrap();
    let cut = min_bandwidth_cut(&p, Weight::new(7)).unwrap();
    assert!(p.is_feasible_cut(&cut, Weight::new(7)).unwrap());
    // One unit below is infeasible.
    assert!(matches!(
        min_bandwidth_cut(&p, Weight::new(6)),
        Err(PartitionError::BoundTooSmall { .. })
    ));
}

#[test]
fn bound_exactly_at_total_weight_needs_no_cut() {
    let p = PathGraph::from_raw(&[2, 3, 4], &[9, 9]).unwrap();
    assert!(min_bandwidth_cut(&p, Weight::new(9)).unwrap().is_empty());
    let t = Tree::from_raw(&[2, 3, 4], &[(0, 1, 9), (1, 2, 9)]).unwrap();
    assert!(min_bottleneck_cut(&t, Weight::new(9))
        .unwrap()
        .cut
        .is_empty());
    assert!(proc_min(&t, Weight::new(9)).unwrap().cut.is_empty());
}

#[test]
fn zero_weight_edges_make_free_cuts() {
    let p = PathGraph::from_raw(&[5, 5, 5, 5], &[0, 0, 0]).unwrap();
    let part = partition_chain(&p, Weight::new(10)).unwrap();
    assert_eq!(part.bandwidth, Weight::ZERO);
    assert!(part.segments.iter().all(|s| s.weight <= Weight::new(10)));
}

#[test]
fn zero_weight_vertices_are_legal() {
    let p = PathGraph::from_raw(&[0, 0, 0], &[5, 5]).unwrap();
    let cut = min_bandwidth_cut(&p, Weight::new(0)).unwrap();
    assert!(cut.is_empty(), "all-zero chain fits any bound");
    let t = Tree::from_raw(&[0, 9, 0], &[(0, 1, 1), (1, 2, 1)]).unwrap();
    let r = proc_min(&t, Weight::new(9)).unwrap();
    assert_eq!(r.component_count, 1);
}

#[test]
fn all_equal_weights_have_deterministic_output() {
    let p = PathGraph::from_raw(&[4; 9], &[7; 8]).unwrap();
    let a = min_bandwidth_cut(&p, Weight::new(8)).unwrap();
    let b = min_bandwidth_cut(&p, Weight::new(8)).unwrap();
    assert_eq!(a, b);
    let t = Tree::from_raw(&[4, 4, 4, 4], &[(0, 1, 7), (0, 2, 7), (0, 3, 7)]).unwrap();
    let r1 = partition_tree(&t, Weight::new(8)).unwrap();
    let r2 = partition_tree(&t, Weight::new(8)).unwrap();
    assert_eq!(r1.cut, r2.cut);
}

#[test]
fn single_node_graphs_work_everywhere() {
    let p = PathGraph::from_raw(&[5], &[]).unwrap();
    assert!(min_bandwidth_cut(&p, Weight::new(5)).unwrap().is_empty());
    let (cut, stats) = analyze_bandwidth(&p, Weight::new(5)).unwrap();
    assert!(cut.is_empty());
    assert_eq!(stats.p, 0);
    let t = Tree::from_raw(&[5], &[]).unwrap();
    assert!(min_bottleneck_cut(&t, Weight::new(5))
        .unwrap()
        .cut
        .is_empty());
    assert_eq!(proc_min(&t, Weight::new(5)).unwrap().component_count, 1);
    let part = partition_tree(&t, Weight::new(5)).unwrap();
    assert_eq!(part.processors, 1);
}

#[test]
fn error_messages_name_the_offender() {
    let p = PathGraph::from_raw(&[1, 99, 1], &[1, 1]).unwrap();
    let err = min_bandwidth_cut(&p, Weight::new(50)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("v1"), "{msg}");
    assert!(msg.contains("99"), "{msg}");
    assert!(msg.contains("50"), "{msg}");
}

#[test]
fn alternating_tiny_huge_weights() {
    // Adversarial shape: alternating 1 and K-1 weights produce maximal
    // prime-subpath overlap.
    let n = 101;
    let nodes: Vec<u64> = (0..n).map(|i| if i % 2 == 0 { 1 } else { 9 }).collect();
    let edges: Vec<u64> = (0..n - 1).map(|i| (i % 13 + 1) as u64).collect();
    let p = PathGraph::from_raw(&nodes, &edges).unwrap();
    for k in [10u64, 11, 15, 20, 50] {
        let (cut, stats) = analyze_bandwidth(&p, Weight::new(k)).unwrap();
        assert!(p.is_feasible_cut(&cut, Weight::new(k)).unwrap());
        assert!(stats.r < 2 * stats.p.max(1) || stats.p == 0);
    }
}

#[test]
fn pathological_sorted_weights_still_optimal() {
    // Strictly ascending W-values are the paper's worst case for TEMP_S
    // occupancy; correctness must not degrade.
    let n = 400;
    let nodes = vec![3u64; n];
    let edges: Vec<u64> = (1..n as u64).collect();
    let p = PathGraph::from_raw(&nodes, &edges).unwrap();
    let k = Weight::new(8);
    let cut = min_bandwidth_cut(&p, k).unwrap();
    let oracle = tgp::core::bandwidth::min_bandwidth_cut_oracle(&p, k).unwrap();
    assert_eq!(p.cut_weight(&cut).unwrap(), p.cut_weight(&oracle).unwrap());
}
