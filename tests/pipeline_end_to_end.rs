//! End-to-end integration across the whole stack: partition with
//! `tgp-core`, execute on the `tgp-shmem` machine, and check that the
//! static objectives (bandwidth, bottleneck, load bound) show up as the
//! observed run-time behaviour the paper promises.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp::baselines::block::block_partition;
use tgp::core::pipeline::{partition_chain, partition_tree};
use tgp::dds::generators::{johnson_counter, shift_register};
use tgp::dds::partition::{partition_circuit, partition_circuit_block};
use tgp::dds::sim::simulate_activity;
use tgp::graph::generators::{random_chain, random_tree, WeightDist};
use tgp::graph::Weight;
use tgp::realtime::{admit, RealTimeTask, Strategy};
use tgp::shmem::machine::{Interconnect, Machine};
use tgp::shmem::onepass::simulate_onepass;
use tgp::shmem::pipeline::{simulate_pipeline, PipelineSpec};

fn chain(n: usize, seed: u64) -> tgp::graph::PathGraph {
    random_chain(
        n,
        WeightDist::Uniform { lo: 1, hi: 50 },
        WeightDist::Uniform { lo: 1, hi: 200 },
        &mut SmallRng::seed_from_u64(seed),
    )
}

#[test]
fn observed_bus_traffic_equals_cut_weight_per_item() {
    let path = chain(80, 1);
    let k = Weight::new(path.total_weight().get() / 5);
    let part = partition_chain(&path, k).unwrap();
    let spec = PipelineSpec::from_partition(&path, &part.cut).unwrap();
    let machine = Machine::bus(part.processors).unwrap();
    let items = 37;
    let report = simulate_pipeline(&spec, &machine, items).unwrap();
    assert_eq!(
        report.total_traffic,
        part.bandwidth.get() * items as u64,
        "every item crosses every cut edge exactly once"
    );
    assert_eq!(
        report.max_link_traffic(),
        part.bottleneck.get() * items as u64
    );
}

#[test]
fn bandwidth_optimal_partition_never_does_worse_on_the_bus() {
    for seed in 0..5 {
        let path = chain(120, seed);
        let k = Weight::new(path.total_weight().get() / 8);
        let part = partition_chain(&path, k).unwrap();
        let blocks = block_partition(&path, part.processors);
        let machine = Machine::bus(part.processors.max(16)).unwrap();
        let smart = simulate_pipeline(
            &PipelineSpec::from_partition(&path, &part.cut).unwrap(),
            &machine,
            100,
        )
        .unwrap();
        let naive = simulate_pipeline(
            &PipelineSpec::from_partition(&path, &blocks).unwrap(),
            &machine,
            100,
        )
        .unwrap();
        assert!(
            smart.total_traffic <= naive.total_traffic,
            "seed {seed}: smart {} vs naive {}",
            smart.total_traffic,
            naive.total_traffic
        );
    }
}

#[test]
fn tree_partition_executes_within_expected_makespan_bounds() {
    for seed in 0..5 {
        let tree = random_tree(
            200,
            WeightDist::Uniform { lo: 1, hi: 50 },
            WeightDist::Uniform { lo: 1, hi: 200 },
            &mut SmallRng::seed_from_u64(seed),
        );
        let k = Weight::new(tree.total_weight().get() / 6);
        let part = partition_tree(&tree, k).unwrap();
        let machine = Machine::bus(part.processors).unwrap();
        let report = simulate_onepass(&tree, &part.cut, &machine).unwrap();
        // Lower bound: the heaviest component must compute.
        let max_comp = part.components.max_weight().get();
        assert!(report.makespan >= max_comp);
        // Upper bound on a unit-speed unit-bandwidth bus: compute plus
        // fully serialized traffic.
        assert!(report.makespan <= max_comp + part.bandwidth.get());
        assert_eq!(report.total_traffic, part.bandwidth.get());
    }
}

#[test]
fn crossbar_is_never_slower_than_the_bus() {
    let tree = random_tree(
        300,
        WeightDist::Uniform { lo: 1, hi: 20 },
        WeightDist::Uniform { lo: 1, hi: 500 },
        &mut SmallRng::seed_from_u64(7),
    );
    let k = Weight::new(tree.total_weight().get() / 10);
    let part = partition_tree(&tree, k).unwrap();
    let p = part.processors;
    let bus = simulate_onepass(&tree, &part.cut, &Machine::bus(p).unwrap()).unwrap();
    let xbar = simulate_onepass(
        &tree,
        &part.cut,
        &Machine::new(p, 1, 1, 0, Interconnect::Crossbar).unwrap(),
    )
    .unwrap();
    assert!(xbar.makespan <= bus.makespan);
    assert_eq!(xbar.total_traffic, bus.total_traffic);
}

#[test]
fn realtime_workflow_meets_its_deadline_groups() {
    let durations = [6u64, 9, 4, 7, 3, 8, 5, 9, 2, 6, 7, 4];
    let dep_costs = [20u64, 3, 45, 12, 9, 30, 2, 25, 14, 5, 18];
    let task = RealTimeTask::new(&durations, &dep_costs, Weight::new(18)).unwrap();
    for strategy in [Strategy::MinBandwidth, Strategy::MinBottleneck] {
        let part = task.partition(strategy).unwrap();
        assert!(part.groups.iter().all(|g| g.weight <= Weight::new(18)));
        let machine = Machine::bus(part.processors).unwrap();
        let report = admit(&task, &part, &machine, 25).unwrap();
        assert_eq!(report.items, 25);
        assert_eq!(
            report.total_traffic,
            part.bandwidth.get() * 25,
            "{strategy:?}"
        );
    }
}

#[test]
fn dds_flow_produces_balanced_local_partitions() {
    for circuit in [shift_register(60).unwrap(), johnson_counter(40).unwrap()] {
        let profile = simulate_activity(&circuit, 300, &mut SmallRng::seed_from_u64(3));
        let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
        let bound = total / 3;
        let part = partition_circuit(&circuit, &profile, Weight::new(bound)).unwrap();
        assert!(part.max_load() <= bound);
        // The algorithm should never lose to the blind block split at the
        // same processor count on these linear/circular circuits.
        let block = partition_circuit_block(&circuit, &profile, part.processors);
        assert!(part.inter_messages <= block.inter_messages);
    }
}
