//! Experiment F1 — a worked walkthrough of Algorithm 2.2 in the style of
//! the paper's Figure 1, plus the star base case the paper uses to
//! motivate the algorithm.

use tgp::core::procmin::{proc_min, proc_min_paper};
use tgp::graph::{EdgeId, NodeId, Tree, Weight};

/// The Figure 1 shape: a short spine whose ends carry leaf clusters.
fn figure1_tree() -> Tree {
    // Spine 0-1-2; node 0 has leaves {3, 4}; node 2 has leaves {5, 6}.
    Tree::from_raw(
        &[2, 3, 2, 4, 5, 6, 7],
        &[
            (0, 1, 1),
            (1, 2, 1),
            (0, 3, 1),
            (0, 4, 1),
            (2, 5, 1),
            (2, 6, 1),
        ],
    )
    .expect("figure 1 tree is valid")
}

#[test]
fn loose_bound_needs_one_processor() {
    let t = figure1_tree();
    let r = proc_min(&t, Weight::new(29)).unwrap();
    assert!(r.cut.is_empty());
    assert_eq!(r.component_count, 1);
}

#[test]
fn medium_bound_needs_two_processors() {
    let t = figure1_tree();
    let r = proc_min(&t, Weight::new(15)).unwrap();
    assert_eq!(r.component_count, 2);
    let comps = t.components(&r.cut).unwrap();
    assert!(comps.is_feasible(Weight::new(15)));
}

#[test]
fn tight_bound_fragments_more() {
    let t = figure1_tree();
    let r = proc_min(&t, Weight::new(9)).unwrap();
    // Brute-force optimum for K = 9 is 4 components.
    assert_eq!(r.component_count, 4);
    assert!(t.components(&r.cut).unwrap().is_feasible(Weight::new(9)));
}

#[test]
fn both_implementations_tell_the_same_story() {
    let t = figure1_tree();
    for k in 7..=29 {
        let a = proc_min(&t, Weight::new(k)).unwrap();
        let b = proc_min_paper(&t, Weight::new(k)).unwrap();
        assert_eq!(a.component_count, b.component_count, "K = {k}");
    }
}

#[test]
fn star_base_case_prunes_lightest_first() {
    // §2.2: "If the task graph T is a star graph... sort the leaves in
    // increasing order of weights. Then continue to prune the leaves from
    // the beginning of the list" — equivalently our implementation cuts
    // the *heaviest* leaves to keep the centre cluster within K with the
    // fewest cuts. Centre 0 weight 2; leaves 9, 7, 5, 3; K = 12.
    let star = Tree::from_raw(
        &[2, 9, 7, 5, 3],
        &[(0, 1, 1), (0, 2, 1), (0, 3, 1), (0, 4, 1)],
    )
    .unwrap();
    let r = proc_min(&star, Weight::new(12)).unwrap();
    // Total 26; cutting leaves 9 and 7 leaves 2+5+3 = 10 <= 12 with 3
    // components; no 2-component split fits (26 - 9 = 17 > 12).
    assert_eq!(r.component_count, 3);
    assert!(r.cut.contains(EdgeId::new(0)));
    assert!(r.cut.contains(EdgeId::new(1)));
    let comps = star.components(&r.cut).unwrap();
    assert_eq!(
        comps.weight(comps.component_of(NodeId::new(0))),
        Weight::new(10)
    );
}
