//! Cross-crate agreement: the paper's algorithms, the reference DPs, and
//! the prior-work baselines must agree wherever they solve the same
//! problem. These property tests are the repository's strongest
//! correctness evidence.

use proptest::prelude::*;

use tgp::baselines::bokhari::bokhari_partition;
use tgp::baselines::hansen_lih::hansen_lih_partition;
use tgp::baselines::nicol::nicol_bandwidth_cut;
use tgp::core::bandwidth::{
    min_bandwidth_cut, min_bandwidth_cut_naive, min_bandwidth_cut_oracle, min_bandwidth_cut_window,
};
use tgp::core::bottleneck::{min_bottleneck_cut, min_bottleneck_cut_paper};
use tgp::core::procmin::{proc_min, proc_min_paper};
use tgp::graph::{NodeId, PathGraph, Tree, TreeEdge, Weight};

fn arb_chain() -> impl Strategy<Value = (PathGraph, Weight)> {
    (1usize..120).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..30, n),
            prop::collection::vec(0u64..100, n - 1),
            30u64..200,
        )
            .prop_map(|(nodes, edges, k)| {
                let p = PathGraph::from_raw(&nodes, &edges).expect("dimensions consistent");
                (p, Weight::new(k))
            })
    })
}

fn arb_tree() -> impl Strategy<Value = (Tree, Weight)> {
    (1usize..80).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..30, n),
            prop::collection::vec((0usize..usize::MAX, 0u64..100), n - 1),
            30u64..200,
        )
            .prop_map(|(nodes, raw_edges, k)| {
                let edges: Vec<TreeEdge> = raw_edges
                    .iter()
                    .enumerate()
                    .map(|(i, &(p, w))| {
                        TreeEdge::new(NodeId::new(p % (i + 1)), NodeId::new(i + 1), Weight::new(w))
                    })
                    .collect();
                let weights = nodes.into_iter().map(Weight::new).collect();
                let t = Tree::from_edges(weights, edges).expect("random attachment is a tree");
                (t, Weight::new(k))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// All five bandwidth solvers (four in tgp-core plus the Nicol
    /// baseline) produce feasible cuts of identical weight.
    #[test]
    fn bandwidth_solvers_agree((path, k) in arb_chain()) {
        let temps = min_bandwidth_cut(&path, k).unwrap();
        let naive = min_bandwidth_cut_naive(&path, k).unwrap();
        let oracle = min_bandwidth_cut_oracle(&path, k).unwrap();
        let window = min_bandwidth_cut_window(&path, k).unwrap();
        let nicol = nicol_bandwidth_cut(&path, k).unwrap();
        prop_assert!(path.is_feasible_cut(&temps, k).unwrap());
        prop_assert!(path.is_feasible_cut(&nicol, k).unwrap());
        let w = |c: &tgp::graph::CutSet| path.cut_weight(c).unwrap();
        prop_assert_eq!(w(&temps), w(&oracle));
        prop_assert_eq!(w(&naive), w(&oracle));
        prop_assert_eq!(w(&window), w(&oracle));
        prop_assert_eq!(w(&nicol), w(&oracle));
    }

    /// The optimized bottleneck sweep equals the literal Algorithm 2.1.
    #[test]
    fn bottleneck_implementations_agree((tree, k) in arb_tree()) {
        let fast = min_bottleneck_cut(&tree, k).unwrap();
        let paper = min_bottleneck_cut_paper(&tree, k).unwrap();
        prop_assert_eq!(&fast, &paper);
        prop_assert!(tree.components(&fast.cut).unwrap().is_feasible(k));
        // Feasibility of the found bottleneck is tight: cutting only the
        // strictly lighter edges is infeasible (unless no cut was needed).
        if !fast.cut.is_empty() {
            let lighter: tgp::graph::CutSet = (0..tree.edge_count())
                .map(tgp::graph::EdgeId::new)
                .filter(|&e| tree.edge_weight(e) < fast.bottleneck)
                .collect();
            prop_assert!(!tree.components(&lighter).unwrap().is_feasible(k));
        }
    }

    /// Both processor-minimization implementations are feasible and agree
    /// on the (optimal) component count.
    #[test]
    fn procmin_implementations_agree((tree, k) in arb_tree()) {
        let a = proc_min(&tree, k).unwrap();
        let b = proc_min_paper(&tree, k).unwrap();
        prop_assert_eq!(a.component_count, b.component_count);
        prop_assert!(tree.components(&a.cut).unwrap().is_feasible(k));
        prop_assert!(tree.components(&b.cut).unwrap().is_feasible(k));
    }

    /// Bokhari's DP and the probe method find the same optimum for every
    /// processor count.
    #[test]
    fn chains_on_chains_baselines_agree((path, _k) in arb_chain(), m_seed in 0usize..1000) {
        let n = path.len();
        let m = 1 + m_seed % n;
        let a = bokhari_partition(&path, m).unwrap();
        let b = hansen_lih_partition(&path, m).unwrap();
        prop_assert_eq!(a.bottleneck, b.bottleneck);
        prop_assert_eq!(a.assignment.bottleneck(&path), a.bottleneck);
        prop_assert_eq!(b.assignment.bottleneck(&path), b.bottleneck);
    }
}
