//! The concrete solver implementations behind every registered
//! objective.
//!
//! Each solver declares its schema (graph kind + parameters) and builds
//! its response `Value` with a fixed field order, so the compact
//! rendering is byte-stable across front ends. Response shapes are the
//! ones the CLI has always produced; the registry made them the single
//! source of truth.

use tgp_baselines::bokhari::bokhari_partition;
use tgp_baselines::hansen_lih::hansen_lih_partition;
use tgp_baselines::hetero::{hetero_partition, HeteroArray};
use tgp_baselines::host_satellite::host_satellite_partition;
use tgp_baselines::nicol::nicol_bandwidth_cut;
use tgp_core::approx::{partition_process_graph_best, ApproxMethod};
use tgp_core::bandwidth::{
    min_bandwidth_cut_lexicographic, min_bandwidth_cut_lexicographic_budgeted,
    min_bandwidth_cut_lexicographic_warm,
};
use tgp_core::bottleneck::{min_bottleneck_cut, min_bottleneck_cut_warm};
use tgp_core::budget::Budget;
use tgp_core::pipeline::{partition_chain, partition_chain_budgeted, partition_tree};
use tgp_core::procmin::proc_min;
use tgp_core::tree_bandwidth::min_tree_bandwidth_cut;
use tgp_graph::json::Value;
use tgp_graph::{json, EdgeId, NodeId, Weight};

use crate::error::SolveError;
use crate::registry::Solver;
use crate::request::{parse_request, GraphKind, ParamKind, ParamSpec, Request, Response};

/// Work cap for the pseudo-polynomial `tree-bandwidth` DP: the solve
/// runs in `O(n·K²)` time, so `n·K²` is refused beyond this budget —
/// a handful of JSON bytes must not be able to pin a worker for minutes.
pub const MAX_TREE_BANDWIDTH_COST: u64 = 1 << 32;

/// Largest accepted `speeds` array for `hetero`: the DP sizes its tables
/// by processor count, which a client controls with a few bytes.
pub const MAX_SPEEDS: usize = 4_096;

/// Every objective in the workspace, in the order they are registered
/// (and therefore listed in docs, usage and `/metrics`).
pub(crate) fn all() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(Bandwidth),
        Box::new(Bottleneck),
        Box::new(ProcMin),
        Box::new(Compose),
        Box::new(Lexicographic),
        Box::new(TreeBandwidth),
        Box::new(Approx),
        Box::new(Nicol),
        Box::new(Coc),
        Box::new(Bokhari),
        Box::new(HansenLih),
        Box::new(Hetero),
        Box::new(HostSatellite),
    ]
}

const BOUND_ONLY: &[ParamSpec] = &[ParamSpec::required("bound", ParamKind::U64)];
const PROCESSORS_ONLY: &[ParamSpec] = &[ParamSpec::required("processors", ParamKind::U64)];
const COC_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("processors", ParamKind::U64),
    ParamSpec::optional("algorithm", ParamKind::Str),
];
const HETERO_PARAMS: &[ParamSpec] = &[ParamSpec::required("speeds", ParamKind::U64List)];
const HOST_SATELLITE_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("satellites", ParamKind::U64),
    ParamSpec::optional("root", ParamKind::U64),
];

pub(crate) fn cut_json(cut: impl Iterator<Item = EdgeId>) -> Value {
    Value::Array(cut.map(|e| Value::from(e.index())).collect())
}

/// Renders the `bandwidth` response shape. Shared by the legacy solver
/// and the flat-substrate path so the two stay byte-identical.
pub(crate) fn render_bandwidth(
    bound: Weight,
    part: &tgp_core::pipeline::ChainPartition,
) -> Response {
    Bandwidth::render("bandwidth", bound, part)
}

/// Renders the `bottleneck` response shape from its parts.
pub(crate) fn render_bottleneck(
    bound: Weight,
    cut: &tgp_graph::CutSet,
    bottleneck: Weight,
    components: usize,
) -> Response {
    Response::new(json!({
        "objective": "bottleneck",
        "bound": bound.get(),
        "cut": cut_json(cut.iter()),
        "bottleneck": bottleneck.get(),
        "components": components,
    }))
}

/// Renders the `lexicographic` response shape, computing the derived
/// quantities from any chain view.
pub(crate) fn render_lexicographic<C: tgp_graph::ChainView>(
    chain: &C,
    bound: Weight,
    cut: &tgp_graph::CutSet,
) -> Result<Response, SolveError> {
    Ok(Response::new(json!({
        "objective": "lexicographic",
        "bound": bound.get(),
        "cut": cut_json(cut.iter()),
        "bottleneck": chain.bottleneck(cut).map_err(SolveError::infeasible)?.get(),
        "bandwidth": chain.cut_weight(cut).map_err(SolveError::infeasible)?.get(),
        "processors": cut.len() + 1,
    })))
}

fn bound_of(request: &Request) -> Weight {
    Weight::new(request.params.bound.expect("declared required parameter"))
}

fn usize_param(value: u64, field: &'static str) -> Result<usize, SolveError> {
    usize::try_from(value).map_err(|_| SolveError::InvalidField {
        field: field.into(),
        message: format!("{value} does not fit the platform's address space"),
    })
}

/// `bandwidth` — the paper's headline `O(n + p log q)` chain solver.
struct Bandwidth;

impl Solver for Bandwidth {
    fn name(&self) -> &'static str {
        "bandwidth"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Chain
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "minimum-bandwidth chain partition under a load bound (§2.3, O(n + p log q))"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let part = partition_chain(request.graph.chain(), bound).map_err(SolveError::infeasible)?;
        Ok(Self::render(self.name(), bound, &part))
    }
    fn run_budgeted(&self, request: &Request, budget: &Budget) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let part = partition_chain_budgeted(request.graph.chain(), bound, budget)
            .map_err(SolveError::from_partition)?;
        Ok(Self::render(self.name(), bound, &part))
    }
}

impl Bandwidth {
    fn render(name: &str, bound: Weight, part: &tgp_core::pipeline::ChainPartition) -> Response {
        Response::new(json!({
            "objective": name,
            "bound": bound.get(),
            "cut": cut_json(part.cut.iter()),
            "segments": part
                .segments
                .iter()
                .map(|s| json!({
                    "start": s.start, "end": s.end, "weight": s.weight.get(),
                }))
                .collect::<Vec<_>>(),
            "processors": part.processors,
            "bandwidth": part.bandwidth.get(),
            "bottleneck": part.bottleneck.get(),
        }))
    }
}

/// `bottleneck` — Algorithm 2.1 on trees.
struct Bottleneck;

impl Solver for Bottleneck {
    fn name(&self) -> &'static str {
        "bottleneck"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Tree
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "minimum-bottleneck tree cut under a load bound (Algorithm 2.1)"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let tree = request.graph.tree();
        let r = min_bottleneck_cut(tree, bound).map_err(SolveError::infeasible)?;
        let components = tree
            .components(&r.cut)
            .map_err(SolveError::infeasible)?
            .count();
        Ok(render_bottleneck(bound, &r.cut, r.bottleneck, components))
    }
    fn run_warm(
        &self,
        request: &Request,
        hint_lo: u64,
        hint_hi: u64,
    ) -> Option<Result<Response, SolveError>> {
        let bound = bound_of(request);
        let tree = request.graph.tree();
        let r = min_bottleneck_cut_warm(tree, bound, Weight::new(hint_lo), Weight::new(hint_hi))
            .ok()??;
        let components = tree.components(&r.cut).ok()?.count();
        Some(Ok(Response::new(json!({
            "objective": self.name(),
            "bound": bound.get(),
            "cut": cut_json(r.cut.iter()),
            "bottleneck": r.bottleneck.get(),
            "components": components,
        }))))
    }
}

/// `procmin` — Algorithm 2.2 on trees.
struct ProcMin;

impl Solver for ProcMin {
    fn name(&self) -> &'static str {
        "procmin"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Tree
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "minimum-processor tree partition under a load bound (Algorithm 2.2)"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let r = proc_min(request.graph.tree(), bound).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "bound": bound.get(),
            "cut": cut_json(r.cut.iter()),
            "processors": r.component_count,
        })))
    }
}

/// `compose` — 2.1 then 2.2 over the contracted tree (§3 workflow).
struct Compose;

impl Solver for Compose {
    fn name(&self) -> &'static str {
        "compose"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Tree
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "bottleneck-optimal tree partition with minimal processors (2.1 + 2.2)"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let part = partition_tree(request.graph.tree(), bound).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "bound": bound.get(),
            "cut": cut_json(part.cut.iter()),
            "processors": part.processors,
            "bottleneck": part.bottleneck.get(),
            "bandwidth": part.bandwidth.get(),
        })))
    }
}

/// `lexicographic` — §3 bicriteria on chains.
struct Lexicographic;

impl Solver for Lexicographic {
    fn name(&self) -> &'static str {
        "lexicographic"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Chain
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "chain cut minimizing (bottleneck, bandwidth) lexicographically (§3)"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let chain = request.graph.chain();
        let cut = min_bandwidth_cut_lexicographic(chain, bound).map_err(SolveError::infeasible)?;
        render_lexicographic(chain, bound, &cut)
    }
    fn run_budgeted(&self, request: &Request, budget: &Budget) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let chain = request.graph.chain();
        let cut = min_bandwidth_cut_lexicographic_budgeted(chain, bound, budget)
            .map_err(SolveError::from_partition)?;
        render_lexicographic(chain, bound, &cut)
    }
    fn run_warm(
        &self,
        request: &Request,
        hint_lo: u64,
        hint_hi: u64,
    ) -> Option<Result<Response, SolveError>> {
        let bound = bound_of(request);
        let chain = request.graph.chain();
        let cut = min_bandwidth_cut_lexicographic_warm(
            chain,
            bound,
            Weight::new(hint_lo),
            Weight::new(hint_hi),
        )
        .ok()??;
        Some(Ok(Response::new(json!({
            "objective": self.name(),
            "bound": bound.get(),
            "cut": cut_json(cut.iter()),
            "bottleneck": chain.bottleneck(&cut).ok()?.get(),
            "bandwidth": chain.cut_weight(&cut).ok()?.get(),
            "processors": cut.len() + 1,
        }))))
    }
}

/// `tree-bandwidth` — the exact pseudo-polynomial tree DP.
struct TreeBandwidth;

impl Solver for TreeBandwidth {
    fn name(&self) -> &'static str {
        "tree-bandwidth"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Tree
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "exact minimum-bandwidth tree cut, O(n·K²) DP (Theorem 1 counterpart)"
    }
    fn parse(&self, value: &Value) -> Result<Request, SolveError> {
        let request = parse_request(self.name(), self.graph_kind(), self.params(), value)?;
        let k = request.params.bound.expect("declared required parameter");
        let n = request.graph.tree().len() as u64;
        let cost = n.saturating_mul(k).saturating_mul(k);
        if cost > MAX_TREE_BANDWIDTH_COST {
            return Err(SolveError::TooExpensive {
                objective: self.name(),
                message: format!(
                    "n·K² = {n}·{k}² exceeds the work budget of {MAX_TREE_BANDWIDTH_COST}; \
                     the DP is pseudo-polynomial in the bound"
                ),
            });
        }
        Ok(request)
    }
    fn cost_estimate(&self, request: &Request) -> u64 {
        let k = request.params.bound.unwrap_or(1);
        let n = request.graph.tree().len() as u64;
        n.saturating_mul(k).saturating_mul(k)
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let tree = request.graph.tree();
        let cut = min_tree_bandwidth_cut(tree, bound).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "bound": bound.get(),
            "cut": cut_json(cut.iter()),
            "bandwidth": tree.cut_weight(&cut).map_err(SolveError::infeasible)?.get(),
            "processors": tree.components(&cut).map_err(SolveError::infeasible)?.count(),
        })))
    }
}

/// `approx` — general process graphs via linearization/spanning tree.
struct Approx;

impl Solver for Approx {
    fn name(&self) -> &'static str {
        "approx"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Process
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "best-of heuristics for general process graphs under a load bound"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let part = partition_process_graph_best(request.graph.process(), bound)
            .map_err(SolveError::infeasible)?;
        let method = match part.method {
            ApproxMethod::LinearIdentity => "linear-identity",
            ApproxMethod::LinearBfs => "linear-bfs",
            ApproxMethod::SpanningTree => "spanning-tree",
            _ => "unknown",
        };
        Ok(Response::new(json!({
            "objective": self.name(),
            "bound": bound.get(),
            "method": method,
            "parts": part.parts,
            "part_of": part.part_of,
            "part_weights": part.part_weights.iter().map(|w| w.get()).collect::<Vec<_>>(),
            "cut_weight": part.cut_weight.get(),
        })))
    }
}

/// `nicol` — the O(n log n) prior-art bandwidth baseline.
struct Nicol;

impl Solver for Nicol {
    fn name(&self) -> &'static str {
        "nicol"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Chain
    }
    fn params(&self) -> &'static [ParamSpec] {
        BOUND_ONLY
    }
    fn summary(&self) -> &'static str {
        "Nicol & O'Hallaron O(n log n) bandwidth baseline on chains"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let bound = bound_of(request);
        let chain = request.graph.chain();
        let cut = nicol_bandwidth_cut(chain, bound).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "bound": bound.get(),
            "cut": cut_json(cut.iter()),
            "bandwidth": chain.cut_weight(&cut).map_err(SolveError::infeasible)?.get(),
            "processors": cut.len() + 1,
        })))
    }
}

/// `coc` — chains-on-chains with a selectable sub-algorithm.
struct Coc;

impl Solver for Coc {
    fn name(&self) -> &'static str {
        "coc"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Chain
    }
    fn params(&self) -> &'static [ParamSpec] {
        COC_PARAMS
    }
    fn summary(&self) -> &'static str {
        "chains-on-chains minimax partition (algorithm: bokhari | probe)"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let m = usize_param(
            request
                .params
                .processors
                .expect("declared required parameter"),
            "processors",
        )?;
        let algorithm = request.params.algorithm.as_deref().unwrap_or("probe");
        let chain = request.graph.chain();
        let result = match algorithm {
            "bokhari" => bokhari_partition(chain, m).map_err(SolveError::infeasible)?,
            "probe" => hansen_lih_partition(chain, m).map_err(SolveError::infeasible)?,
            other => {
                return Err(SolveError::InvalidField {
                    field: "algorithm".into(),
                    message: format!("must be \"bokhari\" or \"probe\", got {other:?}"),
                })
            }
        };
        Ok(Response::new(json!({
            "objective": self.name(),
            "algorithm": algorithm,
            "processors": m,
            "boundaries": result.assignment.boundaries().to_vec(),
            "bottleneck": result.bottleneck.get(),
        })))
    }
}

/// `bokhari` — the layered-graph chains-on-chains solver, directly.
struct Bokhari;

impl Solver for Bokhari {
    fn name(&self) -> &'static str {
        "bokhari"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Chain
    }
    fn params(&self) -> &'static [ParamSpec] {
        PROCESSORS_ONLY
    }
    fn summary(&self) -> &'static str {
        "Bokhari (1988) layered-graph minimax chain partition, O(n²m)"
    }
    fn cost_estimate(&self, request: &Request) -> u64 {
        let n = request.graph.chain().len() as u64;
        let m = request.params.processors.unwrap_or(1);
        n.saturating_mul(n).saturating_mul(m)
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let m = usize_param(
            request
                .params
                .processors
                .expect("declared required parameter"),
            "processors",
        )?;
        let result = bokhari_partition(request.graph.chain(), m).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "processors": m,
            "boundaries": result.assignment.boundaries().to_vec(),
            "bottleneck": result.bottleneck.get(),
        })))
    }
}

/// `hansen-lih` — probe-based chains-on-chains solver, directly.
struct HansenLih;

impl Solver for HansenLih {
    fn name(&self) -> &'static str {
        "hansen-lih"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Chain
    }
    fn params(&self) -> &'static [ParamSpec] {
        PROCESSORS_ONLY
    }
    fn summary(&self) -> &'static str {
        "Hansen & Lih (1992) probe/binary-search minimax chain partition"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let m = usize_param(
            request
                .params
                .processors
                .expect("declared required parameter"),
            "processors",
        )?;
        let result =
            hansen_lih_partition(request.graph.chain(), m).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "processors": m,
            "boundaries": result.assignment.boundaries().to_vec(),
            "bottleneck": result.bottleneck.get(),
        })))
    }
}

/// `hetero` — chains over processors of different speeds.
struct Hetero;

impl Solver for Hetero {
    fn name(&self) -> &'static str {
        "hetero"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Chain
    }
    fn params(&self) -> &'static [ParamSpec] {
        HETERO_PARAMS
    }
    fn summary(&self) -> &'static str {
        "chain partition over a mixed-speed processor array (Bokhari variant)"
    }
    fn parse(&self, value: &Value) -> Result<Request, SolveError> {
        let request = parse_request(self.name(), self.graph_kind(), self.params(), value)?;
        let speeds = request
            .params
            .speeds
            .as_deref()
            .expect("required parameter");
        if speeds.is_empty() || speeds.contains(&0) {
            return Err(SolveError::InvalidField {
                field: "speeds".into(),
                message: "needs at least one positive speed".into(),
            });
        }
        if speeds.len() > MAX_SPEEDS {
            return Err(SolveError::TooExpensive {
                objective: self.name(),
                message: format!("{} speeds exceed the limit of {MAX_SPEEDS}", speeds.len()),
            });
        }
        Ok(request)
    }
    fn cost_estimate(&self, request: &Request) -> u64 {
        let n = request.graph.chain().len() as u64;
        let p = request.params.speeds.as_deref().map_or(1, |s| s.len()) as u64;
        n.saturating_mul(n).saturating_mul(p)
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let speeds = request.params.speeds.clone().expect("required parameter");
        let array = HeteroArray::new(speeds.clone());
        let r = hetero_partition(request.graph.chain(), &array).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "speeds": speeds,
            "boundaries": r.assignment.boundaries().to_vec(),
            "bottleneck": r.bottleneck.get(),
        })))
    }
}

/// `host-satellite` — Bokhari's single-host / multiple-satellite trees.
struct HostSatellite;

impl Solver for HostSatellite {
    fn name(&self) -> &'static str {
        "host-satellite"
    }
    fn graph_kind(&self) -> GraphKind {
        GraphKind::Tree
    }
    fn params(&self) -> &'static [ParamSpec] {
        HOST_SATELLITE_PARAMS
    }
    fn summary(&self) -> &'static str {
        "host/satellite tree offloading with at most m satellites (Bokhari)"
    }
    fn run(&self, request: &Request) -> Result<Response, SolveError> {
        let m = usize_param(
            request
                .params
                .satellites
                .expect("declared required parameter"),
            "satellites",
        )?;
        let root = usize_param(request.params.root.unwrap_or(0), "root")?;
        let tree = request.graph.tree();
        if root >= tree.len() {
            return Err(SolveError::InvalidField {
                field: "root".into(),
                message: format!("{root} out of range for {} nodes", tree.len()),
            });
        }
        let r =
            host_satellite_partition(tree, NodeId::new(root), m).map_err(SolveError::infeasible)?;
        Ok(Response::new(json!({
            "objective": self.name(),
            "root": root,
            "max_satellites": m,
            "satellites_used": r.satellites,
            "uplinks": cut_json(r.cut.iter()),
            "bottleneck": r.bottleneck.get(),
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    const CHAIN: &str = r#"{"node_weights": [2, 3, 5, 7], "edge_weights": [10, 1, 10]}"#;
    const TREE: &str = r#"{"node_weights": [1, 2, 3, 4],
        "edges": [{"a": 0, "b": 1, "weight": 10},
                  {"a": 0, "b": 2, "weight": 20},
                  {"a": 2, "b": 3, "weight": 30}]}"#;

    fn golden_request(name: &str) -> String {
        let registry = Registry::shared();
        let (_, solver) = registry.get(name).expect("registered");
        let graph = match solver.graph_kind() {
            GraphKind::Chain => CHAIN,
            GraphKind::Tree | GraphKind::Process => TREE,
        };
        let params = match name {
            "coc" | "bokhari" | "hansen-lih" => r#""processors": 2"#,
            "hetero" => r#""speeds": [2, 1]"#,
            "host-satellite" => r#""satellites": 2"#,
            _ => r#""bound": 10"#,
        };
        format!(r#"{{"objective": "{name}", {params}, "graph": {graph}}}"#)
    }

    #[test]
    fn registry_has_all_thirteen_objectives() {
        let names = Registry::shared().names();
        assert_eq!(
            names,
            [
                "bandwidth",
                "bottleneck",
                "procmin",
                "compose",
                "lexicographic",
                "tree-bandwidth",
                "approx",
                "nicol",
                "coc",
                "bokhari",
                "hansen-lih",
                "hetero",
                "host-satellite",
            ]
        );
    }

    #[test]
    fn every_solver_runs_its_golden_request() {
        let registry = Registry::shared();
        for solver in registry.iter() {
            let text = golden_request(solver.name());
            let value = Value::parse(&text).unwrap();
            let (_, dispatched, request) = registry.dispatch(&value).unwrap();
            assert_eq!(dispatched.name(), solver.name());
            let response = dispatched
                .run(&request)
                .unwrap_or_else(|e| panic!("{} failed on its golden request: {e}", solver.name()));
            assert_eq!(
                response.value["objective"].as_str(),
                Some(solver.name()),
                "every response must echo its objective"
            );
            assert_eq!(dispatched.to_json(&response), response.value);
        }
    }

    #[test]
    fn budgeted_run_is_byte_identical_and_honors_expired_deadlines() {
        use std::time::{Duration, Instant};
        let registry = Registry::shared();
        for solver in registry.iter() {
            let value = Value::parse(&golden_request(solver.name())).unwrap();
            let (_, dispatched, request) = registry.dispatch(&value).unwrap();
            let cold = dispatched.run(&request).unwrap();
            // A generous budget must not change a single byte.
            let generous = Budget::with_deadline(Instant::now() + Duration::from_secs(3600));
            let budgeted = dispatched.run_budgeted(&request, &generous).unwrap();
            assert_eq!(
                dispatched.to_json(&cold).to_string(),
                dispatched.to_json(&budgeted).to_string(),
                "{}: budgeted run diverged",
                solver.name()
            );
            // An already-expired budget must refuse before solving.
            let expired = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
            let err = dispatched.run_budgeted(&request, &expired).unwrap_err();
            assert_eq!(err.code(), "deadline_exceeded", "{}", solver.name());
            // A raised cancel flag maps to the cancelled code.
            let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
            let cancelled = Budget::unlimited().with_cancel(flag);
            let err = dispatched.run_budgeted(&request, &cancelled).unwrap_err();
            assert_eq!(err.code(), "cancelled", "{}", solver.name());
        }
    }

    #[test]
    fn canonical_keys_ignore_field_order_but_not_content() {
        let registry = Registry::shared();
        for solver in registry.iter() {
            let value = Value::parse(&golden_request(solver.name())).unwrap();
            let Value::Object(mut fields) = value.clone() else {
                unreachable!()
            };
            fields.reverse();
            let reordered = Value::Object(fields);
            let a = solver.canonical_key(&solver.parse(&value).unwrap());
            let b = solver.canonical_key(&solver.parse(&reordered).unwrap());
            assert_eq!(
                a,
                b,
                "{}: key must not depend on field order",
                solver.name()
            );
        }
        // Distinct objectives on the same graph must never share a key.
        let (_, bw) = registry.get("bandwidth").unwrap();
        let (_, lex) = registry.get("lexicographic").unwrap();
        let bw_req = bw
            .parse(&Value::parse(&golden_request("bandwidth")).unwrap())
            .unwrap();
        let lex_req = lex
            .parse(&Value::parse(&golden_request("lexicographic")).unwrap())
            .unwrap();
        assert_ne!(bw.canonical_key(&bw_req), lex.canonical_key(&lex_req));
    }

    #[test]
    fn unknown_objective_lists_the_registry() {
        let err = Registry::shared()
            .dispatch(&Value::parse(r#"{"objective": "frobnicate"}"#).unwrap())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.code(), "unknown_objective");
        assert!(err.to_string().contains("bandwidth"), "{err}");
    }

    #[test]
    fn wrong_graph_kind_and_unknown_fields_are_rejected_for_every_solver() {
        let registry = Registry::shared();
        for solver in registry.iter() {
            // Swap the graph for one of the wrong kind. (A tree *is* a
            // valid process graph, so feed the process solver a chain.)
            let wrong_graph = match solver.graph_kind() {
                GraphKind::Chain => TREE,
                GraphKind::Tree | GraphKind::Process => CHAIN,
            };
            let golden = golden_request(solver.name());
            let swapped = golden.replace(
                match solver.graph_kind() {
                    GraphKind::Chain => CHAIN,
                    GraphKind::Tree | GraphKind::Process => TREE,
                },
                wrong_graph,
            );
            let err = solver.parse(&Value::parse(&swapped).unwrap()).unwrap_err();
            assert_eq!(err.code(), "wrong_graph_kind", "{}", solver.name());

            // Add a field outside the declared schema.
            let Value::Object(mut fields) = Value::parse(&golden).unwrap() else {
                unreachable!()
            };
            fields.push(("bogus".into(), Value::from(1u64)));
            let err = solver.parse(&Value::Object(fields)).unwrap_err();
            assert_eq!(err.code(), "unknown_field", "{}", solver.name());
        }
    }

    #[test]
    fn coc_algorithms_agree_and_validate() {
        let registry = Registry::shared();
        let (_, coc) = registry.get("coc").unwrap();
        let base = format!(
            r#"{{"objective": "coc", "processors": 2, "algorithm": "bokhari", "graph": {CHAIN}}}"#
        );
        let a = coc
            .run(&coc.parse(&Value::parse(&base).unwrap()).unwrap())
            .unwrap();
        let probe = base.replace("bokhari", "probe");
        let b = coc
            .run(&coc.parse(&Value::parse(&probe).unwrap()).unwrap())
            .unwrap();
        assert_eq!(a.value["bottleneck"], b.value["bottleneck"]);

        let junk = base.replace("bokhari", "quantum");
        let err = coc
            .run(&coc.parse(&Value::parse(&junk).unwrap()).unwrap())
            .unwrap_err();
        assert_eq!(err.code(), "invalid_field");
    }

    #[test]
    fn cost_estimates_reflect_algorithmic_complexity() {
        let registry = Registry::shared();
        // Linear solvers report nodes + edges (the default estimate).
        let (_, bw) = registry.get("bandwidth").unwrap();
        let req = bw
            .parse(&Value::parse(&golden_request("bandwidth")).unwrap())
            .unwrap();
        assert_eq!(bw.cost_estimate(&req), 4 + 3);

        // tree-bandwidth is pseudo-polynomial: n·K².
        let (_, tb) = registry.get("tree-bandwidth").unwrap();
        let req = tb
            .parse(&Value::parse(&golden_request("tree-bandwidth")).unwrap())
            .unwrap();
        assert_eq!(tb.cost_estimate(&req), 4 * 10 * 10);

        // bokhari is O(n²m).
        let (_, bk) = registry.get("bokhari").unwrap();
        let req = bk
            .parse(&Value::parse(&golden_request("bokhari")).unwrap())
            .unwrap();
        assert_eq!(bk.cost_estimate(&req), 4 * 4 * 2);

        // hetero is quadratic in the chain times the array size.
        let (_, he) = registry.get("hetero").unwrap();
        let req = he
            .parse(&Value::parse(&golden_request("hetero")).unwrap())
            .unwrap();
        assert_eq!(he.cost_estimate(&req), 4 * 4 * 2);

        // Estimates saturate instead of overflowing.
        let body = format!(
            r#"{{"objective": "tree-bandwidth", "bound": {}, "graph": {TREE}}}"#,
            u64::MAX
        );
        let parsed = parse_request(
            "tree-bandwidth",
            GraphKind::Tree,
            BOUND_ONLY,
            &Value::parse(&body).unwrap(),
        )
        .expect("schema-valid even though run() would refuse it");
        assert_eq!(tb.cost_estimate(&parsed), u64::MAX);
    }

    #[test]
    fn tree_bandwidth_refuses_expensive_instances() {
        let (_, solver) = Registry::shared().get("tree-bandwidth").unwrap();
        let body =
            format!(r#"{{"objective": "tree-bandwidth", "bound": 10000000000, "graph": {TREE}}}"#);
        let err = solver.parse(&Value::parse(&body).unwrap()).unwrap_err();
        assert_eq!(err.code(), "too_expensive");
    }

    #[test]
    fn hetero_rejects_zero_and_oversized_speed_arrays() {
        let (_, solver) = Registry::shared().get("hetero").unwrap();
        for speeds in ["[]", "[4, 0, 1]"] {
            let body =
                format!(r#"{{"objective": "hetero", "speeds": {speeds}, "graph": {CHAIN}}}"#);
            let err = solver.parse(&Value::parse(&body).unwrap()).unwrap_err();
            assert_eq!(err.code(), "invalid_field", "speeds {speeds}");
        }
        let huge: Vec<String> = (0..MAX_SPEEDS + 1).map(|_| "1".to_string()).collect();
        let body = format!(
            r#"{{"objective": "hetero", "speeds": [{}], "graph": {CHAIN}}}"#,
            huge.join(",")
        );
        let err = solver.parse(&Value::parse(&body).unwrap()).unwrap_err();
        assert_eq!(err.code(), "too_expensive");
    }

    #[test]
    fn host_satellite_validates_root_range() {
        let (_, solver) = Registry::shared().get("host-satellite").unwrap();
        let body = format!(
            r#"{{"objective": "host-satellite", "satellites": 2, "root": 99, "graph": {TREE}}}"#
        );
        let err = solver
            .run(&solver.parse(&Value::parse(&body).unwrap()).unwrap())
            .unwrap_err();
        assert_eq!(err.code(), "invalid_field");
    }

    #[test]
    fn infeasible_instances_keep_their_solver_message() {
        let (_, solver) = Registry::shared().get("bandwidth").unwrap();
        let body = format!(r#"{{"objective": "bandwidth", "bound": 0, "graph": {CHAIN}}}"#);
        let err = solver
            .run(&solver.parse(&Value::parse(&body).unwrap()).unwrap())
            .unwrap_err();
        assert_eq!(err.code(), "infeasible");
        assert!(err.to_string().contains("load bound"), "{err}");
    }

    #[test]
    fn warm_runs_are_byte_identical_to_cold_runs() {
        let registry = Registry::shared();
        for name in ["lexicographic", "bottleneck"] {
            let (_, solver) = registry.get(name).unwrap();
            let value = Value::parse(&golden_request(name)).unwrap();
            let request = solver.parse(&value).unwrap();
            let cold = solver.run(&request).unwrap();
            let cold_body = solver.to_json(&cold).to_string();
            let b = cold.value["bottleneck"].as_u64().unwrap();
            for (lo, hi) in [
                (b, b),
                (b.saturating_sub(3), b.saturating_add(3)),
                (0, u64::MAX),
            ] {
                let warm = solver
                    .run_warm(&request, lo, hi)
                    .unwrap_or_else(|| {
                        panic!("{name} declined a window [{lo}, {hi}] containing the optimum {b}")
                    })
                    .unwrap();
                assert_eq!(
                    solver.to_json(&warm).to_string(),
                    cold_body,
                    "{name} warm body diverged for window [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn warm_runs_decline_windows_missing_the_optimum() {
        let registry = Registry::shared();
        for name in ["lexicographic", "bottleneck"] {
            let (_, solver) = registry.get(name).unwrap();
            let value = Value::parse(&golden_request(name)).unwrap();
            let request = solver.parse(&value).unwrap();
            let b = solver.run(&request).unwrap().value["bottleneck"]
                .as_u64()
                .unwrap();
            assert!(
                solver.run_warm(&request, b + 1, u64::MAX).is_none(),
                "{name} must decline a window above the optimum"
            );
            if b > 0 {
                assert!(
                    solver.run_warm(&request, 0, b - 1).is_none(),
                    "{name} must decline a window below the optimum"
                );
            }
            assert!(
                solver.run_warm(&request, 5, 4).is_none(),
                "{name} must decline an inverted window"
            );
        }
    }

    #[test]
    fn solvers_without_warm_support_decline_every_window() {
        let registry = Registry::shared();
        for solver in registry.iter() {
            if matches!(solver.name(), "lexicographic" | "bottleneck") {
                continue;
            }
            let value = Value::parse(&golden_request(solver.name())).unwrap();
            let request = solver.parse(&value).unwrap();
            assert!(
                solver.run_warm(&request, 0, u64::MAX).is_none(),
                "{} has no warm path and must decline",
                solver.name()
            );
        }
    }
}
