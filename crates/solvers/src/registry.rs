//! The [`Solver`] trait and the [`Registry`] that dispatches on
//! objective names.

use std::sync::OnceLock;

use tgp_core::budget::Budget;
use tgp_graph::json::Value;

use crate::error::SolveError;
use crate::key::KeyBuilder;
use crate::objectives;
use crate::request::{parse_request, GraphKind, ParamSpec, Request, Response};

/// One partitioning objective: everything a front end needs to accept,
/// run, cache and render it.
///
/// A solver owns its request schema ([`Solver::params`]) and response
/// shape; the CLI and the HTTP service are thin shells over
/// [`Solver::parse`] → [`Solver::run`], which is what guarantees the two
/// produce byte-identical JSON for the same request.
pub trait Solver: Send + Sync {
    /// The objective name used for dispatch, metrics labels and the
    /// `"objective"` response field.
    fn name(&self) -> &'static str;

    /// The graph class the solver accepts.
    fn graph_kind(&self) -> GraphKind;

    /// The scalar parameters the solver accepts beyond `objective` and
    /// `graph`. Undeclared fields are rejected by [`Solver::parse`].
    fn params(&self) -> &'static [ParamSpec];

    /// One human line for docs and usage listings.
    fn summary(&self) -> &'static str;

    /// Strictly validates a raw request object into a typed [`Request`].
    ///
    /// The default checks the declared schema and graph kind; solvers
    /// override only to add extra validation (cost caps, range checks)
    /// *after* delegating to the default (see `TreeBandwidth`).
    fn parse(&self, value: &Value) -> Result<Request, SolveError> {
        parse_request(self.name(), self.graph_kind(), self.params(), value)
    }

    /// Runs the objective on a validated request.
    fn run(&self, request: &Request) -> Result<Response, SolveError>;

    /// Cost-sliced cooperative run: like [`Solver::run`], but the solve
    /// charges its work against `budget`, so an expired deadline or a
    /// raised cancel flag stops it with [`SolveError::DeadlineExceeded`]
    /// or [`SolveError::Cancelled`] instead of running to completion.
    ///
    /// The default charges the whole [`Solver::cost_estimate`] before
    /// delegating to [`Solver::run`] — a pre-flight admission check that
    /// refuses already-expired work but cannot preempt mid-solve.
    /// Solvers whose hot loops can be sliced (bandwidth, lexicographic)
    /// override this to charge incrementally inside the loop.
    ///
    /// With an unlimited budget the result is byte-identical to
    /// [`Solver::run`].
    fn run_budgeted(&self, request: &Request, budget: &Budget) -> Result<Response, SolveError> {
        budget.check_now().map_err(SolveError::from_exceeded)?;
        budget
            .charge(self.cost_estimate(request))
            .map_err(SolveError::from_exceeded)?;
        self.run(request)
    }

    /// Warm-started run: like [`Solver::run`], but the caller asserts
    /// the optimal bottleneck of the *previous* solve on a near-identical
    /// graph lay at some `B`, and the edits since then changed it by at
    /// most `hint_hi - hint_lo` in either direction. A solver that can
    /// exploit the window `[hint_lo, hint_hi]` returns `Some(result)`
    /// **only when it can certify** the answer is byte-identical to what
    /// [`Solver::run`] would produce; otherwise it returns `None` and the
    /// caller falls back to the cold path. The default declines.
    fn run_warm(
        &self,
        request: &Request,
        hint_lo: u64,
        hint_hi: u64,
    ) -> Option<Result<Response, SolveError>> {
        let _ = (request, hint_lo, hint_hi);
        None
    }

    /// A rough, dimensionless estimate of how much work [`Solver::run`]
    /// does on this request. Caches use it as an admission signal: a
    /// response that was expensive to compute is worth keeping even
    /// when it is large. The default — nodes plus edges — matches the
    /// linear-time solvers; super-linear objectives override it (see
    /// `TreeBandwidth`, `Bokhari`). Estimates saturate rather than
    /// overflow.
    fn cost_estimate(&self, request: &Request) -> u64 {
        request.graph.work_units()
    }

    /// The canonical cache key of a validated request: objective name,
    /// parameters, then graph content — independent of the original
    /// JSON formatting. Two requests with equal keys are guaranteed to
    /// produce equal responses, so a cache may serve one for the other.
    fn canonical_key(&self, request: &Request) -> Vec<u8> {
        let mut key = KeyBuilder::default();
        key.write_str(self.name());
        request.params.write_key(&mut key);
        request.graph.write_key(&mut key);
        key.finish()
    }

    /// Renders a response as JSON. The default returns the value the
    /// solver already built; overriding is only for solvers whose
    /// in-memory response is not its wire form.
    fn to_json(&self, response: &Response) -> Value {
        response.value.clone()
    }
}

/// The set of registered solvers, dispatchable by objective name.
pub struct Registry {
    solvers: Vec<Box<dyn Solver>>,
    names: Vec<&'static str>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names)
            .finish()
    }
}

impl Registry {
    /// Builds a registry with every objective in the workspace.
    pub fn with_all() -> Self {
        let mut registry = Registry {
            solvers: Vec::new(),
            names: Vec::new(),
        };
        for solver in objectives::all() {
            registry.register(solver);
        }
        registry
    }

    /// Adds a solver.
    ///
    /// # Panics
    ///
    /// If another solver already claimed the name — duplicate objectives
    /// would make dispatch ambiguous, so this is a programming error.
    pub fn register(&mut self, solver: Box<dyn Solver>) {
        let name = solver.name();
        assert!(
            !self.names.contains(&name),
            "duplicate solver registration: {name}"
        );
        self.names.push(name);
        self.solvers.push(solver);
    }

    /// The shared process-wide registry.
    pub fn shared() -> &'static Registry {
        static SHARED: OnceLock<Registry> = OnceLock::new();
        SHARED.get_or_init(Registry::with_all)
    }

    /// Looks up a solver by objective name. The index is stable for the
    /// registry's lifetime and usable as a dense metrics key.
    pub fn get(&self, name: &str) -> Option<(usize, &dyn Solver)> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|i| (i, self.solvers[i].as_ref()))
    }

    /// Every registered objective name, in registration order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Iterates the registered solvers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Solver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }

    /// Full dispatch: resolves the request's `objective` field, then
    /// strictly parses the request against that solver's schema.
    /// Returns the solver's registry index alongside it so callers can
    /// label metrics even when a later stage fails.
    pub fn dispatch<'r>(
        &'r self,
        value: &Value,
    ) -> Result<(usize, &'r dyn Solver, Request), SolveError> {
        let name =
            value
                .get("objective")
                .and_then(Value::as_str)
                .ok_or(SolveError::MissingField {
                    field: "objective",
                    expected: "a string naming a registered objective",
                })?;
        let (index, solver) = self.get(name).ok_or_else(|| SolveError::UnknownObjective {
            got: name.to_string(),
            known: self.names.clone(),
        })?;
        let request = solver.parse(value)?;
        Ok((index, solver, request))
    }
}
