//! The typed request/response pair every solver shares, plus the strict
//! field-level parser that turns a raw JSON object into a [`Request`].
//!
//! Parsing is *strict*: a request may only carry `objective`, `graph`
//! and the parameters its solver declares — anything else is rejected
//! with [`SolveError::UnknownField`]. This is what lets the CLI and the
//! HTTP service guarantee identical behaviour: there is exactly one
//! schema per objective and it lives here, not in each front end.

use std::fmt;

use tgp_graph::json::{FromJson, Value};
use tgp_graph::{PathGraph, ProcessGraph, Tree};

use crate::error::SolveError;
use crate::key::KeyBuilder;

/// The graph class a solver accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// A linear task graph: `{"node_weights": [...], "edge_weights": [...]}`.
    Chain,
    /// A tree task graph: `{"node_weights": [...], "edges": [{"a","b","weight"}, ...]}`.
    Tree,
    /// A general process graph (same encoding as a tree, cycles allowed).
    Process,
}

impl GraphKind {
    /// The kind's lowercase name, as used in error messages and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            GraphKind::Chain => "chain",
            GraphKind::Tree => "tree",
            GraphKind::Process => "process",
        }
    }
}

impl fmt::Display for GraphKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A validated input graph.
#[derive(Debug, Clone)]
pub enum GraphInput {
    /// A linear task graph.
    Chain(PathGraph),
    /// A tree task graph.
    Tree(Tree),
    /// A general process graph.
    Process(ProcessGraph),
}

impl GraphInput {
    /// The chain, for solvers registered with [`GraphKind::Chain`].
    ///
    /// # Panics
    ///
    /// If the request was parsed for a different graph kind — the parser
    /// guarantees the variant matches the solver's declared kind, so a
    /// panic here is a registry bug, not bad input.
    pub fn chain(&self) -> &PathGraph {
        match self {
            GraphInput::Chain(p) => p,
            other => panic!("solver expected a chain, request holds {}", other.kind()),
        }
    }

    /// The tree, for solvers registered with [`GraphKind::Tree`].
    ///
    /// # Panics
    ///
    /// As for [`GraphInput::chain`].
    pub fn tree(&self) -> &Tree {
        match self {
            GraphInput::Tree(t) => t,
            other => panic!("solver expected a tree, request holds {}", other.kind()),
        }
    }

    /// The process graph, for solvers registered with
    /// [`GraphKind::Process`].
    ///
    /// # Panics
    ///
    /// As for [`GraphInput::chain`].
    pub fn process(&self) -> &ProcessGraph {
        match self {
            GraphInput::Process(g) => g,
            other => panic!(
                "solver expected a process graph, request holds {}",
                other.kind()
            ),
        }
    }

    /// Which graph class this input holds.
    pub fn kind(&self) -> GraphKind {
        match self {
            GraphInput::Chain(_) => GraphKind::Chain,
            GraphInput::Tree(_) => GraphKind::Tree,
            GraphInput::Process(_) => GraphKind::Process,
        }
    }

    /// A rough size-of-instance measure — nodes plus edges — used as the
    /// default [`crate::Solver::cost_estimate`]. Solvers whose running
    /// time is super-linear in the instance override the estimate
    /// instead of this accessor.
    pub fn work_units(&self) -> u64 {
        match self {
            GraphInput::Chain(p) => (p.len() + p.edge_count()) as u64,
            GraphInput::Tree(t) => (t.len() + t.edge_count()) as u64,
            GraphInput::Process(g) => (g.len() + g.edge_count()) as u64,
        }
    }

    /// Writes the graph's validated content into a canonical key.
    pub fn write_key(&self, key: &mut KeyBuilder) {
        match self {
            GraphInput::Chain(p) => {
                key.write(b"/chain");
                key.write_u64(p.len() as u64);
                for w in p.node_weights() {
                    key.write_u64(w.get());
                }
                for w in p.edge_weights() {
                    key.write_u64(w.get());
                }
            }
            GraphInput::Tree(t) => {
                key.write(b"/tree");
                key.write_u64(t.len() as u64);
                for w in t.node_weights() {
                    key.write_u64(w.get());
                }
                for e in t.edges() {
                    key.write_u64(e.a.index() as u64);
                    key.write_u64(e.b.index() as u64);
                    key.write_u64(e.weight.get());
                }
            }
            GraphInput::Process(g) => {
                key.write(b"/process");
                key.write_u64(g.len() as u64);
                for w in g.node_weights() {
                    key.write_u64(w.get());
                }
                for e in g.edges() {
                    key.write_u64(e.a.index() as u64);
                    key.write_u64(e.b.index() as u64);
                    key.write_u64(e.weight.get());
                }
            }
        }
    }
}

/// The JSON type a declared parameter must hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A non-negative integer.
    U64,
    /// A non-empty array of non-negative integers.
    U64List,
    /// A string.
    Str,
}

/// One parameter a solver declares: its field name, type, and whether
/// the request must carry it.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// The JSON field name.
    pub name: &'static str,
    /// The value type.
    pub kind: ParamKind,
    /// Whether omission is an error.
    pub required: bool,
}

impl ParamSpec {
    /// A required parameter.
    pub const fn required(name: &'static str, kind: ParamKind) -> Self {
        ParamSpec {
            name,
            kind,
            required: true,
        }
    }

    /// An optional parameter.
    pub const fn optional(name: &'static str, kind: ParamKind) -> Self {
        ParamSpec {
            name,
            kind,
            required: false,
        }
    }
}

/// The scalar parameters of a validated request — the union of every
/// solver's declared parameters, each present only when declared and
/// supplied.
#[derive(Debug, Clone, Default)]
pub struct Params {
    /// Load bound `K` (most objectives).
    pub bound: Option<u64>,
    /// Processor count `m` (chains-on-chains objectives).
    pub processors: Option<u64>,
    /// Maximum satellite count (`host-satellite`).
    pub satellites: Option<u64>,
    /// Host/root vertex (`host-satellite`).
    pub root: Option<u64>,
    /// Sub-algorithm selector (`coc`: `"bokhari"` or `"probe"`).
    pub algorithm: Option<String>,
    /// Processor speeds (`hetero`).
    pub speeds: Option<Vec<u64>>,
}

impl Params {
    /// Writes every present parameter into a canonical key, in a fixed
    /// order with presence tags, so two requests differing in any
    /// parameter (or in which parameters they carry) never share a key.
    pub fn write_key(&self, key: &mut KeyBuilder) {
        for opt in [self.bound, self.processors, self.satellites, self.root] {
            match opt {
                Some(v) => {
                    key.write_u64(1);
                    key.write_u64(v);
                }
                None => key.write_u64(0),
            }
        }
        match &self.algorithm {
            Some(a) => {
                key.write_u64(1);
                key.write_str(a);
            }
            None => key.write_u64(0),
        }
        match &self.speeds {
            Some(s) => {
                key.write_u64(1 + s.len() as u64);
                for &v in s {
                    key.write_u64(v);
                }
            }
            None => key.write_u64(0),
        }
    }
}

/// A fully validated request: the typed graph plus the solver's
/// parameters. Constructed only by [`crate::Solver::parse`], so holding one
/// means the graph kind and every declared parameter already check out.
#[derive(Debug, Clone)]
pub struct Request {
    /// The validated input graph (variant matches the solver's kind).
    pub graph: GraphInput,
    /// The validated scalar parameters.
    pub params: Params,
}

/// A solver's result, rendered as a JSON value whose serialization *is*
/// the response body both front ends emit.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The response object. Field order is fixed by the solver, so the
    /// compact rendering is byte-stable.
    pub value: Value,
}

impl Response {
    /// Wraps a rendered value.
    pub fn new(value: Value) -> Self {
        Response { value }
    }
}

/// Strictly parses `value` against a solver's declared schema.
///
/// Checks, in order: the request is an object; it carries no field
/// outside `objective`, `graph` and `params`; every required parameter
/// is present with the right type; the graph parses as `kind`.
pub fn parse_request(
    objective: &'static str,
    kind: GraphKind,
    params: &[ParamSpec],
    value: &Value,
) -> Result<Request, SolveError> {
    let fields = value.as_object().ok_or(SolveError::MissingField {
        field: "graph",
        expected: "a request must be a JSON object",
    })?;
    for (name, _) in fields {
        let known = name == "objective" || name == "graph" || params.iter().any(|p| p.name == name);
        if !known {
            return Err(SolveError::UnknownField {
                field: name.clone(),
                objective,
            });
        }
    }
    if let Some(claimed) = value.get("objective") {
        let claimed = claimed.as_str().ok_or(SolveError::MissingField {
            field: "objective",
            expected: "a string",
        })?;
        if claimed != objective {
            return Err(SolveError::InvalidField {
                field: "objective".into(),
                message: format!("request names {claimed:?} but was parsed by {objective:?}"),
            });
        }
    }

    let mut parsed = Params::default();
    for spec in params {
        let Some(raw) = value.get(spec.name) else {
            if spec.required {
                return Err(SolveError::MissingField {
                    field: spec.name,
                    expected: expected_of(spec.kind),
                });
            }
            continue;
        };
        match spec.kind {
            ParamKind::U64 => {
                let v = raw.as_u64().ok_or(SolveError::MissingField {
                    field: spec.name,
                    expected: expected_of(spec.kind),
                })?;
                let slot = match spec.name {
                    "bound" => &mut parsed.bound,
                    "processors" => &mut parsed.processors,
                    "satellites" => &mut parsed.satellites,
                    "root" => &mut parsed.root,
                    other => unreachable!("undeclared u64 parameter {other}"),
                };
                *slot = Some(v);
            }
            ParamKind::U64List => {
                let list = raw
                    .as_array()
                    .ok_or(SolveError::MissingField {
                        field: spec.name,
                        expected: expected_of(spec.kind),
                    })?
                    .iter()
                    .map(|v| {
                        v.as_u64().ok_or(SolveError::InvalidField {
                            field: spec.name.into(),
                            message: "every element must be a non-negative integer".into(),
                        })
                    })
                    .collect::<Result<Vec<u64>, _>>()?;
                debug_assert_eq!(spec.name, "speeds", "the only list parameter");
                parsed.speeds = Some(list);
            }
            ParamKind::Str => {
                let s = raw.as_str().ok_or(SolveError::MissingField {
                    field: spec.name,
                    expected: expected_of(spec.kind),
                })?;
                debug_assert_eq!(spec.name, "algorithm", "the only string parameter");
                parsed.algorithm = Some(s.to_string());
            }
        }
    }

    let graph_value = value.get("graph").ok_or(SolveError::MissingField {
        field: "graph",
        expected: "a graph object",
    })?;
    let graph = parse_graph(objective, kind, graph_value)?;
    Ok(Request {
        graph,
        params: parsed,
    })
}

fn expected_of(kind: ParamKind) -> &'static str {
    match kind {
        ParamKind::U64 => "a non-negative integer",
        ParamKind::U64List => "an array of non-negative integers",
        ParamKind::Str => "a string",
    }
}

fn parse_graph(
    objective: &'static str,
    kind: GraphKind,
    value: &Value,
) -> Result<GraphInput, SolveError> {
    let wrong = |e: tgp_graph::json::JsonError| SolveError::WrongGraphKind {
        objective,
        expected: kind,
        message: e.to_string(),
    };
    Ok(match kind {
        GraphKind::Chain => GraphInput::Chain(PathGraph::from_json(value).map_err(wrong)?),
        GraphKind::Tree => GraphInput::Tree(Tree::from_json(value).map_err(wrong)?),
        GraphKind::Process => GraphInput::Process(ProcessGraph::from_json(value).map_err(wrong)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &[ParamSpec] = &[
        ParamSpec::required("bound", ParamKind::U64),
        ParamSpec::optional("algorithm", ParamKind::Str),
    ];

    fn parse(text: &str) -> Result<Request, SolveError> {
        parse_request("demo", GraphKind::Chain, SPEC, &Value::parse(text).unwrap())
    }

    #[test]
    fn accepts_declared_fields_only() {
        let ok = parse(
            r#"{"objective":"demo","bound":5,
                "graph":{"node_weights":[1,2],"edge_weights":[3]}}"#,
        )
        .unwrap();
        assert_eq!(ok.params.bound, Some(5));
        assert_eq!(ok.graph.chain().len(), 2);

        let err = parse(
            r#"{"objective":"demo","bound":5,"buond":6,
                "graph":{"node_weights":[1],"edge_weights":[]}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code(), "unknown_field");
    }

    #[test]
    fn missing_and_mistyped_fields_are_reported() {
        let err = parse(r#"{"graph":{"node_weights":[1],"edge_weights":[]}}"#).unwrap_err();
        assert_eq!(err.code(), "missing_field");
        let err = parse(r#"{"bound":"five","graph":{"node_weights":[1],"edge_weights":[]}}"#)
            .unwrap_err();
        assert_eq!(err.code(), "missing_field");
        let err = parse(r#"{"bound":5}"#).unwrap_err();
        assert_eq!(err.code(), "missing_field");
    }

    #[test]
    fn wrong_graph_kind_is_its_own_code() {
        let err = parse(
            r#"{"bound":5,"graph":{"node_weights":[1,2],
                "edges":[{"a":0,"b":1,"weight":1}]}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code(), "wrong_graph_kind");
        assert!(err.to_string().contains("chain"), "{err}");
    }

    #[test]
    fn mismatched_objective_name_is_rejected() {
        let err = parse(
            r#"{"objective":"other","bound":5,
                "graph":{"node_weights":[1],"edge_weights":[]}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code(), "invalid_field");
    }

    #[test]
    fn params_key_distinguishes_presence_from_value() {
        let mut with_none = KeyBuilder::default();
        Params::default().write_key(&mut with_none);
        let mut with_zero = KeyBuilder::default();
        Params {
            bound: Some(0),
            ..Params::default()
        }
        .write_key(&mut with_zero);
        assert_ne!(with_none.finish(), with_zero.finish());
    }
}
