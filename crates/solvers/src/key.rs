//! Canonical cache-key construction.
//!
//! A canonical key is built from *validated* request content — objective
//! name, parameters, then the graph's weights — never from raw request
//! bytes, so formatting differences (whitespace, object key order,
//! stray fields that parsing rejects anyway) cannot fragment a cache
//! keyed on it. The finished byte string is meant to be compared for
//! exact equality; consumers may hash it for bucketing but must not
//! trust the hash alone.

/// Builds a canonical key byte string field by field.
///
/// Integers are length-prefix-free but tagged, so adjacent fields cannot
/// collide by concatenation: `write_u64(1); write_u64(2)` and
/// `write_u64(2); write_u64(1)` produce different byte strings.
#[derive(Debug, Clone, Default)]
pub struct KeyBuilder {
    bytes: Vec<u8>,
}

impl KeyBuilder {
    /// Appends raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends one `u64` (little-endian), with a tag byte so that
    /// adjacent fields can't collide by concatenation.
    pub fn write_u64(&mut self, v: u64) {
        self.bytes.push(0xfe);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a string as a tagged length followed by its bytes, so a
    /// string field can never run into its neighbour.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The finished canonical key.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_u64s_do_not_concatenate() {
        let mut a = KeyBuilder::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = KeyBuilder::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = KeyBuilder::default();
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyBuilder::default();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
