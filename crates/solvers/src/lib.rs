//! One typed dispatch layer shared by every front end.
//!
//! `tgp-solvers` turns the workspace's partitioning algorithms into a
//! uniform [`Solver`] registry: each objective declares its name, the
//! graph class it accepts, its parameter schema, and how it renders a
//! response. The CLI, the HTTP service and the benchmarks all resolve
//! objectives through [`Registry::shared`], which is what guarantees
//! that `tgp partition <objective>` and `POST /v1/partition` accept the
//! same requests, reject the same malformed ones, and produce
//! byte-identical JSON.
//!
//! The flow for a front end is three calls:
//!
//! ```
//! use tgp_graph::json::Value;
//! use tgp_solvers::Registry;
//!
//! let body: Value = Value::parse(
//!     r#"{"objective": "bandwidth", "bound": 6,
//!         "graph": {"node_weights": [2, 3, 5], "edge_weights": [4, 1]}}"#,
//! ).unwrap();
//! let (_index, solver, request) = Registry::shared().dispatch(&body).unwrap();
//! let response = solver.run(&request).unwrap();
//! assert_eq!(response.value["objective"].as_str(), Some("bandwidth"));
//! ```
//!
//! Caches key on [`Solver::canonical_key`], which is derived from the
//! *validated* request content, so formatting differences cannot
//! fragment the cache and cannot alias distinct instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flat;
mod ingest;
mod key;
mod objectives;
mod registry;
mod request;

pub use error::SolveError;
pub use flat::{FlatGraph, FlatObjective, FlatRequest};
pub use ingest::{ingest_flat, IngestBacking};
pub use key::KeyBuilder;
pub use objectives::{MAX_SPEEDS, MAX_TREE_BANDWIDTH_COST};
pub use registry::{Registry, Solver};
pub use request::{GraphInput, GraphKind, ParamKind, ParamSpec, Params, Request, Response};
pub use tgp_core::budget::{Budget, Exceeded};
