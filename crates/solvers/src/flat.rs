//! The flat-substrate solve path: [`FlatRequest`] is the counterpart of
//! [`crate::Request`] for graphs living in `tgp-store`'s flat arrays
//! (RAM- or disk-backed), covering the three hot objectives
//! (`bandwidth`, `bottleneck`, `lexicographic`).
//!
//! Responses and canonical cache keys are byte-identical to the legacy
//! pointer-graph path: the rendering helpers are shared with
//! `objectives.rs`, and [`FlatRequest::canonical_key`] replays the exact
//! [`KeyBuilder`] sequence of `Solver::canonical_key`, so a cache entry
//! produced by one path is served verbatim by the other.

use tgp_core::bandwidth::{
    min_bandwidth_cut_lexicographic, min_bandwidth_cut_lexicographic_budgeted,
    min_bandwidth_cut_lexicographic_warm,
};
use tgp_core::bottleneck::{min_bottleneck_cut, min_bottleneck_cut_warm};
use tgp_core::budget::Budget;
use tgp_core::pipeline::{partition_chain, partition_chain_budgeted};
use tgp_graph::Weight;
use tgp_store::{BackingKind, DiskBacking, FlatPath, FlatTree, RamBacking};

use crate::error::SolveError;
use crate::key::KeyBuilder;
use crate::objectives::{render_bandwidth, render_bottleneck, render_lexicographic};
use crate::request::{GraphKind, Params, Response};

/// A flat graph on either backing. The four concrete variants keep the
/// solver loops monomorphized — no dynamic dispatch inside a solve.
pub enum FlatGraph {
    /// A chain in RAM-backed flat arrays.
    ChainRam(FlatPath<RamBacking>),
    /// A chain in disk-backed (mmap) flat arrays.
    ChainDisk(FlatPath<DiskBacking>),
    /// A tree in RAM-backed flat arrays.
    TreeRam(FlatTree<RamBacking>),
    /// A tree in disk-backed (mmap) flat arrays.
    TreeDisk(FlatTree<DiskBacking>),
}

impl std::fmt::Debug for FlatGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlatGraph::{:?}/{}",
            self.graph_kind(),
            self.backing_kind().as_str()
        )
    }
}

impl FlatGraph {
    /// Which graph class this is.
    pub fn graph_kind(&self) -> GraphKind {
        match self {
            FlatGraph::ChainRam(_) | FlatGraph::ChainDisk(_) => GraphKind::Chain,
            FlatGraph::TreeRam(_) | FlatGraph::TreeDisk(_) => GraphKind::Tree,
        }
    }

    /// Which medium holds the graph.
    pub fn backing_kind(&self) -> BackingKind {
        match self {
            FlatGraph::ChainRam(g) => g.backing_kind(),
            FlatGraph::ChainDisk(g) => g.backing_kind(),
            FlatGraph::TreeRam(g) => g.backing_kind(),
            FlatGraph::TreeDisk(g) => g.backing_kind(),
        }
    }

    /// Bytes of process RAM the graph pins (0 when disk-backed).
    pub fn resident_bytes(&self) -> u64 {
        match self {
            FlatGraph::ChainRam(g) => g.resident_bytes(),
            FlatGraph::ChainDisk(g) => g.resident_bytes(),
            FlatGraph::TreeRam(g) => g.resident_bytes(),
            FlatGraph::TreeDisk(g) => g.resident_bytes(),
        }
    }

    /// Logical size of the graph's arrays in bytes.
    pub fn byte_len(&self) -> u64 {
        match self {
            FlatGraph::ChainRam(g) => g.byte_len(),
            FlatGraph::ChainDisk(g) => g.byte_len(),
            FlatGraph::TreeRam(g) => g.byte_len(),
            FlatGraph::TreeDisk(g) => g.byte_len(),
        }
    }

    /// Nodes plus edges — same measure as `GraphInput::work_units`.
    pub fn work_units(&self) -> u64 {
        use tgp_graph::{ChainView, TreeView};
        match self {
            FlatGraph::ChainRam(g) => (g.len() + g.edge_count()) as u64,
            FlatGraph::ChainDisk(g) => (g.len() + g.edge_count()) as u64,
            FlatGraph::TreeRam(g) => (TreeView::len(g) + TreeView::edge_count(g)) as u64,
            FlatGraph::TreeDisk(g) => (TreeView::len(g) + TreeView::edge_count(g)) as u64,
        }
    }

    /// Writes the graph's content into a canonical key — the exact byte
    /// sequence `GraphInput::write_key` produces for the same graph.
    fn write_key(&self, key: &mut KeyBuilder) {
        fn chain_key<B: tgp_store::MemoryBacking>(g: &FlatPath<B>, key: &mut KeyBuilder) {
            key.write(b"/chain");
            key.write_u64(g.node_w().len() as u64);
            for &w in g.node_w() {
                key.write_u64(w);
            }
            for &w in g.edge_w() {
                key.write_u64(w);
            }
        }
        fn tree_key<B: tgp_store::MemoryBacking>(g: &FlatTree<B>, key: &mut KeyBuilder) {
            key.write(b"/tree");
            key.write_u64(g.node_w().len() as u64);
            for &w in g.node_w() {
                key.write_u64(w);
            }
            for i in 0..g.edge_w().len() {
                let (a, b) = g.endpoints_raw(i);
                key.write_u64(a as u64);
                key.write_u64(b as u64);
                key.write_u64(g.edge_w()[i]);
            }
        }
        match self {
            FlatGraph::ChainRam(g) => chain_key(g, key),
            FlatGraph::ChainDisk(g) => chain_key(g, key),
            FlatGraph::TreeRam(g) => tree_key(g, key),
            FlatGraph::TreeDisk(g) => tree_key(g, key),
        }
    }
}

/// The objectives the flat path covers. Other objectives fall back to
/// the legacy [`crate::Registry`] dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatObjective {
    /// Minimum-bandwidth chain partition (§2.3).
    Bandwidth,
    /// Minimum-bottleneck tree cut (Algorithm 2.1).
    Bottleneck,
    /// Lexicographic (bottleneck, bandwidth) chain cut (§3).
    Lexicographic,
}

impl FlatObjective {
    /// The registry name of the objective.
    pub fn name(self) -> &'static str {
        match self {
            FlatObjective::Bandwidth => "bandwidth",
            FlatObjective::Bottleneck => "bottleneck",
            FlatObjective::Lexicographic => "lexicographic",
        }
    }

    /// Resolves a request's objective string, if the flat path covers it.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "bandwidth" => Some(FlatObjective::Bandwidth),
            "bottleneck" => Some(FlatObjective::Bottleneck),
            "lexicographic" => Some(FlatObjective::Lexicographic),
            _ => None,
        }
    }

    /// The graph class the objective requires.
    pub fn graph_kind(self) -> GraphKind {
        match self {
            FlatObjective::Bandwidth | FlatObjective::Lexicographic => GraphKind::Chain,
            FlatObjective::Bottleneck => GraphKind::Tree,
        }
    }
}

/// A validated flat-substrate request: objective, bound, and a graph
/// already resident in flat arrays.
#[derive(Debug)]
pub struct FlatRequest {
    /// The objective to run.
    pub objective: FlatObjective,
    /// The load bound `K`.
    pub bound: u64,
    /// The graph, on whichever backing ingest chose.
    pub graph: FlatGraph,
}

impl FlatRequest {
    /// The canonical cache key — byte-identical to what
    /// `Solver::canonical_key` produces for the equivalent legacy
    /// request, so flat and legacy solves share cache entries.
    pub fn canonical_key(&self) -> Vec<u8> {
        let mut key = KeyBuilder::default();
        key.write_str(self.objective.name());
        Params {
            bound: Some(self.bound),
            ..Params::default()
        }
        .write_key(&mut key);
        self.graph.write_key(&mut key);
        key.finish()
    }

    /// Same admission measure as `Solver::cost_estimate` for these
    /// objectives (all linear: nodes + edges).
    pub fn cost_estimate(&self) -> u64 {
        self.graph.work_units()
    }

    /// The session warm-memory key — objective + params *without* the
    /// graph, byte-identical to the key the legacy session path builds
    /// from `Solver::name` + `Params::write_key`, so a warm window
    /// certified by one path is honored by the other.
    pub fn warm_key(&self) -> Vec<u8> {
        let mut key = KeyBuilder::default();
        key.write_str(self.objective.name());
        Params {
            bound: Some(self.bound),
            ..Params::default()
        }
        .write_key(&mut key);
        key.finish()
    }

    /// Runs the objective; the response is byte-identical to the legacy
    /// solver's on the same instance.
    ///
    /// # Errors
    ///
    /// The same [`SolveError`]s the legacy solver reports (infeasible
    /// bounds, etc.).
    pub fn run(&self) -> Result<Response, SolveError> {
        let bound = Weight::new(self.bound);
        match (self.objective, &self.graph) {
            (FlatObjective::Bandwidth, FlatGraph::ChainRam(g)) => run_bandwidth(g, bound),
            (FlatObjective::Bandwidth, FlatGraph::ChainDisk(g)) => run_bandwidth(g, bound),
            (FlatObjective::Lexicographic, FlatGraph::ChainRam(g)) => run_lex(g, bound),
            (FlatObjective::Lexicographic, FlatGraph::ChainDisk(g)) => run_lex(g, bound),
            (FlatObjective::Bottleneck, FlatGraph::TreeRam(g)) => run_bottleneck(g, bound),
            (FlatObjective::Bottleneck, FlatGraph::TreeDisk(g)) => run_bottleneck(g, bound),
            (obj, graph) => panic!(
                "flat request mismatch: {} expects a {}, holds a {}",
                obj.name(),
                obj.graph_kind(),
                graph.graph_kind()
            ),
        }
    }

    /// Cost-sliced [`FlatRequest::run`] — same slicing discipline as
    /// `Solver::run_budgeted` on the legacy path.
    ///
    /// # Errors
    ///
    /// As [`FlatRequest::run`], plus deadline/cancel surfacing as
    /// [`SolveError::DeadlineExceeded`] / [`SolveError::Cancelled`].
    pub fn run_budgeted(&self, budget: &Budget) -> Result<Response, SolveError> {
        let bound = Weight::new(self.bound);
        match (self.objective, &self.graph) {
            (FlatObjective::Bandwidth, FlatGraph::ChainRam(g)) => run_bandwidth_b(g, bound, budget),
            (FlatObjective::Bandwidth, FlatGraph::ChainDisk(g)) => {
                run_bandwidth_b(g, bound, budget)
            }
            (FlatObjective::Lexicographic, FlatGraph::ChainRam(g)) => run_lex_b(g, bound, budget),
            (FlatObjective::Lexicographic, FlatGraph::ChainDisk(g)) => run_lex_b(g, bound, budget),
            (FlatObjective::Bottleneck, _) => {
                // The bottleneck solver has no sliced loop; mirror the
                // legacy default: admission-check, charge, then run.
                budget.check_now().map_err(SolveError::from_exceeded)?;
                budget
                    .charge(self.cost_estimate())
                    .map_err(SolveError::from_exceeded)?;
                self.run()
            }
            _ => self.run(),
        }
    }

    /// Warm-started run with a `[hint_lo, hint_hi]` bottleneck window —
    /// same certification contract as `Solver::run_warm`. `None` means
    /// fall back to the cold path.
    pub fn run_warm(&self, hint_lo: u64, hint_hi: u64) -> Option<Result<Response, SolveError>> {
        let bound = Weight::new(self.bound);
        let (lo, hi) = (Weight::new(hint_lo), Weight::new(hint_hi));
        match (self.objective, &self.graph) {
            (FlatObjective::Lexicographic, FlatGraph::ChainRam(g)) => {
                run_lex_warm(g, bound, lo, hi)
            }
            (FlatObjective::Lexicographic, FlatGraph::ChainDisk(g)) => {
                run_lex_warm(g, bound, lo, hi)
            }
            (FlatObjective::Bottleneck, FlatGraph::TreeRam(g)) => {
                run_bottleneck_warm(g, bound, lo, hi)
            }
            (FlatObjective::Bottleneck, FlatGraph::TreeDisk(g)) => {
                run_bottleneck_warm(g, bound, lo, hi)
            }
            _ => None,
        }
    }
}

fn run_bandwidth<C: tgp_graph::ChainView>(
    chain: &C,
    bound: Weight,
) -> Result<Response, SolveError> {
    let part = partition_chain(chain, bound).map_err(SolveError::infeasible)?;
    Ok(render_bandwidth(bound, &part))
}

fn run_bandwidth_b<C: tgp_graph::ChainView>(
    chain: &C,
    bound: Weight,
    budget: &Budget,
) -> Result<Response, SolveError> {
    let part =
        partition_chain_budgeted(chain, bound, budget).map_err(SolveError::from_partition)?;
    Ok(render_bandwidth(bound, &part))
}

fn run_lex<C: tgp_graph::ChainView>(chain: &C, bound: Weight) -> Result<Response, SolveError> {
    let cut = min_bandwidth_cut_lexicographic(chain, bound).map_err(SolveError::infeasible)?;
    render_lexicographic(chain, bound, &cut)
}

fn run_lex_b<C: tgp_graph::ChainView>(
    chain: &C,
    bound: Weight,
    budget: &Budget,
) -> Result<Response, SolveError> {
    let cut = min_bandwidth_cut_lexicographic_budgeted(chain, bound, budget)
        .map_err(SolveError::from_partition)?;
    render_lexicographic(chain, bound, &cut)
}

fn run_lex_warm<C: tgp_graph::ChainView>(
    chain: &C,
    bound: Weight,
    lo: Weight,
    hi: Weight,
) -> Option<Result<Response, SolveError>> {
    let cut = min_bandwidth_cut_lexicographic_warm(chain, bound, lo, hi).ok()??;
    Some(render_lexicographic(chain, bound, &cut))
}

fn run_bottleneck<T: tgp_graph::TreeView>(tree: &T, bound: Weight) -> Result<Response, SolveError> {
    let r = min_bottleneck_cut(tree, bound).map_err(SolveError::infeasible)?;
    // Cutting k edges of a tree always leaves k + 1 components, which is
    // exactly what the legacy path's components().count() reports.
    let components = r.cut.len() + 1;
    Ok(render_bottleneck(bound, &r.cut, r.bottleneck, components))
}

fn run_bottleneck_warm<T: tgp_graph::TreeView>(
    tree: &T,
    bound: Weight,
    lo: Weight,
    hi: Weight,
) -> Option<Result<Response, SolveError>> {
    let r = min_bottleneck_cut_warm(tree, bound, lo, hi).ok()??;
    let components = r.cut.len() + 1;
    Some(Ok(render_bottleneck(
        bound,
        &r.cut,
        r.bottleneck,
        components,
    )))
}
