//! Streaming request-body ingest into flat graph arrays.
//!
//! [`ingest_flat`] scans a raw JSON request body byte-by-byte and
//! streams the graph's weights straight into `tgp-store` builders —
//! the document tree (`json::Value`) is never materialized, so a
//! 100-million-element upload costs a few flat arrays (RAM- or
//! disk-backed, chosen by the caller) instead of a heap of boxed JSON
//! nodes several times the body's size.
//!
//! The parser is deliberately *conservative*: it understands exactly
//! the shape the three flat objectives accept —
//!
//! ```json
//! {"objective": "...", "bound": N,
//!  "graph": {"node_weights": [...], "edge_weights": [...]}}
//! {"objective": "...", "bound": N,
//!  "graph": {"node_weights": [...], "edges": [{"a":0,"b":1,"weight":2}, ...]}}
//! ```
//!
//! (fields in any order) — and returns `Ok(None)` for anything else:
//! unknown fields, other objectives, string escapes, malformed JSON,
//! graph-validation failures. The caller then falls back to the legacy
//! buffered path, which produces the canonical error envelope. Ingest
//! therefore never has to replicate error *messages*, only success
//! bytes — and those are covered by the shared render helpers.
//!
//! Work is cost-sliced: one [`Budget`] unit per parsed element, so an
//! expired deadline or a raised cancel flag stops a huge upload
//! mid-parse instead of after it.

use std::path::Path;

use tgp_core::budget::{Budget, Exceeded};
use tgp_store::{DiskBacking, FlatPathBuilder, FlatTreeBuilder, MemoryBacking, RamBacking};

use crate::error::SolveError;
use crate::flat::{FlatGraph, FlatObjective, FlatRequest};

/// How the graph arrays should be backed.
#[derive(Debug, Clone)]
pub enum IngestBacking {
    /// Ordinary heap vectors.
    Ram,
    /// Unlinked mmap spill files in the given directory.
    Disk {
        /// Directory for spill files.
        dir: std::path::PathBuf,
    },
}

impl IngestBacking {
    /// Disk backing rooted at `dir`.
    pub fn disk(dir: impl AsRef<Path>) -> Self {
        IngestBacking::Disk {
            dir: dir.as_ref().to_path_buf(),
        }
    }
}

/// Why the streaming parser gave up on a body.
enum Abort {
    /// Not the shape we stream; caller falls back to the legacy path.
    Unsupported,
    /// The budget ran out mid-parse.
    Exceeded(Exceeded),
}

impl From<Exceeded> for Abort {
    fn from(e: Exceeded) -> Self {
        Abort::Exceeded(e)
    }
}

impl From<std::io::Error> for Abort {
    // A backing failure (spill dir unwritable, disk full). The legacy
    // in-RAM path may still succeed, so treat it as a fallback.
    fn from(_: std::io::Error) -> Self {
        Abort::Unsupported
    }
}

type Scan<'a, T> = Result<T, Abort>;

/// Streams `body` into a [`FlatRequest`] if it has the exact shape of a
/// flat-objective request.
///
/// Returns `Ok(None)` when the body is anything else — the caller must
/// then parse it through the legacy `Registry` path, which owns the
/// canonical error behaviour.
///
/// # Errors
///
/// Only budget exhaustion: [`SolveError::DeadlineExceeded`] or
/// [`SolveError::Cancelled`].
pub fn ingest_flat(
    body: &[u8],
    backing: &IngestBacking,
    budget: &Budget,
) -> Result<Option<FlatRequest>, SolveError> {
    let result = match backing {
        IngestBacking::Ram => parse_body(body, &RamBacking, budget),
        IngestBacking::Disk { dir } => parse_body(body, &DiskBacking::new(dir), budget),
    };
    match result {
        Ok(request) => Ok(Some(request)),
        Err(Abort::Unsupported) => Ok(None),
        Err(Abort::Exceeded(e)) => Err(SolveError::from_exceeded(e)),
    }
}

fn parse_body<B>(body: &[u8], backing: &B, budget: &Budget) -> Scan<'static, FlatRequest>
where
    B: MemoryBacking + Clone,
    FlatGraph: FromBuilt<B>,
{
    let mut s = Cursor::new(body, budget);
    s.skip_ws();
    s.expect(b'{')?;
    let mut objective: Option<FlatObjective> = None;
    let mut bound: Option<u64> = None;
    let mut graph: Option<FlatGraph> = None;
    if !s.try_consume(b'}') {
        loop {
            let key_range = s.string_range()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            match s.slice(key_range) {
                b"objective" => {
                    if objective.is_some() {
                        return Err(Abort::Unsupported);
                    }
                    let r = s.string_range()?;
                    let name = std::str::from_utf8(s.slice(r)).map_err(|_| Abort::Unsupported)?;
                    objective = Some(FlatObjective::from_name(name).ok_or(Abort::Unsupported)?);
                }
                b"bound" => {
                    if bound.is_some() {
                        return Err(Abort::Unsupported);
                    }
                    bound = Some(s.number()?);
                }
                b"graph" => {
                    if graph.is_some() {
                        return Err(Abort::Unsupported);
                    }
                    graph = Some(parse_graph(&mut s, backing)?);
                }
                _ => return Err(Abort::Unsupported),
            }
            s.skip_ws();
            if s.try_consume(b',') {
                s.skip_ws();
                continue;
            }
            s.expect(b'}')?;
            break;
        }
    }
    s.skip_ws();
    if !s.at_end() {
        return Err(Abort::Unsupported);
    }
    let (objective, bound, graph) = match (objective, bound, graph) {
        (Some(o), Some(b), Some(g)) => (o, b, g),
        _ => return Err(Abort::Unsupported),
    };
    if graph.graph_kind() != objective.graph_kind() {
        return Err(Abort::Unsupported);
    }
    Ok(FlatRequest {
        objective,
        bound,
        graph,
    })
}

/// Wraps a finished builder product into the right [`FlatGraph`]
/// variant for its backing.
trait FromBuilt<B: MemoryBacking>: Sized {
    fn from_path(path: tgp_store::FlatPath<B>) -> Self;
    fn from_tree(tree: tgp_store::FlatTree<B>) -> Self;
}

impl FromBuilt<RamBacking> for FlatGraph {
    fn from_path(path: tgp_store::FlatPath<RamBacking>) -> Self {
        FlatGraph::ChainRam(path)
    }
    fn from_tree(tree: tgp_store::FlatTree<RamBacking>) -> Self {
        FlatGraph::TreeRam(tree)
    }
}

impl FromBuilt<DiskBacking> for FlatGraph {
    fn from_path(path: tgp_store::FlatPath<DiskBacking>) -> Self {
        FlatGraph::ChainDisk(path)
    }
    fn from_tree(tree: tgp_store::FlatTree<DiskBacking>) -> Self {
        FlatGraph::TreeDisk(tree)
    }
}

/// Parses the `"graph"` object. The cursor sits on its `{`.
fn parse_graph<B>(s: &mut Cursor<'_>, backing: &B) -> Scan<'static, FlatGraph>
where
    B: MemoryBacking + Clone,
    FlatGraph: FromBuilt<B>,
{
    // The graph's kind is decided by which keys the object carries, and
    // "node_weights" may precede the deciding key. A cheap structural
    // pre-scan (skip values, record keys) settles chain vs. tree before
    // any array is parsed, so weights stream into the right builder on
    // the first (and only) real pass.
    let is_tree = {
        let mut probe = s.clone();
        probe.expect(b'{')?;
        probe.skip_ws();
        let mut has_edges = false;
        let mut has_edge_weights = false;
        if !probe.try_consume(b'}') {
            loop {
                let key = probe.string_range()?;
                match probe.slice(key) {
                    b"edges" => has_edges = true,
                    b"edge_weights" => has_edge_weights = true,
                    b"node_weights" => {}
                    _ => return Err(Abort::Unsupported),
                }
                probe.skip_ws();
                probe.expect(b':')?;
                probe.skip_ws();
                probe.skip_value()?;
                probe.skip_ws();
                if probe.try_consume(b',') {
                    probe.skip_ws();
                    continue;
                }
                probe.expect(b'}')?;
                break;
            }
        }
        match (has_edges, has_edge_weights) {
            (true, false) => true,
            (false, true) => false,
            // Both, neither, or a lone node_weights: not a shape we
            // stream (the legacy path owns the canonical error).
            _ => return Err(Abort::Unsupported),
        }
    };
    if is_tree {
        parse_tree_graph(s, backing).map(FlatGraph::from_tree)
    } else {
        parse_chain_graph(s, backing).map(FlatGraph::from_path)
    }
}

fn parse_chain_graph<B: MemoryBacking + Clone>(
    s: &mut Cursor<'_>,
    backing: &B,
) -> Scan<'static, tgp_store::FlatPath<B>> {
    let mut builder = FlatPathBuilder::new(backing, 0)?;
    let mut seen_nodes = false;
    let mut seen_edges = false;
    s.expect(b'{')?;
    s.skip_ws();
    if !s.try_consume(b'}') {
        loop {
            let key = s.string_range()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            match s.slice(key) {
                b"node_weights" => {
                    if std::mem::replace(&mut seen_nodes, true) {
                        return Err(Abort::Unsupported);
                    }
                    s.u64_array(|w| builder.push_node(w))?;
                }
                b"edge_weights" => {
                    if std::mem::replace(&mut seen_edges, true) {
                        return Err(Abort::Unsupported);
                    }
                    s.u64_array(|w| builder.push_edge(w))?;
                }
                _ => return Err(Abort::Unsupported),
            }
            s.skip_ws();
            if s.try_consume(b',') {
                s.skip_ws();
                continue;
            }
            s.expect(b'}')?;
            break;
        }
    }
    if !(seen_nodes && seen_edges) {
        return Err(Abort::Unsupported);
    }
    builder.finish().map_err(|_| Abort::Unsupported)
}

fn parse_tree_graph<B: MemoryBacking + Clone>(
    s: &mut Cursor<'_>,
    backing: &B,
) -> Scan<'static, tgp_store::FlatTree<B>> {
    let mut builder = FlatTreeBuilder::new(backing.clone(), 0)?;
    let mut seen_nodes = false;
    let mut seen_edges = false;
    s.expect(b'{')?;
    s.skip_ws();
    if !s.try_consume(b'}') {
        loop {
            let key = s.string_range()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            match s.slice(key) {
                b"node_weights" => {
                    if std::mem::replace(&mut seen_nodes, true) {
                        return Err(Abort::Unsupported);
                    }
                    s.u64_array(|w| builder.push_node(w))?;
                }
                b"edges" => {
                    if std::mem::replace(&mut seen_edges, true) {
                        return Err(Abort::Unsupported);
                    }
                    parse_tree_edges(s, &mut builder)?;
                }
                _ => return Err(Abort::Unsupported),
            }
            s.skip_ws();
            if s.try_consume(b',') {
                s.skip_ws();
                continue;
            }
            s.expect(b'}')?;
            break;
        }
    }
    if !(seen_nodes && seen_edges) {
        return Err(Abort::Unsupported);
    }
    builder.finish().map_err(|_| Abort::Unsupported)
}

/// Parses `[{"a":0,"b":1,"weight":2}, ...]` (fields in any order)
/// straight into the tree builder.
fn parse_tree_edges<B: MemoryBacking>(
    s: &mut Cursor<'_>,
    builder: &mut FlatTreeBuilder<B>,
) -> Scan<'static, ()> {
    s.expect(b'[')?;
    s.skip_ws();
    if s.try_consume(b']') {
        return Ok(());
    }
    loop {
        s.expect(b'{')?;
        s.skip_ws();
        let (mut a, mut b, mut w) = (None, None, None);
        if !s.try_consume(b'}') {
            loop {
                let key = s.string_range()?;
                s.skip_ws();
                s.expect(b':')?;
                s.skip_ws();
                let slot = match s.slice(key) {
                    b"a" => &mut a,
                    b"b" => &mut b,
                    b"weight" => &mut w,
                    _ => return Err(Abort::Unsupported),
                };
                if slot.is_some() {
                    return Err(Abort::Unsupported);
                }
                *slot = Some(s.number()?);
                s.skip_ws();
                if s.try_consume(b',') {
                    s.skip_ws();
                    continue;
                }
                s.expect(b'}')?;
                break;
            }
        }
        let (a, b, w) = match (a, b, w) {
            (Some(a), Some(b), Some(w)) => (a, b, w),
            _ => return Err(Abort::Unsupported),
        };
        let (a, b) = match (usize::try_from(a), usize::try_from(b)) {
            (Ok(a), Ok(b)) => (a, b),
            _ => return Err(Abort::Unsupported),
        };
        builder.push_edge(a, b, w)?;
        s.budget_tick()?;
        s.skip_ws();
        if s.try_consume(b',') {
            s.skip_ws();
            continue;
        }
        s.expect(b']')?;
        return Ok(());
    }
}

/// A byte cursor over the body with budget accounting.
#[derive(Clone)]
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    budget: &'a Budget,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8], budget: &'a Budget) -> Self {
        Cursor { b, i: 0, budget }
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Scan<'static, ()> {
        if self.peek() == Some(byte) {
            self.i += 1;
            Ok(())
        } else {
            Err(Abort::Unsupported)
        }
    }

    fn try_consume(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// One budget unit per parsed element, with the stride machinery in
    /// [`Budget`] keeping the common case to a counter decrement.
    fn budget_tick(&mut self) -> Scan<'static, ()> {
        self.budget.charge(1).map_err(Abort::from)
    }

    fn slice(&self, range: (usize, usize)) -> &'a [u8] {
        &self.b[range.0..range.1]
    }

    /// Consumes a JSON string with no escapes and returns its byte
    /// range. Escapes are not needed for any field the flat schema
    /// accepts, so a backslash simply falls back to the legacy parser.
    fn string_range(&mut self) -> Scan<'static, (usize, usize)> {
        self.expect(b'"')?;
        let start = self.i;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let end = self.i;
                    self.i += 1;
                    return Ok((start, end));
                }
                Some(b'\\') | None => return Err(Abort::Unsupported),
                Some(_) => self.i += 1,
            }
        }
    }

    /// Consumes a strict JSON non-negative integer fitting `u64`.
    /// Minus signs, fractions, exponents, leading zeros and overflow
    /// all fall back (the legacy parser owns their canonical errors).
    fn number(&mut self) -> Scan<'static, u64> {
        let start = self.i;
        let mut value: u64 = 0;
        while let Some(c @ b'0'..=b'9') = self.peek() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(c - b'0')))
                .ok_or(Abort::Unsupported)?;
            self.i += 1;
        }
        let len = self.i - start;
        if len == 0 || (len > 1 && self.b[start] == b'0') {
            return Err(Abort::Unsupported);
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(Abort::Unsupported);
        }
        Ok(value)
    }

    /// Streams `[n, n, ...]` into `push`, one budget unit per element.
    fn u64_array(&mut self, mut push: impl FnMut(u64) -> std::io::Result<()>) -> Scan<'static, ()> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.try_consume(b']') {
            return Ok(());
        }
        loop {
            let v = self.number()?;
            push(v)?;
            self.budget_tick()?;
            self.skip_ws();
            if self.try_consume(b',') {
                self.skip_ws();
                continue;
            }
            self.expect(b']')?;
            return Ok(());
        }
    }

    /// Skips one JSON value structurally (for the kind pre-scan),
    /// charging a budget unit per 64 bytes skipped.
    fn skip_value(&mut self) -> Scan<'static, ()> {
        let start = self.i;
        match self.peek() {
            Some(b'"') => {
                self.string_range()?;
            }
            Some(b'{' | b'[') => {
                let mut depth = 0usize;
                loop {
                    match self.peek() {
                        None => return Err(Abort::Unsupported),
                        Some(b'"') => {
                            self.string_range()?;
                        }
                        Some(b'{' | b'[') => {
                            depth += 1;
                            self.i += 1;
                        }
                        Some(b'}' | b']') => {
                            depth -= 1;
                            self.i += 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => self.i += 1,
                    }
                }
            }
            Some(_) => {
                // A scalar: runs until a separator or whitespace.
                while let Some(c) = self.peek() {
                    if matches!(c, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                        break;
                    }
                    self.i += 1;
                }
                if self.i == start {
                    return Err(Abort::Unsupported);
                }
            }
            None => return Err(Abort::Unsupported),
        }
        self.budget
            .charge(((self.i - start) / 64 + 1) as u64)
            .map_err(Abort::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use tgp_graph::json::Value;

    fn ingest(body: &str) -> Option<FlatRequest> {
        ingest_flat(body.as_bytes(), &IngestBacking::Ram, &Budget::unlimited()).unwrap()
    }

    const CHAIN_BODY: &str = r#"{"objective": "bandwidth", "bound": 10,
        "graph": {"node_weights": [2, 3, 5, 7], "edge_weights": [10, 1, 10]}}"#;
    const TREE_BODY: &str = r#"{"objective": "bottleneck", "bound": 10,
        "graph": {"node_weights": [1, 2, 3, 4],
                  "edges": [{"a": 0, "b": 1, "weight": 10},
                            {"a": 0, "b": 2, "weight": 20},
                            {"weight": 30, "b": 3, "a": 2}]}}"#;

    fn legacy_response(body: &str) -> String {
        let value = Value::parse(body).unwrap();
        let (_, solver, request) = Registry::shared().dispatch(&value).unwrap();
        solver.run(&request).unwrap().value.to_string()
    }

    #[test]
    fn streams_a_chain_body_and_matches_legacy_bytes() {
        let flat = ingest(CHAIN_BODY).expect("eligible body");
        assert_eq!(flat.bound, 10);
        assert_eq!(flat.objective, FlatObjective::Bandwidth);
        let response = flat.run().unwrap().value.to_string();
        assert_eq!(response, legacy_response(CHAIN_BODY));
    }

    #[test]
    fn streams_a_tree_body_with_reordered_fields() {
        let flat = ingest(TREE_BODY).expect("eligible body");
        let response = flat.run().unwrap().value.to_string();
        assert_eq!(response, legacy_response(TREE_BODY));
    }

    #[test]
    fn field_order_does_not_matter() {
        let reordered = r#"{"graph": {"edge_weights": [10, 1, 10], "node_weights": [2, 3, 5, 7]},
            "bound": 10, "objective": "lexicographic"}"#;
        let flat = ingest(reordered).expect("eligible body");
        assert_eq!(flat.objective, FlatObjective::Lexicographic);
        assert_eq!(
            flat.run().unwrap().value.to_string(),
            legacy_response(reordered)
        );
    }

    #[test]
    fn canonical_key_matches_the_legacy_solver() {
        for body in [CHAIN_BODY, TREE_BODY] {
            let flat = ingest(body).expect("eligible body");
            let value = Value::parse(body).unwrap();
            let (_, solver, request) = Registry::shared().dispatch(&value).unwrap();
            assert_eq!(flat.canonical_key(), solver.canonical_key(&request));
        }
    }

    #[test]
    fn ineligible_bodies_fall_back() {
        for body in [
            // other objective
            r#"{"objective": "procmin", "bound": 1, "graph": {"node_weights": [1],
                "edges": []}}"#,
            // unknown top-level field
            r#"{"objective": "bandwidth", "bound": 1, "bogus": 2,
                "graph": {"node_weights": [1], "edge_weights": []}}"#,
            // unknown graph field
            r#"{"objective": "bandwidth", "bound": 1,
                "graph": {"node_weights": [1], "edge_weights": [], "x": 0}}"#,
            // objective/graph-kind mismatch
            r#"{"objective": "bottleneck", "bound": 1,
                "graph": {"node_weights": [1], "edge_weights": []}}"#,
            // malformed JSON
            r#"{"objective": "bandwidth", "bound": 1, "graph": "#,
            // negative weight
            r#"{"objective": "bandwidth", "bound": 1,
                "graph": {"node_weights": [-1], "edge_weights": []}}"#,
            // float bound
            r#"{"objective": "bandwidth", "bound": 1.5,
                "graph": {"node_weights": [1], "edge_weights": []}}"#,
            // invalid graph (wrong edge count) — legacy owns the error
            r#"{"objective": "bandwidth", "bound": 1,
                "graph": {"node_weights": [1, 2], "edge_weights": [1, 2]}}"#,
            // missing bound
            r#"{"objective": "bandwidth",
                "graph": {"node_weights": [1], "edge_weights": []}}"#,
            // trailing garbage
            r#"{"objective": "bandwidth", "bound": 1,
                "graph": {"node_weights": [1], "edge_weights": []}} x"#,
        ] {
            assert!(ingest(body).is_none(), "must fall back: {body}");
        }
    }

    #[test]
    fn disk_backing_produces_identical_bytes() {
        let flat = ingest_flat(
            CHAIN_BODY.as_bytes(),
            &IngestBacking::disk(std::env::temp_dir()),
            &Budget::unlimited(),
        )
        .unwrap()
        .expect("eligible body");
        assert_eq!(flat.graph.backing_kind(), tgp_store::BackingKind::Disk);
        assert_eq!(flat.graph.resident_bytes(), 0);
        assert_eq!(
            flat.run().unwrap().value.to_string(),
            legacy_response(CHAIN_BODY)
        );
    }

    #[test]
    fn expired_budget_stops_ingest() {
        let budget = Budget::with_deadline(std::time::Instant::now()).with_stride(0);
        let err = ingest_flat(CHAIN_BODY.as_bytes(), &IngestBacking::Ram, &budget).unwrap_err();
        assert_eq!(err.code(), "deadline_exceeded");
    }
}
