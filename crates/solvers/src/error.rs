//! The shared failure type for registry dispatch, parsing and solving.

use std::error::Error;
use std::fmt;

use crate::request::GraphKind;

/// Everything that can go wrong between a raw request object and a
/// rendered response.
///
/// Every variant maps to HTTP 422 (the request was syntactically valid
/// JSON but semantically unusable); transports reserve 400 for bodies
/// that are not JSON at all. [`SolveError::code`] gives each variant a
/// stable machine-readable tag that front ends embed next to the human
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The `objective` field named no registered solver.
    UnknownObjective {
        /// The objective the request asked for.
        got: String,
        /// Every registered objective name, for the error message.
        known: Vec<&'static str>,
    },
    /// A required field is absent (or present with the wrong JSON type).
    MissingField {
        /// The field name.
        field: &'static str,
        /// What the field must contain, e.g. `"a non-negative integer"`.
        expected: &'static str,
    },
    /// A field is present but its value is unusable.
    InvalidField {
        /// The field name.
        field: String,
        /// Why the value was rejected.
        message: String,
    },
    /// The request carries a field the solver does not accept. Strict
    /// rejection (rather than silently ignoring) catches typos like
    /// `"buond"` that would otherwise fall back to defaults.
    UnknownField {
        /// The unrecognized field name.
        field: String,
        /// The objective whose schema was violated.
        objective: &'static str,
    },
    /// The `graph` field does not describe the graph class this solver
    /// operates on.
    WrongGraphKind {
        /// The objective that rejected the graph.
        objective: &'static str,
        /// The graph class the solver expects.
        expected: GraphKind,
        /// The underlying parse failure.
        message: String,
    },
    /// A request parameter would make the solve too expensive to run
    /// inside a shared service (e.g. the pseudo-polynomial tree DP with
    /// an enormous bound).
    TooExpensive {
        /// The objective with the cost cap.
        objective: &'static str,
        /// Why the instance was refused.
        message: String,
    },
    /// The instance is well-formed but has no solution (e.g. a vertex
    /// heavier than the load bound).
    Infeasible {
        /// The solver's own error message.
        message: String,
    },
    /// The request's deadline expired before (or while) the solve ran.
    /// Transports map this to HTTP 504.
    DeadlineExceeded,
    /// The solve was cooperatively cancelled mid-flight (shutdown, or an
    /// already-failed batch). Transports map this to HTTP 503.
    Cancelled,
}

impl SolveError {
    /// Stable machine-readable tag for the variant, embedded in error
    /// responses as `"code"`.
    pub fn code(&self) -> &'static str {
        match self {
            SolveError::UnknownObjective { .. } => "unknown_objective",
            SolveError::MissingField { .. } => "missing_field",
            SolveError::InvalidField { .. } => "invalid_field",
            SolveError::UnknownField { .. } => "unknown_field",
            SolveError::WrongGraphKind { .. } => "wrong_graph_kind",
            SolveError::TooExpensive { .. } => "too_expensive",
            SolveError::Infeasible { .. } => "infeasible",
            SolveError::DeadlineExceeded => "deadline_exceeded",
            SolveError::Cancelled => "cancelled",
        }
    }

    /// Convenience constructor for [`SolveError::Infeasible`] from any
    /// solver error.
    pub fn infeasible(error: impl fmt::Display) -> Self {
        SolveError::Infeasible {
            message: error.to_string(),
        }
    }

    /// Lifts a core [`PartitionError`](tgp_core::PartitionError),
    /// preserving budget interrupts as their own stable codes instead of
    /// folding them into [`SolveError::Infeasible`].
    pub fn from_partition(error: tgp_core::PartitionError) -> Self {
        match error {
            tgp_core::PartitionError::Interrupted(tgp_core::budget::Exceeded::Cancelled) => {
                SolveError::Cancelled
            }
            tgp_core::PartitionError::Interrupted(_) => SolveError::DeadlineExceeded,
            other => SolveError::infeasible(other),
        }
    }

    /// Lifts a budget refusal directly.
    pub fn from_exceeded(why: tgp_core::budget::Exceeded) -> Self {
        match why {
            tgp_core::budget::Exceeded::Cancelled => SolveError::Cancelled,
            tgp_core::budget::Exceeded::Deadline => SolveError::DeadlineExceeded,
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UnknownObjective { got, known } => {
                write!(f, "unknown objective {got:?}; known: {}", known.join(", "))
            }
            SolveError::MissingField { field, expected } => {
                write!(f, "missing field {field:?} ({expected})")
            }
            SolveError::InvalidField { field, message } => {
                write!(f, "invalid field {field:?}: {message}")
            }
            SolveError::UnknownField { field, objective } => {
                write!(f, "objective {objective:?} does not accept field {field:?}")
            }
            SolveError::WrongGraphKind {
                objective,
                expected,
                message,
            } => write!(
                f,
                "objective {objective:?} needs a {expected} graph: {message}"
            ),
            SolveError::TooExpensive { objective, message } => {
                write!(f, "objective {objective:?} refused the instance: {message}")
            }
            SolveError::Infeasible { message } => write!(f, "{message}"),
            SolveError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the solve completed")
            }
            SolveError::Cancelled => write!(f, "solve cancelled before it completed"),
        }
    }
}

impl Error for SolveError {}
