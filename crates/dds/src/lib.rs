//! Distributed discrete-event simulation of logic circuits — the second
//! application of the reproduced paper (§3).
//!
//! Pipeline: build a gate-level circuit ([`circuit`]), simulate it under
//! random stimulus to *measure* per-gate computation and per-wire message
//! counts ([`sim`]), then partition the resulting weighted process graph
//! across the processors of a shared-memory machine via the paper's
//! linear super-graph approximation and bandwidth-minimization algorithm
//! ([`partition`]). Circuit families from the paper's motivation (ring
//! counters, shift registers, adders) are in [`generators`].
//!
//! # Example
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use tgp_dds::generators::shift_register;
//! use tgp_dds::partition::partition_circuit;
//! use tgp_dds::sim::simulate_activity;
//! use tgp_graph::Weight;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = shift_register(16)?;
//! let profile = simulate_activity(&circuit, 200, &mut SmallRng::seed_from_u64(7));
//! let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
//! let part = partition_circuit(&circuit, &profile, Weight::new(total / 2))?;
//! assert!(part.processors >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod exec;
pub mod generators;
pub mod parallel;
pub mod partition;
pub mod sim;

pub use circuit::{Circuit, CircuitBuilder, CircuitError, GateId, GateKind};
pub use exec::{estimate_execution, estimate_speedup};
pub use parallel::{simulate_parallel, ParallelSimReport};
pub use partition::{
    partition_circuit, partition_circuit_with_ordering, CircuitPartition, DdsError,
};
pub use sim::{simulate_activity, ActivityProfile};
