//! Estimating the distributed simulation's execution on the machine.
//!
//! Once a circuit is partitioned, the measured activity tells us exactly
//! how much computation each processor performs and how many messages
//! cross each processor pair over the whole run. Replaying that aggregate
//! as a compute-then-exchange round on the `tgp-shmem` machine yields an
//! estimated parallel runtime — and hence the speed-up the partition
//! actually buys, which is the quantity a DDS practitioner cares about.

use std::collections::BTreeMap;

use tgp_shmem::exchange::{simulate_compute_exchange, Transfer};
use tgp_shmem::machine::Machine;
use tgp_shmem::pipeline::SimError;
use tgp_shmem::SimReport;

use crate::circuit::Circuit;
use crate::partition::CircuitPartition;
use crate::sim::ActivityProfile;

/// Replays the measured workload of a partitioned circuit as one
/// compute-and-exchange round on `machine`.
///
/// # Errors
///
/// [`SimError::TooManyStages`] if the partition uses more processors than
/// the machine has.
///
/// # Panics
///
/// Panics if `partition` does not belong to `circuit`/`profile` (gate
/// counts must match).
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use tgp_dds::exec::estimate_execution;
/// use tgp_dds::generators::shift_register;
/// use tgp_dds::partition::partition_circuit;
/// use tgp_dds::sim::simulate_activity;
/// use tgp_graph::Weight;
/// use tgp_shmem::machine::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = shift_register(32)?;
/// let profile = simulate_activity(&circuit, 100, &mut SmallRng::seed_from_u64(1));
/// let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
/// let part = partition_circuit(&circuit, &profile, Weight::new(total / 2))?;
/// let report = estimate_execution(&circuit, &profile, &part, &Machine::bus(4)?)?;
/// assert!(report.makespan > 0);
/// # Ok(())
/// # }
/// ```
pub fn estimate_execution(
    circuit: &Circuit,
    profile: &ActivityProfile,
    partition: &CircuitPartition,
    machine: &Machine,
) -> Result<SimReport, SimError> {
    assert_eq!(
        partition.processor_of.len(),
        circuit.len(),
        "partition must cover every gate of the circuit"
    );
    // Aggregate cross-processor wire messages per processor pair.
    let mut volumes: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for ((u, v), &m) in circuit.wires().iter().zip(&profile.wire_messages) {
        let (pu, pv) = (partition.processor_of[u.0], partition.processor_of[v.0]);
        if pu != pv && m > 0 {
            *volumes.entry((pu.min(pv), pu.max(pv))).or_insert(0) += m;
        }
    }
    let transfers: Vec<Transfer> = volumes
        .into_iter()
        .map(|((from, to), volume)| Transfer { from, to, volume })
        .collect();
    simulate_compute_exchange(&partition.load, &transfers, machine)
}

/// The speed-up of running the partitioned simulation on `machine`
/// relative to running everything on a single processor of the same
/// speed: `serial time / parallel makespan`.
///
/// # Errors
///
/// Same as [`estimate_execution`].
pub fn estimate_speedup(
    circuit: &Circuit,
    profile: &ActivityProfile,
    partition: &CircuitPartition,
    machine: &Machine,
) -> Result<f64, SimError> {
    let report = estimate_execution(circuit, profile, partition, machine)?;
    let serial_work: u64 = partition.load.iter().sum();
    let serial = machine.compute_time(serial_work);
    if report.makespan == 0 {
        return Ok(1.0);
    }
    Ok(serial as f64 / report.makespan as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::shift_register;
    use crate::partition::{partition_circuit, partition_circuit_block};
    use crate::sim::simulate_activity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tgp_graph::Weight;

    fn setup() -> (crate::Circuit, ActivityProfile) {
        let c = shift_register(64).unwrap();
        let p = simulate_activity(&c, 300, &mut SmallRng::seed_from_u64(9));
        (c, p)
    }

    #[test]
    fn traffic_matches_inter_processor_messages() {
        let (c, p) = setup();
        let total: u64 = p.evaluations.iter().map(|e| e + 1).sum();
        let part = partition_circuit(&c, &p, Weight::new(total / 3)).unwrap();
        let machine = Machine::bus(part.processors).unwrap();
        let report = estimate_execution(&c, &p, &part, &machine).unwrap();
        assert_eq!(report.total_traffic, part.inter_messages);
        assert_eq!(
            report.processor_busy.iter().sum::<u64>(),
            part.load.iter().sum::<u64>()
        );
    }

    #[test]
    fn speedup_is_positive_and_bounded_by_processors() {
        let (c, p) = setup();
        let total: u64 = p.evaluations.iter().map(|e| e + 1).sum();
        let part = partition_circuit(&c, &p, Weight::new(total / 3)).unwrap();
        let machine = Machine::bus(part.processors).unwrap();
        let s = estimate_speedup(&c, &p, &part, &machine).unwrap();
        assert!(s > 1.0, "parallel run should beat serial: {s}");
        assert!(s <= part.processors as f64 + 1e-9);
    }

    #[test]
    fn good_partitions_beat_block_partitions_end_to_end() {
        let (c, p) = setup();
        let total: u64 = p.evaluations.iter().map(|e| e + 1).sum();
        let part = partition_circuit(&c, &p, Weight::new(total / 3)).unwrap();
        let block = partition_circuit_block(&c, &p, part.processors);
        let machine = Machine::bus(part.processors).unwrap();
        let smart = estimate_execution(&c, &p, &part, &machine).unwrap();
        let naive = estimate_execution(&c, &p, &block, &machine).unwrap();
        assert!(smart.total_traffic <= naive.total_traffic);
    }

    #[test]
    fn machine_too_small_is_rejected() {
        let (c, p) = setup();
        let total: u64 = p.evaluations.iter().map(|e| e + 1).sum();
        let part = partition_circuit(&c, &p, Weight::new(total / 4)).unwrap();
        assert!(part.processors > 1);
        let err = estimate_execution(&c, &p, &part, &Machine::bus(1).unwrap()).unwrap_err();
        assert!(matches!(err, SimError::TooManyStages { .. }));
    }
}
