//! Gate-level logic circuits.
//!
//! The paper's second application (§3) is distributed discrete-event
//! simulation of logic circuits: each gate is a simulation process, each
//! wire a message channel. This module models the circuits themselves;
//! [`crate::sim`] runs them to measure activity, and [`crate::partition`]
//! turns the measurements into a weighted process graph for partitioning.

use std::error::Error;
use std::fmt;

/// Identifier of a gate within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub usize);

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The logic function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// A primary input (driven by the testbench each cycle).
    Input,
    /// Logical AND of all inputs.
    And,
    /// Logical OR of all inputs.
    Or,
    /// Logical NOT (exactly one input).
    Not,
    /// Logical XOR of all inputs.
    Xor,
    /// Logical NAND of all inputs.
    Nand,
    /// A D flip-flop: latches its single input at the clock edge.
    Dff,
}

impl GateKind {
    /// Whether the gate's output updates only at clock edges.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// Evaluates the combinational function over the input values.
    ///
    /// # Panics
    ///
    /// Panics on clocked kinds ([`GateKind::Input`], [`GateKind::Dff`]) —
    /// their values come from the testbench or the previous cycle, not
    /// from combinational evaluation — and on a NOT gate with no input.
    pub fn eval(self, mut inputs: impl Iterator<Item = bool>) -> bool {
        match self {
            GateKind::And => inputs.all(|b| b),
            GateKind::Nand => !inputs.all(|b| b),
            GateKind::Or => inputs.any(|b| b),
            GateKind::Xor => inputs.fold(false, |acc, b| acc ^ b),
            GateKind::Not => !inputs.next().expect("NOT has one input"),
            GateKind::Input | GateKind::Dff => {
                panic!("clocked elements are not combinationally evaluated")
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Gate {
    kind: GateKind,
    inputs: Vec<GateId>,
}

/// Errors constructing a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate input refers to a gate id that does not exist (yet).
    UnknownGate {
        /// The referencing gate.
        gate: GateId,
        /// The missing input.
        input: GateId,
    },
    /// A gate has the wrong number of inputs for its kind.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
        /// The number of inputs supplied.
        inputs: usize,
    },
    /// The combinational part of the circuit contains a cycle (cycles are
    /// only allowed through flip-flops).
    CombinationalCycle,
    /// The circuit has no gates.
    Empty,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownGate { gate, input } => {
                write!(f, "gate {gate} references unknown input {input}")
            }
            CircuitError::BadArity { gate, kind, inputs } => {
                write!(
                    f,
                    "gate {gate} of kind {kind:?} cannot take {inputs} input(s)"
                )
            }
            CircuitError::CombinationalCycle => {
                write!(
                    f,
                    "combinational cycle (cycles must pass through a flip-flop)"
                )
            }
            CircuitError::Empty => write!(f, "circuit has no gates"),
        }
    }
}

impl Error for CircuitError {}

/// An incrementally built gate-level circuit.
///
/// # Examples
///
/// ```
/// use tgp_dds::circuit::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new();
/// let a = b.input();
/// let bb = b.input();
/// let x = b.gate(GateKind::Xor, vec![a, bb])?;
/// let _q = b.gate(GateKind::Dff, vec![x])?;
/// let circuit = b.build()?;
/// assert_eq!(circuit.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    gates: Vec<Gate>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> GateId {
        self.gates.push(Gate {
            kind: GateKind::Input,
            inputs: Vec::new(),
        });
        GateId(self.gates.len() - 1)
    }

    /// Adds a gate of `kind` fed by `inputs`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::BadArity`] or [`CircuitError::UnknownGate`] for
    /// malformed gates. Forward references (e.g. a feedback wire into an
    /// earlier gate through a DFF) are allowed only to *existing* gate ids
    /// at build time, so create the DFF first and rewire with
    /// [`CircuitBuilder::set_inputs`].
    pub fn gate(&mut self, kind: GateKind, inputs: Vec<GateId>) -> Result<GateId, CircuitError> {
        let id = GateId(self.gates.len());
        Self::check_arity(id, kind, inputs.len())?;
        self.gates.push(Gate { kind, inputs });
        Ok(id)
    }

    /// Replaces the inputs of an existing gate (used to close feedback
    /// loops through flip-flops).
    ///
    /// # Errors
    ///
    /// [`CircuitError::BadArity`] / [`CircuitError::UnknownGate`].
    pub fn set_inputs(&mut self, gate: GateId, inputs: Vec<GateId>) -> Result<(), CircuitError> {
        let kind = self
            .gates
            .get(gate.0)
            .ok_or(CircuitError::UnknownGate { gate, input: gate })?
            .kind;
        Self::check_arity(gate, kind, inputs.len())?;
        self.gates[gate.0].inputs = inputs;
        Ok(())
    }

    fn check_arity(gate: GateId, kind: GateKind, inputs: usize) -> Result<(), CircuitError> {
        let ok = match kind {
            GateKind::Input => inputs == 0,
            GateKind::Not | GateKind::Dff => inputs == 1,
            GateKind::And | GateKind::Or | GateKind::Xor | GateKind::Nand => inputs >= 1,
        };
        if ok {
            Ok(())
        } else {
            Err(CircuitError::BadArity { gate, kind, inputs })
        }
    }

    /// Validates and freezes the circuit.
    ///
    /// # Errors
    ///
    /// [`CircuitError`] if a reference is dangling, the circuit is empty,
    /// or a cycle avoids every flip-flop.
    pub fn build(self) -> Result<Circuit, CircuitError> {
        let n = self.gates.len();
        if n == 0 {
            return Err(CircuitError::Empty);
        }
        for (i, g) in self.gates.iter().enumerate() {
            for &input in &g.inputs {
                if input.0 >= n {
                    return Err(CircuitError::UnknownGate {
                        gate: GateId(i),
                        input,
                    });
                }
            }
        }
        let topo = combinational_topo_order(&self.gates).ok_or(CircuitError::CombinationalCycle)?;
        Ok(Circuit {
            gates: self.gates,
            topo,
        })
    }
}

/// Topological order of the combinational gates (inputs and DFFs act as
/// sources); `None` if a combinational cycle exists.
fn combinational_topo_order(gates: &[Gate]) -> Option<Vec<GateId>> {
    let n = gates.len();
    // In-degree counting only combinational dependencies: an edge u -> v
    // exists when v is combinational and reads u.
    let mut indeg = vec![0usize; n];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, g) in gates.iter().enumerate() {
        if g.kind == GateKind::Input || g.kind.is_sequential() {
            continue;
        }
        for &u in &g.inputs {
            fanout[u.0].push(v);
            indeg[v] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(GateId(v));
        for &w in &fanout[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A validated gate-level circuit.
#[derive(Debug, Clone)]
pub struct Circuit {
    gates: Vec<Gate>,
    /// Evaluation order: all gates, sources first, combinational gates
    /// after every gate they read.
    topo: Vec<GateId>,
}

impl Circuit {
    /// Number of gates (including inputs).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Always `false`: construction rejects empty circuits.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Kind of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn kind(&self, gate: GateId) -> GateKind {
        self.gates[gate.0].kind
    }

    /// Inputs of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn inputs(&self, gate: GateId) -> &[GateId] {
        &self.gates[gate.0].inputs
    }

    /// Ids of the primary inputs, ascending.
    pub fn primary_inputs(&self) -> Vec<GateId> {
        (0..self.len())
            .map(GateId)
            .filter(|&g| self.kind(g) == GateKind::Input)
            .collect()
    }

    /// The combinational evaluation order.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// All wires as `(driver, reader)` pairs, in reader order.
    pub fn wires(&self) -> Vec<(GateId, GateId)> {
        let mut out = Vec::new();
        for (v, g) in self.gates.iter().enumerate() {
            for &u in &g.inputs {
                out.push((u, GateId(v)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_combinational() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        let c = b.input();
        let x = b.gate(GateKind::And, vec![a, c]).unwrap();
        let y = b.gate(GateKind::Not, vec![x]).unwrap();
        let circuit = b.build().unwrap();
        assert_eq!(circuit.len(), 4);
        assert_eq!(circuit.kind(y), GateKind::Not);
        assert_eq!(circuit.inputs(x), &[a, c]);
        assert_eq!(circuit.primary_inputs(), vec![a, c]);
        assert_eq!(circuit.wires().len(), 3);
    }

    #[test]
    fn arity_is_enforced() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        assert!(matches!(
            b.gate(GateKind::Not, vec![a, a]),
            Err(CircuitError::BadArity { .. })
        ));
        assert!(matches!(
            b.gate(GateKind::And, vec![]),
            Err(CircuitError::BadArity { .. })
        ));
        assert!(matches!(
            b.gate(GateKind::Dff, vec![]),
            Err(CircuitError::BadArity { .. })
        ));
    }

    #[test]
    fn empty_circuit_rejected() {
        assert_eq!(
            CircuitBuilder::new().build().unwrap_err(),
            CircuitError::Empty
        );
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        let x = b.gate(GateKind::And, vec![a]).unwrap();
        let y = b.gate(GateKind::Or, vec![x]).unwrap();
        b.set_inputs(x, vec![y]).unwrap();
        assert_eq!(b.build().unwrap_err(), CircuitError::CombinationalCycle);
    }

    #[test]
    fn cycle_through_dff_is_allowed() {
        // Classic toggle: DFF feeding a NOT feeding the DFF.
        let mut b = CircuitBuilder::new();
        let q = b.gate(GateKind::Dff, vec![GateId(0)]).unwrap(); // temp self
        let nq = b.gate(GateKind::Not, vec![q]).unwrap();
        b.set_inputs(q, vec![nq]).unwrap();
        let circuit = b.build().unwrap();
        assert_eq!(circuit.len(), 2);
        // Topo order contains everything.
        assert_eq!(circuit.topo_order().len(), 2);
    }

    #[test]
    fn dangling_reference_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        b.gate(GateKind::Not, vec![GateId(99)]).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, CircuitError::UnknownGate { .. }));
        let _ = a;
    }

    #[test]
    fn error_display() {
        let e = CircuitError::BadArity {
            gate: GateId(3),
            kind: GateKind::Not,
            inputs: 2,
        };
        assert!(e.to_string().contains("g3"));
        assert!(CircuitError::CombinationalCycle
            .to_string()
            .contains("flip-flop"));
    }
}
