//! Circuit generators for the DDS experiments.
//!
//! The paper's DDS application targets systems that are "circular or
//! linear in nature or can be approximated by a linear task graph, such as
//! a circular type logic circuit" (§3). These generators produce exactly
//! those families, plus layered random circuits for stress.

use rand::Rng;

use crate::circuit::{Circuit, CircuitBuilder, CircuitError, GateId, GateKind};

/// A Johnson (twisted-ring) counter with `stages` flip-flops: the chain
/// feeds forward, the last output is inverted back into the first, so the
/// counter is self-starting from the all-zero state. A canonical
/// "circular type logic circuit".
///
/// # Errors
///
/// Never fails for `stages >= 1`; returns [`CircuitError`] only on
/// internal misuse.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn johnson_counter(stages: usize) -> Result<Circuit, CircuitError> {
    assert!(stages > 0, "a counter needs at least one stage");
    let mut b = CircuitBuilder::new();
    let mut dffs = Vec::with_capacity(stages);
    for _ in 0..stages {
        // Temporarily self-fed; rewired below.
        let id = b.gate(GateKind::Dff, vec![GateId(0)])?;
        dffs.push(id);
    }
    let inv = b.gate(GateKind::Not, vec![dffs[stages - 1]])?;
    b.set_inputs(dffs[0], vec![inv])?;
    for s in 1..stages {
        b.set_inputs(dffs[s], vec![dffs[s - 1]])?;
    }
    b.build()
}

/// A shift register: one primary input feeding a chain of `stages`
/// flip-flops — a purely linear circuit.
///
/// # Errors
///
/// Never fails for `stages >= 1`.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn shift_register(stages: usize) -> Result<Circuit, CircuitError> {
    assert!(stages > 0, "a shift register needs at least one stage");
    let mut b = CircuitBuilder::new();
    let mut prev = b.input();
    for _ in 0..stages {
        prev = b.gate(GateKind::Dff, vec![prev])?;
    }
    b.build()
}

/// A ripple-carry adder on `bits` bits: full adders chained through the
/// carry wire — combinational and linear, the textbook pipeline workload.
///
/// # Errors
///
/// Never fails for `bits >= 1`.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder(bits: usize) -> Result<Circuit, CircuitError> {
    assert!(bits > 0, "an adder needs at least one bit");
    let mut b = CircuitBuilder::new();
    let mut carry: Option<GateId> = None;
    for _ in 0..bits {
        let a = b.input();
        let x = b.input();
        match carry {
            None => {
                let _sum = b.gate(GateKind::Xor, vec![a, x])?;
                carry = Some(b.gate(GateKind::And, vec![a, x])?);
            }
            Some(c) => {
                let axb = b.gate(GateKind::Xor, vec![a, x])?;
                let _sum = b.gate(GateKind::Xor, vec![axb, c])?;
                let and1 = b.gate(GateKind::And, vec![a, x])?;
                let and2 = b.gate(GateKind::And, vec![axb, c])?;
                carry = Some(b.gate(GateKind::Or, vec![and1, and2])?);
            }
        }
    }
    b.build()
}

/// A layered random circuit: `width` primary inputs, then `depth` layers
/// of `width` random two-input gates. Every gate of a layer is read by at
/// least one gate of the next, so the circuit is connected.
///
/// # Errors
///
/// Never fails for positive dimensions.
///
/// # Panics
///
/// Panics if `width == 0` or `depth == 0`.
pub fn random_layered<R: Rng + ?Sized>(
    width: usize,
    depth: usize,
    rng: &mut R,
) -> Result<Circuit, CircuitError> {
    assert!(width > 0 && depth > 0, "dimensions must be positive");
    let kinds = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand];
    let mut b = CircuitBuilder::new();
    let mut layer: Vec<GateId> = (0..width).map(|_| b.input()).collect();
    for _ in 0..depth {
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            // Coverage input keeps the layer graph connected; the second
            // is random.
            let covered = layer[i % layer.len()];
            let other = layer[rng.gen_range(0..layer.len())];
            next.push(b.gate(kind, vec![covered, other])?);
        }
        layer = next;
    }
    b.build()
}

/// A Fibonacci linear-feedback shift register over `stages` flip-flops
/// with feedback `taps` (1-based stage indices whose outputs are XORed
/// into the input). Self-starting via an inverted feedback (an "LFSR with
/// XNOR" convention), so the all-zero state is not a fixed point — a
/// classic circular logic circuit in the paper's sense.
///
/// # Errors
///
/// Never fails for valid taps.
///
/// # Panics
///
/// Panics if `stages == 0`, `taps` is empty, or a tap exceeds `stages`.
pub fn lfsr(stages: usize, taps: &[usize]) -> Result<Circuit, CircuitError> {
    assert!(stages > 0, "an LFSR needs at least one stage");
    assert!(!taps.is_empty(), "an LFSR needs at least one tap");
    assert!(
        taps.iter().all(|&t| (1..=stages).contains(&t)),
        "taps are 1-based stage indices"
    );
    let mut b = CircuitBuilder::new();
    let mut dffs = Vec::with_capacity(stages);
    for _ in 0..stages {
        let id = b.gate(GateKind::Dff, vec![GateId(0)])?; // rewired below
        dffs.push(id);
    }
    // Feedback: XNOR of the tapped stages (NOT over XOR), so all-zeros
    // feeds a one back in.
    let tapped: Vec<GateId> = taps.iter().map(|&t| dffs[t - 1]).collect();
    let xor = b.gate(GateKind::Xor, tapped)?;
    let feedback = b.gate(GateKind::Not, vec![xor])?;
    b.set_inputs(dffs[0], vec![feedback])?;
    for s in 1..stages {
        b.set_inputs(dffs[s], vec![dffs[s - 1]])?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_activity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn johnson_counter_is_active() {
        let c = johnson_counter(5).unwrap();
        assert_eq!(c.len(), 6); // 5 DFFs + 1 NOT
        let p = simulate_activity(&c, 100, &mut SmallRng::seed_from_u64(1));
        // A Johnson counter of 5 stages cycles with period 10; every stage
        // toggles 2 times per period → about 20 toggles per stage.
        for s in 0..5 {
            assert!(p.toggles[s] >= 15, "stage {s}: {}", p.toggles[s]);
        }
    }

    #[test]
    fn shift_register_propagates_stimulus() {
        let c = shift_register(8).unwrap();
        assert_eq!(c.len(), 9);
        let p = simulate_activity(&c, 400, &mut SmallRng::seed_from_u64(2));
        // Every stage eventually sees the (delayed) input stream: toggles
        // roughly half the cycles.
        let last = c.len() - 1;
        assert!(
            p.toggles[last] > 100,
            "last stage toggles {}",
            p.toggles[last]
        );
    }

    #[test]
    fn ripple_carry_adder_shape() {
        let c = ripple_carry_adder(8).unwrap();
        // 2 inputs per bit + gates; bit 0 has 2 gates, others 5.
        assert_eq!(c.len(), 8 * 2 + 2 + 7 * 5);
        let p = simulate_activity(&c, 100, &mut SmallRng::seed_from_u64(3));
        assert!(p.total_messages() > 0);
    }

    #[test]
    fn random_layered_is_connected_and_deterministic() {
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        let a = random_layered(6, 4, &mut r1).unwrap();
        let b = random_layered(6, 4, &mut r2).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 6 * 5);
        assert_eq!(a.wires().len(), b.wires().len());
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_counter_panics() {
        let _ = johnson_counter(0);
    }

    #[test]
    fn lfsr_is_active_and_circular() {
        // A maximal-length 5-bit LFSR (taps 5, 3) cycles through 31
        // non-repeating states; every stage toggles often.
        let c = lfsr(5, &[5, 3]).unwrap();
        assert_eq!(c.len(), 7); // 5 DFFs + XOR + NOT
        let p = simulate_activity(&c, 124, &mut SmallRng::seed_from_u64(4));
        for stage in 0..5 {
            assert!(p.toggles[stage] > 20, "stage {stage}: {}", p.toggles[stage]);
        }
    }

    #[test]
    #[should_panic(expected = "1-based stage indices")]
    fn lfsr_tap_out_of_range_panics() {
        let _ = lfsr(4, &[5]);
    }
}
