//! Conservative distributed simulation of a partitioned circuit.
//!
//! The paper's DDS application ultimately runs as a *distributed*
//! discrete-event simulation (it cites Misra's survey): each processor
//! hosts a logical process (LP) simulating its gates, and LPs synchronize
//! conservatively — an LP may only advance once every incoming channel
//! has either delivered a real event or a **null message** promising none
//! (the Chandy-Misra-Bryant protocol with lookahead of one clock cycle).
//!
//! For a synchronous circuit this has a crisp cost model: per simulated
//! cycle, every directed cross-LP channel carries either one event
//! message (some wire on it toggled) or one null message (none did). The
//! partition therefore controls the synchronization bill twice over —
//! fewer cross-LP channels mean fewer nulls, and higher message locality
//! means the channels that do exist carry useful events more often.
//!
//! [`simulate_parallel`] replays the same deterministic logic simulation
//! as [`crate::sim`] while accounting messages per LP channel, so
//! partitions can be compared by *synchronization overhead*, not just by
//! static cut weight.

use rand::Rng;

use crate::circuit::{Circuit, GateKind};
use crate::partition::CircuitPartition;

/// Message accounting of a conservative parallel simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelSimReport {
    /// Simulated clock cycles.
    pub cycles: u64,
    /// Directed cross-LP channels (processor pairs connected by at least
    /// one wire).
    pub channels: usize,
    /// Channel-cycles that carried a real event (≥ 1 toggled wire).
    pub event_messages: u64,
    /// Channel-cycles that carried only a null message.
    pub null_messages: u64,
    /// Gate evaluations performed per LP.
    pub lp_evaluations: Vec<u64>,
}

impl ParallelSimReport {
    /// Fraction of synchronization traffic that is pure overhead
    /// (null messages); 0.0 for a single-LP run.
    pub fn sync_overhead(&self) -> f64 {
        let total = self.event_messages + self.null_messages;
        if total == 0 {
            0.0
        } else {
            self.null_messages as f64 / total as f64
        }
    }

    /// Load imbalance across LPs (max over mean); 0 when idle.
    pub fn lp_imbalance(&self) -> f64 {
        let max = self.lp_evaluations.iter().copied().max().unwrap_or(0);
        let sum: u64 = self.lp_evaluations.iter().sum();
        if sum == 0 {
            0.0
        } else {
            max as f64 / (sum as f64 / self.lp_evaluations.len() as f64)
        }
    }
}

/// Runs `cycles` clock cycles of the circuit under random stimulus,
/// partitioned across LPs as in `partition`, counting conservative
/// synchronization traffic (lookahead = one cycle).
///
/// The logic results are identical to [`crate::sim::simulate_activity`]
/// with the same seed — partitioning never changes simulated behaviour,
/// only where gates run and what crosses LP boundaries.
///
/// # Panics
///
/// Panics if `partition` does not cover exactly the gates of `circuit`.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use tgp_dds::generators::shift_register;
/// use tgp_dds::parallel::simulate_parallel;
/// use tgp_dds::partition::partition_circuit;
/// use tgp_dds::sim::simulate_activity;
/// use tgp_graph::Weight;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = shift_register(32)?;
/// let profile = simulate_activity(&circuit, 100, &mut SmallRng::seed_from_u64(1));
/// let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
/// let part = partition_circuit(&circuit, &profile, Weight::new(total / 3))?;
/// let report = simulate_parallel(&circuit, &part, 100, &mut SmallRng::seed_from_u64(1));
/// assert!(report.sync_overhead() <= 1.0);
/// # Ok(())
/// # }
/// ```
pub fn simulate_parallel<R: Rng + ?Sized>(
    circuit: &Circuit,
    partition: &CircuitPartition,
    cycles: u64,
    rng: &mut R,
) -> ParallelSimReport {
    let n = circuit.len();
    assert_eq!(
        partition.processor_of.len(),
        n,
        "partition must cover every gate of the circuit"
    );
    let lps = partition.processors;
    // Directed cross-LP channels: channel_of[(src, dst)] exists when some
    // wire goes from a gate on `src` to a gate on `dst`, src != dst.
    let wires = circuit.wires();
    let mut channel_index = std::collections::BTreeMap::new();
    let mut wire_channel: Vec<Option<usize>> = Vec::with_capacity(wires.len());
    for &(u, v) in &wires {
        let (src, dst) = (partition.processor_of[u.0], partition.processor_of[v.0]);
        if src == dst {
            wire_channel.push(None);
        } else {
            let next = channel_index.len();
            let idx = *channel_index.entry((src, dst)).or_insert(next);
            wire_channel.push(Some(idx));
        }
    }
    let channels = channel_index.len();
    // Replay the deterministic simulation (same scheme as crate::sim).
    let mut values = vec![false; n];
    let mut toggled = vec![false; n];
    let mut lp_evaluations = vec![0u64; lps];
    let mut event_messages = 0u64;
    let mut null_messages = 0u64;
    let mut channel_active = vec![false; channels];
    // Initial combinational settle (uncounted).
    for &gid in circuit.topo_order() {
        let kind = circuit.kind(gid);
        if kind == GateKind::Input || kind.is_sequential() {
            continue;
        }
        let inputs = circuit.inputs(gid);
        values[gid.0] = kind.eval(inputs.iter().map(|&u| values[u.0]));
    }
    for _ in 0..cycles {
        let prev = values.clone();
        for g in 0..n {
            match circuit.kind(crate::circuit::GateId(g)) {
                GateKind::Dff => {
                    let d = circuit.inputs(crate::circuit::GateId(g))[0];
                    values[g] = prev[d.0];
                    lp_evaluations[partition.processor_of[g]] += 1;
                }
                GateKind::Input => {
                    values[g] = rng.gen_bool(0.5);
                    lp_evaluations[partition.processor_of[g]] += 1;
                }
                _ => {}
            }
        }
        for g in 0..n {
            toggled[g] = values[g] != prev[g];
        }
        for &gid in circuit.topo_order() {
            let g = gid.0;
            let kind = circuit.kind(gid);
            if kind == GateKind::Input || kind.is_sequential() {
                continue;
            }
            let inputs = circuit.inputs(gid);
            if !inputs.iter().any(|&u| toggled[u.0]) {
                continue;
            }
            lp_evaluations[partition.processor_of[g]] += 1;
            let out = kind.eval(inputs.iter().map(|&u| values[u.0]));
            if out != values[g] {
                values[g] = out;
                toggled[g] = true;
            }
        }
        // Channel accounting: one message per directed channel per cycle —
        // an event if any wire on it toggled, a null otherwise.
        channel_active.iter_mut().for_each(|a| *a = false);
        for (w, &(u, _)) in wires.iter().enumerate() {
            if let Some(c) = wire_channel[w] {
                if toggled[u.0] {
                    channel_active[c] = true;
                }
            }
        }
        for &active in &channel_active {
            if active {
                event_messages += 1;
            } else {
                null_messages += 1;
            }
        }
    }
    ParallelSimReport {
        cycles,
        channels,
        event_messages,
        null_messages,
        lp_evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{johnson_counter, shift_register};
    use crate::partition::{partition_circuit, partition_circuit_block};
    use crate::sim::simulate_activity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tgp_graph::Weight;

    #[test]
    fn single_lp_has_no_synchronization() {
        let c = shift_register(20).unwrap();
        let profile = simulate_activity(&c, 50, &mut SmallRng::seed_from_u64(1));
        let part = partition_circuit_block(&c, &profile, 1);
        let r = simulate_parallel(&c, &part, 50, &mut SmallRng::seed_from_u64(1));
        assert_eq!(r.channels, 0);
        assert_eq!(r.event_messages + r.null_messages, 0);
        assert_eq!(r.sync_overhead(), 0.0);
    }

    #[test]
    fn total_messages_equal_channels_times_cycles() {
        let c = shift_register(30).unwrap();
        let profile = simulate_activity(&c, 80, &mut SmallRng::seed_from_u64(2));
        let part = partition_circuit_block(&c, &profile, 3);
        let r = simulate_parallel(&c, &part, 80, &mut SmallRng::seed_from_u64(2));
        assert!(r.channels >= 2);
        assert_eq!(r.event_messages + r.null_messages, r.channels as u64 * 80);
    }

    #[test]
    fn evaluations_match_serial_simulation() {
        // Partitioning must not change what is simulated.
        let c = johnson_counter(16).unwrap();
        let profile = simulate_activity(&c, 120, &mut SmallRng::seed_from_u64(3));
        let part = partition_circuit_block(&c, &profile, 4);
        let r = simulate_parallel(&c, &part, 120, &mut SmallRng::seed_from_u64(3));
        let lp_total: u64 = r.lp_evaluations.iter().sum();
        assert_eq!(lp_total, profile.total_work());
    }

    #[test]
    fn better_partitions_have_no_more_channels() {
        let c = shift_register(60).unwrap();
        let profile = simulate_activity(&c, 200, &mut SmallRng::seed_from_u64(4));
        let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
        let smart = partition_circuit(&c, &profile, Weight::new(total / 3)).unwrap();
        let block = partition_circuit_block(&c, &profile, smart.processors);
        let rs = simulate_parallel(&c, &smart, 200, &mut SmallRng::seed_from_u64(4));
        let rb = simulate_parallel(&c, &block, 200, &mut SmallRng::seed_from_u64(4));
        assert!(rs.channels <= rb.channels);
    }

    #[test]
    fn sync_overhead_is_a_ratio() {
        let c = johnson_counter(12).unwrap();
        let profile = simulate_activity(&c, 100, &mut SmallRng::seed_from_u64(5));
        let part = partition_circuit_block(&c, &profile, 3);
        let r = simulate_parallel(&c, &part, 100, &mut SmallRng::seed_from_u64(5));
        let s = r.sync_overhead();
        assert!((0.0..=1.0).contains(&s));
        // A Johnson counter toggles rarely relative to its channel count,
        // so most channel-cycles are nulls.
        assert!(s > 0.5, "expected null-heavy sync, got {s}");
        assert!(r.lp_imbalance() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "cover every gate")]
    fn mismatched_partition_panics() {
        let c = shift_register(5).unwrap();
        let other = shift_register(9).unwrap();
        let profile = simulate_activity(&other, 10, &mut SmallRng::seed_from_u64(6));
        let part = partition_circuit_block(&other, &profile, 2);
        simulate_parallel(&c, &part, 10, &mut SmallRng::seed_from_u64(6));
    }
}
