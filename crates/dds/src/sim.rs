//! Cycle-based logic simulation with activity measurement.
//!
//! Runs a circuit for a number of clock cycles under random primary-input
//! stimulus and records, per gate, how often it had to be evaluated and,
//! per wire, how many value-change messages it carried. In a distributed
//! discrete-event simulation these are exactly the computation and
//! communication loads of the simulation processes — "both quantities in
//! general are determined by the requirement of the simulation" (§3).

use rand::Rng;

use crate::circuit::{Circuit, GateKind};

/// Measured per-gate and per-wire activity of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityProfile {
    /// Evaluations per gate: clocked elements (inputs, flip-flops)
    /// evaluate every cycle; combinational gates evaluate when an input
    /// changed.
    pub evaluations: Vec<u64>,
    /// Output toggles per gate.
    pub toggles: Vec<u64>,
    /// Value-change messages per wire, in [`Circuit::wires`] order.
    pub wire_messages: Vec<u64>,
    /// Number of simulated cycles.
    pub cycles: u64,
}

impl ActivityProfile {
    /// Total evaluations across all gates.
    pub fn total_work(&self) -> u64 {
        self.evaluations.iter().sum()
    }

    /// Total messages across all wires.
    pub fn total_messages(&self) -> u64 {
        self.wire_messages.iter().sum()
    }
}

/// Simulates `cycles` clock cycles with uniformly random input stimulus,
/// starting from the all-zero state.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use tgp_dds::circuit::{CircuitBuilder, GateKind};
/// use tgp_dds::sim::simulate_activity;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new();
/// let a = b.input();
/// let _n = b.gate(GateKind::Not, vec![a])?;
/// let c = b.build()?;
/// let profile = simulate_activity(&c, 100, &mut SmallRng::seed_from_u64(1));
/// assert_eq!(profile.cycles, 100);
/// assert!(profile.total_work() > 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate_activity<R: Rng + ?Sized>(
    circuit: &Circuit,
    cycles: u64,
    rng: &mut R,
) -> ActivityProfile {
    let n = circuit.len();
    let mut values = vec![false; n];
    let mut evaluations = vec![0u64; n];
    let mut toggles = vec![0u64; n];
    let wires = circuit.wires();
    let mut wire_messages = vec![0u64; wires.len()];
    let mut toggled = vec![false; n];
    // Initial settle: make the all-zero state combinationally consistent
    // (e.g. a NOT of a zero wire must start at one). Uncounted — this is
    // initialization, not simulated activity.
    for &gid in circuit.topo_order() {
        let kind = circuit.kind(gid);
        if kind == GateKind::Input || kind.is_sequential() {
            continue;
        }
        let inputs = circuit.inputs(gid);
        values[gid.0] = kind.eval(inputs.iter().map(|&u| values[u.0]));
    }
    for _ in 0..cycles {
        let prev = values.clone();
        // Phase 1: clocked elements. Flip-flops latch their input's value
        // as of the end of the previous cycle; primary inputs take fresh
        // random stimulus.
        for g in 0..n {
            match circuit.kind(crate::circuit::GateId(g)) {
                GateKind::Dff => {
                    let d = circuit.inputs(crate::circuit::GateId(g))[0];
                    values[g] = prev[d.0];
                    evaluations[g] += 1;
                }
                GateKind::Input => {
                    values[g] = rng.gen_bool(0.5);
                    evaluations[g] += 1;
                }
                _ => {}
            }
        }
        // Phase 2: combinational settle in topological order; a gate
        // re-evaluates only when one of its inputs changed this cycle
        // (the event-driven cost model).
        for g in 0..n {
            toggled[g] = values[g] != prev[g];
        }
        for &gid in circuit.topo_order() {
            let g = gid.0;
            let kind = circuit.kind(gid);
            if kind == GateKind::Input || kind.is_sequential() {
                continue;
            }
            let inputs = circuit.inputs(gid);
            if !inputs.iter().any(|&u| toggled[u.0]) {
                continue;
            }
            evaluations[g] += 1;
            let out = kind.eval(inputs.iter().map(|&u| values[u.0]));
            if out != values[g] {
                values[g] = out;
                toggled[g] = true;
            }
        }
        // Accounting: toggles and wire messages.
        for g in 0..n {
            if toggled[g] {
                toggles[g] += 1;
            }
        }
        for (w, &(u, _)) in wires.iter().enumerate() {
            if toggled[u.0] {
                wire_messages[w] += 1;
            }
        }
    }
    ActivityProfile {
        evaluations,
        toggles,
        wire_messages,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{CircuitBuilder, GateId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn toggle_flip_flop_oscillates() {
        // DFF -> NOT -> DFF loop toggles every cycle after start-up.
        let mut b = CircuitBuilder::new();
        let q = b.gate(GateKind::Dff, vec![GateId(0)]).unwrap();
        let nq = b.gate(GateKind::Not, vec![q]).unwrap();
        b.set_inputs(q, vec![nq]).unwrap();
        let c = b.build().unwrap();
        let p = simulate_activity(&c, 100, &mut rng());
        // q toggles every cycle except possibly the first.
        assert!(p.toggles[q.0] >= 99, "toggles = {}", p.toggles[q.0]);
        assert_eq!(p.evaluations[q.0], 100);
        assert_eq!(p.cycles, 100);
    }

    #[test]
    fn constant_subcircuit_is_never_reevaluated() {
        // AND of two inputs that we never drive: a NOT of a constant.
        let mut b = CircuitBuilder::new();
        let a = b.input();
        let x = b.gate(GateKind::And, vec![a, a]).unwrap();
        let c = b.build().unwrap();
        let p = simulate_activity(&c, 200, &mut rng());
        // x evaluates only on cycles where a toggled.
        assert!(p.evaluations[x.0] < 200);
        assert_eq!(p.evaluations[x.0], p.toggles[a.0]);
    }

    #[test]
    fn wire_messages_count_driver_toggles() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        let x = b.gate(GateKind::Not, vec![a]).unwrap();
        let y = b.gate(GateKind::Not, vec![a]).unwrap();
        let c = b.build().unwrap();
        let p = simulate_activity(&c, 500, &mut rng());
        let wires = c.wires();
        assert_eq!(wires.len(), 2);
        for (w, &(u, _)) in wires.iter().enumerate() {
            assert_eq!(u, a);
            assert_eq!(p.wire_messages[w], p.toggles[a.0]);
        }
        // NOT gates toggle exactly when their input does.
        assert_eq!(p.toggles[x.0], p.toggles[a.0]);
        assert_eq!(p.toggles[y.0], p.toggles[a.0]);
        // Random input toggles roughly half the cycles.
        assert!(p.toggles[a.0] > 150 && p.toggles[a.0] < 350);
    }

    #[test]
    fn xor_identity() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        let bb = b.input();
        let x = b.gate(GateKind::Xor, vec![a, bb]).unwrap();
        let nx = b.gate(GateKind::Nand, vec![a, bb]).unwrap();
        let c = b.build().unwrap();
        let p = simulate_activity(&c, 50, &mut rng());
        assert!(p.total_work() >= 100); // inputs always evaluate
        assert!(p.total_messages() > 0);
        let _ = (x, nx);
    }

    #[test]
    fn zero_cycles_yields_zero_activity() {
        let mut b = CircuitBuilder::new();
        b.input();
        let c = b.build().unwrap();
        let p = simulate_activity(&c, 0, &mut rng());
        assert_eq!(p.total_work(), 0);
        assert_eq!(p.total_messages(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut b = CircuitBuilder::new();
        let a = b.input();
        let _x = b.gate(GateKind::Not, vec![a]).unwrap();
        let c = b.build().unwrap();
        let p1 = simulate_activity(&c, 100, &mut SmallRng::seed_from_u64(7));
        let p2 = simulate_activity(&c, 100, &mut SmallRng::seed_from_u64(7));
        assert_eq!(p1, p2);
    }
}
