//! Partitioning a simulated circuit across processors.
//!
//! The paper's §3 recipe, end to end: measure per-process computation and
//! per-wire message counts ([`crate::sim`]), build the weighted process
//! graph, approximate it by a *linear super-graph*, partition that chain
//! with the paper's bandwidth-minimization algorithm, and map each segment
//! to a processor of the shared-memory machine.

use std::error::Error;
use std::fmt;

use tgp_core::pipeline::partition_chain;
use tgp_core::PartitionError;
use tgp_graph::supergraph::{linear_supergraph, LinearOrdering};
use tgp_graph::{GraphError, NodeId, ProcessEdge, ProcessGraph, Weight};

use crate::circuit::Circuit;
use crate::sim::ActivityProfile;

/// Errors from circuit partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DdsError {
    /// Building the process graph failed (e.g. the circuit's wire graph is
    /// disconnected).
    Graph(GraphError),
    /// The chain partition failed (e.g. the load bound is below one
    /// gate's measured work).
    Partition(PartitionError),
}

impl fmt::Display for DdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdsError::Graph(e) => write!(f, "process graph construction failed: {e}"),
            DdsError::Partition(e) => write!(f, "partitioning failed: {e}"),
        }
    }
}

impl Error for DdsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DdsError::Graph(e) => Some(e),
            DdsError::Partition(e) => Some(e),
        }
    }
}

impl From<GraphError> for DdsError {
    fn from(e: GraphError) -> Self {
        DdsError::Graph(e)
    }
}

impl From<PartitionError> for DdsError {
    fn from(e: PartitionError) -> Self {
        DdsError::Partition(e)
    }
}

/// A placement of every gate onto a processor, with quality metrics
/// derived from the *original* (non-approximated) process graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitPartition {
    /// `processor_of[g]` = processor hosting gate `g`.
    pub processor_of: Vec<usize>,
    /// Number of processors used.
    pub processors: usize,
    /// Measured computation load per processor.
    pub load: Vec<u64>,
    /// Messages staying within a processor.
    pub intra_messages: u64,
    /// Messages crossing processors (interconnect traffic).
    pub inter_messages: u64,
}

impl CircuitPartition {
    /// Fraction of messages that stay on-processor (1.0 = all local).
    pub fn locality(&self) -> f64 {
        let total = self.intra_messages + self.inter_messages;
        if total == 0 {
            1.0
        } else {
            self.intra_messages as f64 / total as f64
        }
    }

    /// Max processor load over mean load (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let max = self.load.iter().copied().max().unwrap_or(0);
        let sum: u64 = self.load.iter().sum();
        if sum == 0 {
            0.0
        } else {
            max as f64 / (sum as f64 / self.load.len() as f64)
        }
    }

    /// The heaviest processor load.
    pub fn max_load(&self) -> u64 {
        self.load.iter().copied().max().unwrap_or(0)
    }
}

/// Builds the weighted process graph of a simulated circuit: one node per
/// gate (weight = measured evaluations + 1, so idle gates still cost their
/// bookkeeping), one edge per wire (weight = measured messages; parallel
/// wires merge).
///
/// # Errors
///
/// [`GraphError::Disconnected`] if the circuit's wire graph is not
/// connected (partitioning a disconnected simulation is out of the
/// paper's scope).
pub fn process_graph(
    circuit: &Circuit,
    profile: &ActivityProfile,
) -> Result<ProcessGraph, GraphError> {
    let node_weights: Vec<Weight> = profile
        .evaluations
        .iter()
        .map(|&e| Weight::new(e + 1))
        .collect();
    let wires = circuit.wires();
    let edges: Vec<ProcessEdge> = wires
        .iter()
        .zip(&profile.wire_messages)
        .filter(|((u, v), _)| u != v)
        .map(|(&(u, v), &m)| ProcessEdge {
            a: NodeId::new(u.0),
            b: NodeId::new(v.0),
            weight: Weight::new(m),
        })
        .collect();
    ProcessGraph::from_edges(node_weights, edges)
}

/// Partitions a simulated circuit under a per-processor load bound using
/// the linear super-graph approximation and the paper's bandwidth
/// minimization.
///
/// # Errors
///
/// [`DdsError`] if the process graph cannot be built or the bound is
/// below a single gate's measured load.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use tgp_dds::generators::johnson_counter;
/// use tgp_dds::partition::partition_circuit;
/// use tgp_dds::sim::simulate_activity;
/// use tgp_graph::Weight;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = johnson_counter(8)?;
/// let profile = simulate_activity(&circuit, 200, &mut SmallRng::seed_from_u64(5));
/// let part = partition_circuit(&circuit, &profile, Weight::new(500))?;
/// assert!(part.processors >= 1);
/// assert!(part.locality() >= 0.0);
/// # Ok(())
/// # }
/// ```
pub fn partition_circuit(
    circuit: &Circuit,
    profile: &ActivityProfile,
    bound: Weight,
) -> Result<CircuitPartition, DdsError> {
    // The super-graph approximation's quality depends on the circuit's
    // shape (a ring suits its natural gate order; a tree-ish netlist
    // suits the spanning-tree route). Delegate to tgp-core's best-of
    // selection, which scores every candidate by its true cut cost on the
    // measured process graph.
    let g = process_graph(circuit, profile)?;
    let part = tgp_core::approx::partition_process_graph_best(&g, bound)?;
    Ok(report(circuit, profile, part.part_of, part.parts))
}

/// Like [`partition_circuit`], but restricted to the linear super-graph
/// route with an explicit ordering (the ablation hook used by tests and
/// benches).
///
/// # Errors
///
/// [`DdsError`] if the process graph cannot be built or the bound is
/// below a single gate's measured load.
pub fn partition_circuit_with_ordering(
    circuit: &Circuit,
    profile: &ActivityProfile,
    bound: Weight,
    ordering: LinearOrdering,
) -> Result<CircuitPartition, DdsError> {
    let g = process_graph(circuit, profile)?;
    let sup = linear_supergraph(&g, ordering)?;
    let part = partition_chain(sup.path(), bound)?;
    // Map each gate through its position to its segment index.
    let mut processor_of = vec![0usize; circuit.len()];
    for (seg_idx, seg) in part.segments.iter().enumerate() {
        for pos in seg.start..=seg.end {
            processor_of[sup.process_at(pos).index()] = seg_idx;
        }
    }
    Ok(report(circuit, profile, processor_of, part.processors))
}

/// Baseline: split gates into `parts` blocks of near-equal gate count in
/// id order, ignoring measured weights (the strawman the algorithms are
/// compared against).
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn partition_circuit_block(
    circuit: &Circuit,
    profile: &ActivityProfile,
    parts: usize,
) -> CircuitPartition {
    assert!(parts > 0, "at least one part is required");
    let n = circuit.len();
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut processor_of = vec![0usize; n];
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        for slot in &mut processor_of[start..start + len] {
            *slot = p;
        }
        start += len;
    }
    report(circuit, profile, processor_of, parts)
}

fn report(
    circuit: &Circuit,
    profile: &ActivityProfile,
    processor_of: Vec<usize>,
    processors: usize,
) -> CircuitPartition {
    let mut load = vec![0u64; processors];
    for (g, &p) in processor_of.iter().enumerate() {
        load[p] += profile.evaluations[g] + 1;
    }
    let mut intra = 0u64;
    let mut inter = 0u64;
    for ((u, v), &m) in circuit.wires().iter().zip(&profile.wire_messages) {
        if processor_of[u.0] == processor_of[v.0] {
            intra += m;
        } else {
            inter += m;
        }
    }
    CircuitPartition {
        processor_of,
        processors,
        load,
        intra_messages: intra,
        inter_messages: inter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{johnson_counter, shift_register};
    use crate::sim::simulate_activity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    #[test]
    fn process_graph_mirrors_circuit() {
        let c = shift_register(6).unwrap();
        let p = simulate_activity(&c, 100, &mut rng());
        let g = process_graph(&c, &p).unwrap();
        assert_eq!(g.len(), 7);
        assert_eq!(g.edge_count(), 6);
        // Node weights are evaluations + 1.
        for (i, &e) in p.evaluations.iter().enumerate() {
            assert_eq!(g.node_weight(NodeId::new(i)), Weight::new(e + 1));
        }
    }

    #[test]
    fn partition_respects_load_bound() {
        let c = johnson_counter(12).unwrap();
        let p = simulate_activity(&c, 300, &mut rng());
        let total: u64 = p.evaluations.iter().map(|e| e + 1).sum();
        let bound = total / 3;
        let part = partition_circuit(&c, &p, Weight::new(bound)).unwrap();
        assert!(part.max_load() <= bound);
        assert!(part.processors >= 3);
        assert_eq!(part.load.iter().sum::<u64>(), total);
    }

    #[test]
    fn partition_beats_block_on_locality_for_linear_circuits() {
        let c = shift_register(40).unwrap();
        let p = simulate_activity(&c, 500, &mut rng());
        let total: u64 = p.evaluations.iter().map(|e| e + 1).sum();
        let bound = total / 4 + total / 8;
        let smart = partition_circuit(&c, &p, Weight::new(bound)).unwrap();
        let block = partition_circuit_block(&c, &p, smart.processors);
        // Same processor count: the algorithmic cut must not lose on
        // inter-processor message volume.
        assert!(
            smart.inter_messages <= block.inter_messages,
            "smart {} vs block {}",
            smart.inter_messages,
            block.inter_messages
        );
        assert!(smart.locality() >= block.locality());
    }

    #[test]
    fn bound_below_gate_load_errors() {
        let c = johnson_counter(4).unwrap();
        let p = simulate_activity(&c, 100, &mut rng());
        let err = partition_circuit(&c, &p, Weight::new(1)).unwrap_err();
        assert!(matches!(err, DdsError::Partition(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn block_partition_covers_all_gates() {
        let c = shift_register(10).unwrap();
        let p = simulate_activity(&c, 50, &mut rng());
        let part = partition_circuit_block(&c, &p, 3);
        assert_eq!(part.processors, 3);
        assert_eq!(part.processor_of.len(), 11);
        assert!(part.processor_of.iter().all(|&x| x < 3));
        let total_msgs = part.intra_messages + part.inter_messages;
        assert_eq!(total_msgs, p.total_messages());
    }

    #[test]
    fn locality_of_single_processor_is_one() {
        let c = shift_register(5).unwrap();
        let p = simulate_activity(&c, 50, &mut rng());
        let part = partition_circuit_block(&c, &p, 1);
        assert_eq!(part.locality(), 1.0);
        assert_eq!(part.inter_messages, 0);
    }
}
