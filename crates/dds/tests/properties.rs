//! Property-based tests on the logic simulator and the partitioning
//! pipeline of the DDS application.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp_dds::circuit::{CircuitBuilder, GateKind};
use tgp_dds::generators::{johnson_counter, random_layered, shift_register};
use tgp_dds::partition::{partition_circuit, partition_circuit_block, process_graph};
use tgp_dds::sim::simulate_activity;
use tgp_graph::Weight;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// De Morgan check at the simulation level: a NAND gate always toggles
    /// exactly when NOT(AND) toggles, for any stimulus.
    #[test]
    fn nand_equals_not_and(cycles in 1u64..200, seed in any::<u64>()) {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let nand = b.gate(GateKind::Nand, vec![x, y]).unwrap();
        let and = b.gate(GateKind::And, vec![x, y]).unwrap();
        let not_and = b.gate(GateKind::Not, vec![and]).unwrap();
        let c = b.build().unwrap();
        let p = simulate_activity(&c, cycles, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(p.toggles[nand.0], p.toggles[not_and.0]);
    }

    /// A DFF delays its input by one cycle, so over the whole run it can
    /// toggle at most as often as its input (plus the initial latch).
    #[test]
    fn dff_toggles_at_most_input_toggles(cycles in 1u64..300, seed in any::<u64>()) {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let q = b.gate(GateKind::Dff, vec![x]).unwrap();
        let c = b.build().unwrap();
        let p = simulate_activity(&c, cycles, &mut SmallRng::seed_from_u64(seed));
        prop_assert!(p.toggles[q.0] <= p.toggles[x.0] + 1);
    }

    /// Wire messages are conserved: the per-wire counts sum to the total,
    /// and every wire's count equals its driver's toggle count.
    #[test]
    fn wire_messages_match_driver_toggles(
        width in 2usize..6,
        depth in 1usize..4,
        cycles in 1u64..100,
        seed in any::<u64>(),
    ) {
        let c = random_layered(width, depth, &mut SmallRng::seed_from_u64(seed)).unwrap();
        let p = simulate_activity(&c, cycles, &mut SmallRng::seed_from_u64(seed ^ 1));
        for ((u, _), &m) in c.wires().iter().zip(&p.wire_messages) {
            prop_assert_eq!(m, p.toggles[u.0]);
        }
        prop_assert_eq!(
            p.wire_messages.iter().sum::<u64>(),
            p.total_messages()
        );
    }

    /// Partitioning respects the load bound, covers every gate, conserves
    /// messages, and never loses to the block split on linear circuits.
    #[test]
    fn partition_contract(stages in 4usize..40, seed in any::<u64>()) {
        let c = shift_register(stages).unwrap();
        let p = simulate_activity(&c, 200, &mut SmallRng::seed_from_u64(seed));
        let total: u64 = p.evaluations.iter().map(|e| e + 1).sum();
        let bound = total / 3 + total / 10;
        let part = partition_circuit(&c, &p, Weight::new(bound)).unwrap();
        prop_assert!(part.max_load() <= bound);
        prop_assert_eq!(part.processor_of.len(), c.len());
        prop_assert_eq!(part.load.iter().sum::<u64>(), total);
        prop_assert_eq!(
            part.intra_messages + part.inter_messages,
            p.total_messages()
        );
        let block = partition_circuit_block(&c, &p, part.processors);
        prop_assert!(part.inter_messages <= block.inter_messages);
    }
}

#[test]
fn process_graph_weights_never_vanish() {
    // Even an all-idle gate gets weight 1 so the load bound semantics
    // remain well defined.
    let c = johnson_counter(6).unwrap();
    let p = simulate_activity(&c, 0, &mut SmallRng::seed_from_u64(1));
    let g = process_graph(&c, &p).unwrap();
    assert!(g.node_weights().iter().all(|w| w.get() >= 1));
    assert_eq!(g.len(), c.len());
}

#[test]
fn johnson_counter_period_is_2n() {
    // A Johnson counter with s stages has period 2s; over 4s cycles every
    // stage toggles exactly 4 times (two rising, two falling edges per
    // period... i.e. 2 toggles per period).
    let s = 5;
    let c = johnson_counter(s).unwrap();
    let cycles = 4 * s as u64;
    let p = simulate_activity(&c, cycles, &mut SmallRng::seed_from_u64(3));
    for stage in 0..s {
        assert_eq!(p.toggles[stage], 4, "stage {stage}");
    }
}
