//! Property-based tests on the simulator's physical invariants: work and
//! traffic conservation, lower/upper makespan bounds, and monotonicity in
//! interconnect concurrency.

use proptest::prelude::*;

use tgp_graph::Weight;
use tgp_shmem::exchange::{simulate_compute_exchange, Transfer};
use tgp_shmem::machine::{Interconnect, Machine};
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};

fn arb_pipeline() -> impl Strategy<Value = PipelineSpec> {
    (1usize..8).prop_flat_map(|stages| {
        (
            prop::collection::vec(0u64..30, stages),
            prop::collection::vec(0u64..30, stages - 1),
        )
            .prop_map(|(work, comm)| PipelineSpec {
                stage_work: work.into_iter().map(Weight::new).collect(),
                stage_comm: comm.into_iter().map(Weight::new).collect(),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Conservation: total traffic equals items × Σ link volumes, busy
    /// time equals items × Σ stage work.
    #[test]
    fn pipeline_conserves_work_and_traffic(spec in arb_pipeline(), items in 0usize..20) {
        let machine = Machine::bus(spec.stages()).unwrap();
        let r = simulate_pipeline(&spec, &machine, items).unwrap();
        let comm_total: u64 = spec.stage_comm.iter().map(|w| w.get()).sum();
        prop_assert_eq!(r.total_traffic, comm_total * items as u64);
        let work_total: u64 = spec.stage_work.iter().map(|w| w.get()).sum();
        let busy_total: u64 = r.processor_busy.iter().sum();
        prop_assert_eq!(busy_total, work_total * items as u64);
    }

    /// The makespan is at least the bottleneck stage's serial time and at
    /// most the fully serialized execution.
    #[test]
    fn pipeline_makespan_bounds(spec in arb_pipeline(), items in 1usize..20) {
        let machine = Machine::bus(spec.stages()).unwrap();
        let r = simulate_pipeline(&spec, &machine, items).unwrap();
        let max_stage = spec.stage_work.iter().map(|w| w.get()).max().unwrap_or(0);
        prop_assert!(r.makespan >= max_stage * items as u64);
        let serial: u64 = spec.stage_work.iter().map(|w| w.get()).sum::<u64>()
            + spec.stage_comm.iter().map(|w| w.get()).sum::<u64>();
        prop_assert!(r.makespan <= serial * items as u64);
    }

    /// More interconnect concurrency never hurts the one-round exchange.
    #[test]
    fn exchange_concurrency_is_monotone(
        work in prop::collection::vec(0u64..40, 1..8),
        raw_transfers in prop::collection::vec((0usize..100, 0usize..100, 0u64..40), 0..12),
    ) {
        let k = work.len();
        let transfers: Vec<Transfer> = raw_transfers
            .iter()
            .map(|&(a, b, v)| Transfer { from: a % k, to: b % k, volume: v })
            .collect();
        let mut prev: Option<u64> = None;
        for channels in 1..=4 {
            let machine = Machine::new(
                k,
                1,
                1,
                0,
                Interconnect::Multistage { channels },
            )
            .unwrap();
            let r = simulate_compute_exchange(&work, &transfers, &machine).unwrap();
            if let Some(p) = prev {
                prop_assert!(r.makespan <= p, "channels={channels}");
            }
            prev = Some(r.makespan);
            // Conservation holds at every concurrency level.
            let vol: u64 = transfers.iter().map(|t| t.volume).sum();
            prop_assert_eq!(r.total_traffic, vol);
        }
    }

    /// Faster processors never increase the makespan.
    #[test]
    fn speed_is_monotone(
        work in prop::collection::vec(1u64..50, 1..6),
        speed in 1u64..6,
    ) {
        let k = work.len();
        let slow = Machine::new(k, speed, 1, 0, Interconnect::Bus).unwrap();
        let fast = Machine::new(k, speed + 1, 1, 0, Interconnect::Bus).unwrap();
        let r_slow = simulate_compute_exchange(&work, &[], &slow).unwrap();
        let r_fast = simulate_compute_exchange(&work, &[], &fast).unwrap();
        prop_assert!(r_fast.makespan <= r_slow.makespan);
    }
}
