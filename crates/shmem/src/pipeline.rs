//! Streaming execution of a partitioned pipeline.
//!
//! The paper's first application class: a chain of tasks through which a
//! stream of problem instances flows ("a sequence of such problems can be
//! 'fed' to the pipeline and keep all stages busy"). After partitioning,
//! each segment becomes a pipeline *stage* pinned to one processor;
//! consecutive stages exchange one message per item over the interconnect.
//!
//! [`simulate_pipeline`] runs the resulting system as a discrete-event
//! simulation with interconnect contention, so partitions can be compared
//! by *observed* throughput and utilization, not just by their static cut
//! weights.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use tgp_graph::{CutSet, PathGraph, Weight};

use crate::engine::EventQueue;
use crate::machine::Machine;
use crate::metrics::SimReport;

/// A pipeline extracted from a partitioned chain: per-stage compute work
/// and per-boundary message volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Compute work per stage (segment vertex-weight totals).
    pub stage_work: Vec<Weight>,
    /// Message volume between consecutive stages (cut-edge weights).
    pub stage_comm: Vec<Weight>,
}

impl PipelineSpec {
    /// Builds a pipeline spec from a chain and a cut.
    ///
    /// # Errors
    ///
    /// Propagates [`tgp_graph::GraphError`] if the cut does not fit the
    /// chain.
    pub fn from_partition(path: &PathGraph, cut: &CutSet) -> Result<Self, tgp_graph::GraphError> {
        let segments = path.segments(cut)?;
        let stage_work = segments.iter().map(|s| s.weight).collect();
        let stage_comm = cut.iter().map(|e| path.edge_weight(e)).collect();
        Ok(PipelineSpec {
            stage_work,
            stage_comm,
        })
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stage_work.len()
    }
}

/// Errors from pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// More stages than processors: the partition does not fit the
    /// machine.
    TooManyStages {
        /// Stages in the pipeline.
        stages: usize,
        /// Processors available.
        processors: usize,
    },
    /// The spec is inconsistent (`stage_comm.len() != stages - 1`).
    BadSpec {
        /// Stages in the pipeline.
        stages: usize,
        /// Boundary count supplied.
        comms: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyStages { stages, processors } => write!(
                f,
                "pipeline has {stages} stages but the machine has only {processors} processors"
            ),
            SimError::BadSpec { stages, comms } => write!(
                f,
                "a {stages}-stage pipeline needs {} boundaries, got {comms}",
                stages.saturating_sub(1)
            ),
        }
    }
}

impl Error for SimError {}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// An item arrived at a stage's input queue.
    Arrive { stage: usize, item: usize },
    /// A stage finished computing an item.
    ComputeDone { stage: usize, item: usize },
    /// A transfer from `stage` to `stage + 1` finished.
    TransferDone { stage: usize, item: usize },
}

/// Simulates `items` problem instances streaming through the pipeline on
/// `machine`, with transfers contending for the interconnect channels
/// (FIFO service in request order).
///
/// # Errors
///
/// [`SimError`] if the pipeline does not fit the machine or the spec is
/// inconsistent.
///
/// # Examples
///
/// ```
/// use tgp_graph::Weight;
/// use tgp_shmem::machine::Machine;
/// use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = PipelineSpec {
///     stage_work: vec![Weight::new(4), Weight::new(4)],
///     stage_comm: vec![Weight::new(2)],
/// };
/// let machine = Machine::bus(2)?;
/// let report = simulate_pipeline(&spec, &machine, 10)?;
/// assert!(report.makespan > 0);
/// assert_eq!(report.total_traffic, 20); // 10 items × volume 2
/// # Ok(())
/// # }
/// ```
pub fn simulate_pipeline(
    spec: &PipelineSpec,
    machine: &Machine,
    items: usize,
) -> Result<SimReport, SimError> {
    let stages = spec.stages();
    if spec.stage_comm.len() + 1 != stages {
        return Err(SimError::BadSpec {
            stages,
            comms: spec.stage_comm.len(),
        });
    }
    if stages > machine.processors() {
        return Err(SimError::TooManyStages {
            stages,
            processors: machine.processors(),
        });
    }
    let channels = machine.interconnect().concurrency(machine.processors());
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut stage_busy_until = vec![0u64; stages];
    let mut stage_ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); stages];
    let mut stage_idle = vec![true; stages];
    let mut processor_busy = vec![0u64; machine.processors()];
    let mut free_channels = channels;
    let mut pending_transfers: VecDeque<(usize, usize)> = VecDeque::new();
    let mut channel_busy = 0u64;
    let mut link_traffic = vec![0u64; spec.stage_comm.len()];
    let mut makespan = 0u64;
    for item in 0..items {
        queue.schedule(0, Event::Arrive { stage: 0, item });
    }
    while let Some((now, event)) = queue.pop() {
        makespan = makespan.max(now);
        match event {
            Event::Arrive { stage, item } => {
                stage_ready[stage].push_back(item);
                if stage_idle[stage] {
                    start_next(
                        now,
                        stage,
                        spec,
                        machine,
                        &mut queue,
                        &mut stage_ready,
                        &mut stage_idle,
                        &mut stage_busy_until,
                        &mut processor_busy,
                    );
                }
            }
            Event::ComputeDone { stage, item } => {
                stage_idle[stage] = true;
                if stage + 1 < stages {
                    // Request a transfer over the interconnect.
                    if free_channels > 0 {
                        free_channels -= 1;
                        let dur = machine.transfer_time(spec.stage_comm[stage].get());
                        channel_busy += dur;
                        link_traffic[stage] += spec.stage_comm[stage].get();
                        queue.schedule(now + dur, Event::TransferDone { stage, item });
                    } else {
                        pending_transfers.push_back((stage, item));
                    }
                }
                start_next(
                    now,
                    stage,
                    spec,
                    machine,
                    &mut queue,
                    &mut stage_ready,
                    &mut stage_idle,
                    &mut stage_busy_until,
                    &mut processor_busy,
                );
            }
            Event::TransferDone { stage, item } => {
                queue.schedule(
                    now,
                    Event::Arrive {
                        stage: stage + 1,
                        item,
                    },
                );
                if let Some((s, i)) = pending_transfers.pop_front() {
                    let dur = machine.transfer_time(spec.stage_comm[s].get());
                    channel_busy += dur;
                    link_traffic[s] += spec.stage_comm[s].get();
                    queue.schedule(now + dur, Event::TransferDone { stage: s, item: i });
                } else {
                    free_channels += 1;
                }
            }
        }
    }
    let total_traffic = link_traffic.iter().sum();
    Ok(SimReport {
        makespan,
        items,
        processor_busy,
        total_traffic,
        link_traffic,
        channel_busy,
        channels,
    })
}

#[allow(clippy::too_many_arguments)]
fn start_next(
    now: u64,
    stage: usize,
    spec: &PipelineSpec,
    machine: &Machine,
    queue: &mut EventQueue<Event>,
    stage_ready: &mut [VecDeque<usize>],
    stage_idle: &mut [bool],
    stage_busy_until: &mut [u64],
    processor_busy: &mut [u64],
) {
    if !stage_idle[stage] {
        return;
    }
    if let Some(item) = stage_ready[stage].pop_front() {
        stage_idle[stage] = false;
        let dur = machine.compute_time(spec.stage_work[stage].get());
        processor_busy[stage] += dur;
        stage_busy_until[stage] = now + dur;
        queue.schedule(now + dur, Event::ComputeDone { stage, item });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Interconnect;
    use tgp_graph::{CutSet, EdgeId};

    fn machine(p: usize, net: Interconnect) -> Machine {
        Machine::new(p, 1, 1, 0, net).unwrap()
    }

    #[test]
    fn spec_from_partition() {
        let path = PathGraph::from_raw(&[2, 3, 5, 7], &[10, 20, 30]).unwrap();
        let cut = CutSet::new(vec![EdgeId::new(1)]);
        let spec = PipelineSpec::from_partition(&path, &cut).unwrap();
        assert_eq!(spec.stages(), 2);
        assert_eq!(spec.stage_work, vec![Weight::new(5), Weight::new(12)]);
        assert_eq!(spec.stage_comm, vec![Weight::new(20)]);
    }

    #[test]
    fn rejects_oversized_pipelines_and_bad_specs() {
        let spec = PipelineSpec {
            stage_work: vec![Weight::new(1); 3],
            stage_comm: vec![Weight::new(1); 2],
        };
        let err = simulate_pipeline(&spec, &machine(2, Interconnect::Bus), 1).unwrap_err();
        assert!(matches!(err, SimError::TooManyStages { .. }));
        let bad = PipelineSpec {
            stage_work: vec![Weight::new(1); 3],
            stage_comm: vec![Weight::new(1); 5],
        };
        let err = simulate_pipeline(&bad, &machine(8, Interconnect::Bus), 1).unwrap_err();
        assert!(matches!(err, SimError::BadSpec { .. }));
        assert!(err.to_string().contains('2'));
    }

    #[test]
    fn single_stage_runs_items_back_to_back() {
        let spec = PipelineSpec {
            stage_work: vec![Weight::new(5)],
            stage_comm: vec![],
        };
        let r = simulate_pipeline(&spec, &machine(1, Interconnect::Bus), 4).unwrap();
        assert_eq!(r.makespan, 20);
        assert_eq!(r.items, 4);
        assert_eq!(r.total_traffic, 0);
        assert_eq!(r.processor_busy[0], 20);
        assert!((r.mean_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_stage_pipeline_overlaps() {
        // Stages of 4 and 4, free communication: steady state one item
        // per 4 time units; makespan = 4 * items + 4 (fill latency).
        let spec = PipelineSpec {
            stage_work: vec![Weight::new(4), Weight::new(4)],
            stage_comm: vec![Weight::new(0)],
        };
        let r = simulate_pipeline(&spec, &machine(2, Interconnect::Crossbar), 10).unwrap();
        assert_eq!(r.makespan, 44);
    }

    #[test]
    fn bus_contention_slows_heavy_communication() {
        // Three stages, two links of volume 8 each, unit work: on a bus
        // the links serialize; on a crossbar they overlap.
        let spec = PipelineSpec {
            stage_work: vec![Weight::new(1); 3],
            stage_comm: vec![Weight::new(8), Weight::new(8)],
        };
        let bus = simulate_pipeline(&spec, &machine(3, Interconnect::Bus), 20).unwrap();
        let xbar = simulate_pipeline(&spec, &machine(3, Interconnect::Crossbar), 20).unwrap();
        assert!(
            bus.makespan > xbar.makespan,
            "bus {} vs crossbar {}",
            bus.makespan,
            xbar.makespan
        );
        assert_eq!(bus.total_traffic, xbar.total_traffic);
        assert_eq!(bus.total_traffic, 20 * 16);
        assert_eq!(bus.max_link_traffic(), 20 * 8);
    }

    #[test]
    fn throughput_is_limited_by_the_slowest_stage() {
        let spec = PipelineSpec {
            stage_work: vec![Weight::new(2), Weight::new(10), Weight::new(2)],
            stage_comm: vec![Weight::new(0), Weight::new(0)],
        };
        let r = simulate_pipeline(&spec, &machine(3, Interconnect::Crossbar), 50).unwrap();
        // Steady-state period = 10 (the bottleneck stage).
        assert!(r.makespan >= 500);
        assert!(r.makespan <= 520);
    }

    #[test]
    fn zero_items_is_a_noop() {
        let spec = PipelineSpec {
            stage_work: vec![Weight::new(3)],
            stage_comm: vec![],
        };
        let r = simulate_pipeline(&spec, &machine(1, Interconnect::Bus), 0).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(r.throughput(), 0.0);
    }
}
