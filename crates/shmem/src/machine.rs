//! The shared-memory multiprocessor model.
//!
//! The paper's target architecture: identical processors behind an
//! interconnection network with *uniform latency* — a crossbar, shared
//! bus, or multistage network ("a unique characteristic of shared memory
//! architecture"). Uniform latency is what makes the mapping of partition
//! components to processors trivial; what still differs between networks
//! is how much *concurrency* the interconnect offers, which is what this
//! model captures.

use std::error::Error;
use std::fmt;

/// The interconnection network of a shared-memory machine.
///
/// All variants have uniform latency; they differ in the number of
/// transfers that can be in flight simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Interconnect {
    /// A single shared bus: one transfer at a time.
    Bus,
    /// A full crossbar: every processor pair can communicate concurrently
    /// (transfers serialize only per source port).
    Crossbar,
    /// A multistage network with the given number of parallel channels
    /// (e.g. `p/2` for an omega network on `p` processors).
    Multistage {
        /// Number of concurrently usable channels.
        channels: usize,
    },
}

impl Interconnect {
    /// Number of transfers that may progress concurrently on a machine
    /// with `processors` processors.
    pub fn concurrency(&self, processors: usize) -> usize {
        match *self {
            Interconnect::Bus => 1,
            Interconnect::Crossbar => processors.max(1),
            Interconnect::Multistage { channels } => channels.max(1),
        }
    }
}

/// Configuration of a shared-memory multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    processors: usize,
    /// Instructions per time unit, identical across processors
    /// (homogeneous machine, as the paper assumes for shared memory).
    speed: u64,
    /// Bits per time unit per interconnect channel (the paper's uniform
    /// `w(l_i)`).
    channel_bandwidth: u64,
    /// Fixed per-transfer latency in time units (uniform by assumption).
    latency: u64,
    interconnect: Interconnect,
}

/// Errors constructing a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// At least one processor is required.
    NoProcessors,
    /// Processor speed must be positive.
    ZeroSpeed,
    /// Channel bandwidth must be positive.
    ZeroBandwidth,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoProcessors => write!(f, "machine needs at least one processor"),
            MachineError::ZeroSpeed => write!(f, "processor speed must be positive"),
            MachineError::ZeroBandwidth => write!(f, "channel bandwidth must be positive"),
        }
    }
}

impl Error for MachineError {}

impl Machine {
    /// Creates a machine.
    ///
    /// # Errors
    ///
    /// [`MachineError`] if any parameter is degenerate.
    pub fn new(
        processors: usize,
        speed: u64,
        channel_bandwidth: u64,
        latency: u64,
        interconnect: Interconnect,
    ) -> Result<Self, MachineError> {
        if processors == 0 {
            return Err(MachineError::NoProcessors);
        }
        if speed == 0 {
            return Err(MachineError::ZeroSpeed);
        }
        if channel_bandwidth == 0 {
            return Err(MachineError::ZeroBandwidth);
        }
        Ok(Machine {
            processors,
            speed,
            channel_bandwidth,
            latency,
            interconnect,
        })
    }

    /// A bus-based machine with unit speed/bandwidth and zero latency —
    /// the simplest useful configuration.
    ///
    /// # Errors
    ///
    /// [`MachineError::NoProcessors`] if `processors == 0`.
    pub fn bus(processors: usize) -> Result<Self, MachineError> {
        Machine::new(processors, 1, 1, 0, Interconnect::Bus)
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Processor speed (work units per time unit).
    pub fn speed(&self) -> u64 {
        self.speed
    }

    /// Channel bandwidth (message units per time unit).
    pub fn channel_bandwidth(&self) -> u64 {
        self.channel_bandwidth
    }

    /// Uniform per-transfer latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The interconnect model.
    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    /// Time to execute `work` units of computation on one processor
    /// (rounded up).
    pub fn compute_time(&self, work: u64) -> u64 {
        work.div_ceil(self.speed)
    }

    /// Time a transfer of `volume` units occupies a channel, including
    /// latency (rounded up; zero-volume transfers still pay latency).
    pub fn transfer_time(&self, volume: u64) -> u64 {
        self.latency + volume.div_ceil(self.channel_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Machine::new(0, 1, 1, 0, Interconnect::Bus),
            Err(MachineError::NoProcessors)
        ));
        assert!(matches!(
            Machine::new(2, 0, 1, 0, Interconnect::Bus),
            Err(MachineError::ZeroSpeed)
        ));
        assert!(matches!(
            Machine::new(2, 1, 0, 0, Interconnect::Bus),
            Err(MachineError::ZeroBandwidth)
        ));
        assert!(Machine::bus(4).is_ok());
    }

    #[test]
    fn times_round_up() {
        let m = Machine::new(2, 3, 4, 1, Interconnect::Bus).unwrap();
        assert_eq!(m.compute_time(7), 3); // ceil(7/3)
        assert_eq!(m.compute_time(0), 0);
        assert_eq!(m.transfer_time(9), 1 + 3); // latency + ceil(9/4)
        assert_eq!(m.transfer_time(0), 1);
    }

    #[test]
    fn interconnect_concurrency() {
        assert_eq!(Interconnect::Bus.concurrency(8), 1);
        assert_eq!(Interconnect::Crossbar.concurrency(8), 8);
        assert_eq!(Interconnect::Multistage { channels: 4 }.concurrency(8), 4);
        assert_eq!(Interconnect::Multistage { channels: 0 }.concurrency(8), 1);
    }

    #[test]
    fn accessors() {
        let m = Machine::new(3, 5, 7, 2, Interconnect::Crossbar).unwrap();
        assert_eq!(m.processors(), 3);
        assert_eq!(m.speed(), 5);
        assert_eq!(m.channel_bandwidth(), 7);
        assert_eq!(m.latency(), 2);
        assert_eq!(m.interconnect(), Interconnect::Crossbar);
    }

    #[test]
    fn error_messages() {
        assert!(MachineError::NoProcessors.to_string().contains("processor"));
        assert!(MachineError::ZeroSpeed.to_string().contains("speed"));
        assert!(MachineError::ZeroBandwidth
            .to_string()
            .contains("bandwidth"));
    }
}
