//! A deterministic discrete-event simulation core.
//!
//! Events are ordered by `(time, sequence number)`: ties in time resolve
//! in insertion order, so simulations are fully reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use tgp_shmem::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // insertion order breaks the tie
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventSlot<E>)>>,
    seq: u64,
}

/// Wrapper giving events a total order without requiring `Ord` on `E`
/// (the `(time, seq)` prefix always decides).
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    pub fn schedule(&mut self, time: u64, event: E) {
        self.heap.push(Reverse((time, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap
            .pop()
            .map(|Reverse((time, _, EventSlot(e)))| (time, e))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((time, _, _))| *time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
