//! Analytic pipeline performance model.
//!
//! Closed-form bounds for the streaming pipeline of [`crate::pipeline`],
//! used to sanity-check the simulator and to let users size machines
//! without running a simulation:
//!
//! * the **steady-state period** is bounded below by the slowest stage
//!   and by the interconnect's per-item transfer load divided by its
//!   concurrency;
//! * the **fill latency** is one item's end-to-end traversal;
//! * `makespan ≥ max(fill, items · period)` and, for well-formed
//!   pipelines, the simulator approaches this bound from above.
//!
//! The integration tests in this module *prove the bound empirically*:
//! every simulated makespan is at least the prediction, and within a
//! small factor of it in steady state.

use tgp_graph::Weight;

use crate::machine::Machine;
use crate::pipeline::PipelineSpec;

/// Analytic bounds for streaming `items` through a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinePrediction {
    /// Lower bound on the steady-state period (time between consecutive
    /// item completions).
    pub period: u64,
    /// One item's end-to-end latency on an idle machine.
    pub fill_latency: u64,
    /// Lower bound on the total makespan.
    pub makespan_lower_bound: u64,
}

/// Computes the analytic bounds for `spec` on `machine`.
///
/// # Panics
///
/// Panics if the spec is inconsistent (`stage_comm.len() + 1 !=
/// stage_work.len()`).
///
/// # Examples
///
/// ```
/// use tgp_graph::Weight;
/// use tgp_shmem::analysis::predict_pipeline;
/// use tgp_shmem::machine::Machine;
/// use tgp_shmem::pipeline::PipelineSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = PipelineSpec {
///     stage_work: vec![Weight::new(4), Weight::new(9)],
///     stage_comm: vec![Weight::new(2)],
/// };
/// let p = predict_pipeline(&spec, &Machine::bus(2)?, 100);
/// assert_eq!(p.period, 9); // the slow stage dominates
/// assert!(p.makespan_lower_bound >= 900);
/// # Ok(())
/// # }
/// ```
pub fn predict_pipeline(
    spec: &PipelineSpec,
    machine: &Machine,
    items: usize,
) -> PipelinePrediction {
    assert_eq!(
        spec.stage_comm.len() + 1,
        spec.stage_work.len(),
        "spec dimensions are inconsistent"
    );
    let compute: Vec<u64> = spec
        .stage_work
        .iter()
        .map(|w| machine.compute_time(w.get()))
        .collect();
    let transfer: Vec<u64> = spec
        .stage_comm
        .iter()
        .map(|w| machine.transfer_time(w.get()))
        .collect();
    let channels = machine.interconnect().concurrency(machine.processors()) as u64;
    let max_stage = compute.iter().copied().max().unwrap_or(0);
    let transfer_total: u64 = transfer.iter().sum();
    // Each item occupies the interconnect for `transfer_total` channel
    // time in aggregate; `channels` of those can proceed concurrently.
    let interconnect_period = transfer_total.div_ceil(channels.max(1));
    // A single channel also serializes each individual link's traffic.
    let max_transfer = transfer.iter().copied().max().unwrap_or(0);
    let period = max_stage.max(interconnect_period.max(max_transfer.min(interconnect_period)));
    let fill_latency: u64 = compute.iter().sum::<u64>() + transfer_total;
    let makespan_lower_bound = if items == 0 {
        0
    } else {
        fill_latency.max(period * items as u64)
    };
    PipelinePrediction {
        period,
        fill_latency,
        makespan_lower_bound,
    }
}

/// Convenience: the minimum load bound `K` for which a chain partition
/// could ever reach a target steady-state `period` on `machine` — i.e.
/// the largest per-stage computation the period budget admits. Useful for
/// choosing `K` before partitioning.
pub fn max_stage_work_for_period(machine: &Machine, period: u64) -> Weight {
    Weight::new(period.saturating_mul(machine.speed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Interconnect;
    use crate::pipeline::simulate_pipeline;

    fn spec(work: &[u64], comm: &[u64]) -> PipelineSpec {
        PipelineSpec {
            stage_work: work.iter().copied().map(Weight::new).collect(),
            stage_comm: comm.iter().copied().map(Weight::new).collect(),
        }
    }

    #[test]
    fn compute_bound_pipeline() {
        let s = spec(&[2, 10, 3], &[0, 0]);
        let m = Machine::new(3, 1, 1, 0, Interconnect::Crossbar).unwrap();
        let p = predict_pipeline(&s, &m, 50);
        assert_eq!(p.period, 10);
        assert_eq!(p.fill_latency, 15); // compute 15; zero-volume, zero-latency transfers are free
    }

    #[test]
    fn zero_items() {
        let s = spec(&[5], &[]);
        let m = Machine::bus(1).unwrap();
        assert_eq!(predict_pipeline(&s, &m, 0).makespan_lower_bound, 0);
    }

    #[test]
    fn simulation_respects_the_lower_bound() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xA11A);
        for _ in 0..60 {
            let stages: usize = rng.gen_range(1..7);
            let work: Vec<u64> = (0..stages).map(|_| rng.gen_range(0..30)).collect();
            let comm: Vec<u64> = (0..stages - 1).map(|_| rng.gen_range(0..30)).collect();
            let s = spec(&work, &comm);
            let net = if rng.gen_bool(0.5) {
                Interconnect::Bus
            } else {
                Interconnect::Crossbar
            };
            let m = Machine::new(stages, 1, 1, rng.gen_range(0..3), net).unwrap();
            let items = rng.gen_range(1..40);
            let predicted = predict_pipeline(&s, &m, items);
            let simulated = simulate_pipeline(&s, &m, items).unwrap();
            assert!(
                simulated.makespan >= predicted.makespan_lower_bound,
                "work={work:?} comm={comm:?} items={items} net={net:?}: \
                 sim {} < bound {}",
                simulated.makespan,
                predicted.makespan_lower_bound
            );
        }
    }

    #[test]
    fn steady_state_approaches_the_bound() {
        // With many items and a dominant stage, the bound is tight to
        // within the fill latency.
        let s = spec(&[3, 12, 5], &[2, 2]);
        let m = Machine::bus(3).unwrap();
        let items = 500;
        let predicted = predict_pipeline(&s, &m, items);
        let simulated = simulate_pipeline(&s, &m, items).unwrap();
        assert!(simulated.makespan >= predicted.makespan_lower_bound);
        assert!(
            simulated.makespan <= predicted.makespan_lower_bound + predicted.fill_latency * 2,
            "sim {} vs bound {} + fill {}",
            simulated.makespan,
            predicted.makespan_lower_bound,
            predicted.fill_latency
        );
    }

    #[test]
    fn bus_contention_raises_the_period() {
        let s = spec(&[1, 1, 1, 1], &[10, 10, 10]);
        let bus = Machine::bus(4).unwrap();
        let xbar = Machine::new(4, 1, 1, 0, Interconnect::Crossbar).unwrap();
        let p_bus = predict_pipeline(&s, &bus, 10);
        let p_xbar = predict_pipeline(&s, &xbar, 10);
        assert_eq!(p_bus.period, 30); // all three transfers share one channel
        assert!(p_xbar.period < p_bus.period);
    }

    #[test]
    fn period_to_bound_helper() {
        let m = Machine::new(4, 3, 1, 0, Interconnect::Bus).unwrap();
        assert_eq!(max_stage_work_for_period(&m, 10), Weight::new(30));
    }
}
