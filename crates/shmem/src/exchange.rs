//! Generic compute-then-exchange simulation.
//!
//! The common skeleton behind [`crate::onepass`] and application-level
//! estimators (e.g. `tgp-dds`): every processor computes its assigned
//! work in parallel, then a set of inter-processor transfers contends for
//! the interconnect channels (FIFO in request order; a transfer becomes
//! ready when both endpoint processors have finished computing).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::machine::Machine;
use crate::metrics::SimReport;
use crate::pipeline::SimError;

/// An inter-processor transfer: `volume` units from processor `from` to
/// processor `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source processor.
    pub from: usize,
    /// Destination processor.
    pub to: usize,
    /// Message volume.
    pub volume: u64,
}

/// Simulates one compute-and-exchange round: `work[p]` units on each
/// processor `p`, then the given transfers over the interconnect.
///
/// # Errors
///
/// [`SimError::TooManyStages`] if `work` names more processors than the
/// machine has.
///
/// # Panics
///
/// Panics if a transfer references a processor outside `0..work.len()`.
///
/// # Examples
///
/// ```
/// use tgp_shmem::exchange::{simulate_compute_exchange, Transfer};
/// use tgp_shmem::machine::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let report = simulate_compute_exchange(
///     &[6, 6],
///     &[Transfer { from: 0, to: 1, volume: 4 }],
///     &Machine::bus(2)?,
/// )?;
/// assert_eq!(report.makespan, 10); // 6 compute + 4 transfer
/// # Ok(())
/// # }
/// ```
pub fn simulate_compute_exchange(
    work: &[u64],
    transfers: &[Transfer],
    machine: &Machine,
) -> Result<SimReport, SimError> {
    let k = work.len();
    if k > machine.processors() {
        return Err(SimError::TooManyStages {
            stages: k,
            processors: machine.processors(),
        });
    }
    let finish: Vec<u64> = work.iter().map(|&w| machine.compute_time(w)).collect();
    let mut processor_busy = vec![0u64; machine.processors()];
    processor_busy[..k].copy_from_slice(&finish);
    let mut requests: Vec<(u64, u64)> = transfers
        .iter()
        .map(|t| {
            assert!(
                t.from < k && t.to < k,
                "transfer endpoints must be assigned processors"
            );
            (finish[t.from].max(finish[t.to]), t.volume)
        })
        .collect();
    requests.sort_unstable();
    let channels = machine.interconnect().concurrency(machine.processors());
    let mut channel_free: BinaryHeap<Reverse<u64>> = (0..channels).map(|_| Reverse(0)).collect();
    let mut makespan = finish.iter().copied().max().unwrap_or(0);
    let mut channel_busy = 0u64;
    let mut link_traffic = Vec::with_capacity(requests.len());
    for (ready, volume) in &requests {
        let Reverse(free) = channel_free.pop().expect("at least one channel");
        let start = free.max(*ready);
        let dur = machine.transfer_time(*volume);
        channel_busy += dur;
        link_traffic.push(*volume);
        let end = start + dur;
        makespan = makespan.max(end);
        channel_free.push(Reverse(end));
    }
    Ok(SimReport {
        makespan,
        items: 1,
        processor_busy,
        total_traffic: link_traffic.iter().sum(),
        link_traffic,
        channel_busy,
        channels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Interconnect;

    #[test]
    fn compute_only_round() {
        let r = simulate_compute_exchange(&[5, 9, 2], &[], &Machine::bus(4).unwrap()).unwrap();
        assert_eq!(r.makespan, 9);
        assert_eq!(r.total_traffic, 0);
        assert_eq!(r.processor_busy, vec![5, 9, 2, 0]);
    }

    #[test]
    fn transfers_serialize_on_a_bus() {
        let transfers = [
            Transfer {
                from: 0,
                to: 1,
                volume: 3,
            },
            Transfer {
                from: 1,
                to: 2,
                volume: 3,
            },
        ];
        let r =
            simulate_compute_exchange(&[1, 1, 1], &transfers, &Machine::bus(3).unwrap()).unwrap();
        assert_eq!(r.makespan, 1 + 6);
        let xbar = Machine::new(3, 1, 1, 0, Interconnect::Crossbar).unwrap();
        let r2 = simulate_compute_exchange(&[1, 1, 1], &transfers, &xbar).unwrap();
        assert_eq!(r2.makespan, 1 + 3);
    }

    #[test]
    fn transfer_waits_for_both_endpoints() {
        let transfers = [Transfer {
            from: 0,
            to: 1,
            volume: 2,
        }];
        let r = simulate_compute_exchange(&[1, 10], &transfers, &Machine::bus(2).unwrap()).unwrap();
        assert_eq!(r.makespan, 12);
    }

    #[test]
    fn too_many_processors_rejected() {
        let err =
            simulate_compute_exchange(&[1, 1, 1], &[], &Machine::bus(2).unwrap()).unwrap_err();
        assert!(matches!(err, SimError::TooManyStages { .. }));
    }

    #[test]
    #[should_panic(expected = "assigned processors")]
    fn out_of_range_transfer_panics() {
        let _ = simulate_compute_exchange(
            &[1],
            &[Transfer {
                from: 0,
                to: 5,
                volume: 1,
            }],
            &Machine::bus(8).unwrap(),
        );
    }
}
