//! One-pass execution of a partitioned task graph.
//!
//! Models one iteration of an iterative computation (e.g. a PDE strip
//! sweep or one simulation epoch): every component computes in parallel
//! on its own processor, then each cut edge carries one boundary-exchange
//! message over the interconnect. Transfers contend for the interconnect
//! channels and are served FIFO in request order; a transfer is requested
//! when both endpoint components have finished computing.
//!
//! The resulting makespan makes the paper's two communication objectives
//! observable: total cut weight (bandwidth) determines bus occupancy,
//! while the heaviest cut edge (bottleneck) bounds the critical transfer.

use tgp_graph::{Components, CutSet, Tree};

use crate::exchange::{simulate_compute_exchange, Transfer};
use crate::machine::Machine;
use crate::metrics::SimReport;
use crate::pipeline::SimError;

/// Simulates one iteration of `tree` partitioned by `cut` on `machine`.
///
/// # Errors
///
/// * [`SimError::TooManyStages`] if the partition has more components
///   than the machine has processors.
///
/// # Panics
///
/// Panics if `cut` refers to edges outside `tree` (validate cuts with
/// [`Tree::components`] first if they come from untrusted input).
///
/// # Examples
///
/// ```
/// use tgp_graph::{CutSet, EdgeId, Tree};
/// use tgp_shmem::machine::Machine;
/// use tgp_shmem::onepass::simulate_onepass;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Tree::from_raw(&[6, 6], &[(0, 1, 4)])?;
/// let cut = CutSet::new(vec![EdgeId::new(0)]);
/// let report = simulate_onepass(&t, &cut, &Machine::bus(2)?)?;
/// // Both components compute 6 units in parallel, then one transfer of 4.
/// assert_eq!(report.makespan, 10);
/// # Ok(())
/// # }
/// ```
pub fn simulate_onepass(
    tree: &Tree,
    cut: &CutSet,
    machine: &Machine,
) -> Result<SimReport, SimError> {
    let components = tree
        .components(cut)
        .expect("cut must refer to edges of the tree");
    simulate_onepass_components(&components, tree, cut, machine)
}

/// Like [`simulate_onepass`], reusing precomputed components.
///
/// # Errors
///
/// [`SimError::TooManyStages`] if components exceed processors.
///
/// # Panics
///
/// Panics if `components`/`cut` are inconsistent with `tree`.
pub fn simulate_onepass_components(
    components: &Components,
    tree: &Tree,
    cut: &CutSet,
    machine: &Machine,
) -> Result<SimReport, SimError> {
    let k = components.count();
    let work: Vec<u64> = (0..k).map(|c| components.weight(c).get()).collect();
    let transfers: Vec<Transfer> = cut
        .iter()
        .map(|e| {
            let edge = tree.edge(e);
            Transfer {
                from: components.component_of(edge.a),
                to: components.component_of(edge.b),
                volume: edge.weight.get(),
            }
        })
        .collect();
    simulate_compute_exchange(&work, &transfers, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Interconnect;
    use tgp_graph::EdgeId;

    #[test]
    fn no_cut_single_component() {
        let t = Tree::from_raw(&[3, 4], &[(0, 1, 9)]).unwrap();
        let r = simulate_onepass(&t, &CutSet::empty(), &Machine::bus(1).unwrap()).unwrap();
        assert_eq!(r.makespan, 7);
        assert_eq!(r.total_traffic, 0);
        assert_eq!(r.channels, 1);
    }

    #[test]
    fn too_many_components_rejected() {
        let t = Tree::from_raw(&[1, 1, 1], &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let cut = CutSet::new(vec![EdgeId::new(0), EdgeId::new(1)]);
        let err = simulate_onepass(&t, &cut, &Machine::bus(2).unwrap()).unwrap_err();
        assert!(matches!(err, SimError::TooManyStages { .. }));
    }

    #[test]
    fn bus_serializes_transfers() {
        // Star: centre 0 cut from three leaves; all transfers ready at the
        // same time; the bus serializes 3 transfers of 5 each.
        let t = Tree::from_raw(&[2, 2, 2, 2], &[(0, 1, 5), (0, 2, 5), (0, 3, 5)]).unwrap();
        let cut: CutSet = (0..3).map(EdgeId::new).collect();
        let bus = simulate_onepass(&t, &cut, &Machine::bus(4).unwrap()).unwrap();
        assert_eq!(bus.makespan, 2 + 15);
        let xbar = simulate_onepass(
            &t,
            &cut,
            &Machine::new(4, 1, 1, 0, Interconnect::Crossbar).unwrap(),
        )
        .unwrap();
        assert_eq!(xbar.makespan, 2 + 5);
        assert_eq!(bus.total_traffic, xbar.total_traffic);
    }

    #[test]
    fn transfers_wait_for_slower_endpoint() {
        let t = Tree::from_raw(&[10, 2], &[(0, 1, 3)]).unwrap();
        let cut = CutSet::new(vec![EdgeId::new(0)]);
        let r = simulate_onepass(&t, &cut, &Machine::bus(2).unwrap()).unwrap();
        // Transfer can only start at t = 10 (the slow component).
        assert_eq!(r.makespan, 13);
    }

    #[test]
    fn multistage_limits_concurrency() {
        let t = Tree::from_raw(
            &[1, 1, 1, 1, 1],
            &[(0, 1, 6), (0, 2, 6), (0, 3, 6), (0, 4, 6)],
        )
        .unwrap();
        let cut: CutSet = (0..4).map(EdgeId::new).collect();
        let m2 = Machine::new(5, 1, 1, 0, Interconnect::Multistage { channels: 2 }).unwrap();
        let r = simulate_onepass(&t, &cut, &m2).unwrap();
        // 4 transfers of 6 on 2 channels: two rounds → 1 + 12.
        assert_eq!(r.makespan, 13);
        assert!((r.interconnect_utilization() - 24.0 / 26.0).abs() < 1e-9);
    }

    #[test]
    fn report_fields_are_consistent() {
        let t = Tree::from_raw(&[4, 4, 4], &[(0, 1, 2), (1, 2, 7)]).unwrap();
        let cut = CutSet::new(vec![EdgeId::new(1)]);
        let r = simulate_onepass(&t, &cut, &Machine::bus(2).unwrap()).unwrap();
        assert_eq!(r.total_traffic, 7);
        assert_eq!(r.max_link_traffic(), 7);
        assert_eq!(r.processor_busy.len(), 2);
        assert_eq!(r.processor_busy[0] + r.processor_busy[1], 12);
    }
}
