//! A discrete-event shared-memory multiprocessor simulator.
//!
//! The reproduced paper targets shared-memory machines, whose uniform
//! interconnect latency makes mapping partition components to processors
//! trivial (§1, §3). This crate builds that machine so partitions produced
//! by `tgp_core` can be *executed* and compared by observed behaviour:
//!
//! * [`machine`] — processors plus a bus / crossbar / multistage
//!   interconnect with uniform latency and finite per-channel bandwidth,
//! * [`engine`] — a deterministic discrete-event core,
//! * [`pipeline`] — streaming execution of a partitioned chain (the
//!   paper's pipelined application class),
//! * [`onepass`] — one iteration of a partitioned tree computation with
//!   boundary exchange (the paper's iterative/divide-and-conquer class),
//! * [`exchange`] — the generic compute-then-exchange round behind it,
//! * [`metrics`] — makespan, utilization, imbalance, interconnect traffic,
//! * [`analysis`] — closed-form pipeline bounds the simulator is checked
//!   against.
//!
//! # Example
//!
//! ```
//! use tgp_core::pipeline::partition_chain;
//! use tgp_graph::{PathGraph, Weight};
//! use tgp_shmem::machine::Machine;
//! use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chain = PathGraph::from_raw(&[4, 4, 4, 4, 4], &[9, 1, 9, 1])?;
//! let part = partition_chain(&chain, Weight::new(8))?;
//! let spec = PipelineSpec::from_partition(&chain, &part.cut)?;
//! let report = simulate_pipeline(&spec, &Machine::bus(4)?, 100)?;
//! assert!(report.throughput() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod exchange;
pub mod machine;
pub mod metrics;
pub mod onepass;
pub mod pipeline;

pub use machine::{Interconnect, Machine, MachineError};
pub use metrics::SimReport;
pub use onepass::simulate_onepass;
pub use pipeline::{simulate_pipeline, PipelineSpec, SimError};
