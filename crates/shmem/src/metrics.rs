//! Simulation reports and derived metrics.

/// The outcome of a simulation run on a shared-memory machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Time at which the last event completed.
    pub makespan: u64,
    /// Number of work items processed (1 for one-pass simulations).
    pub items: usize,
    /// Busy time per processor, indexed by processor.
    pub processor_busy: Vec<u64>,
    /// Total message volume moved across the interconnect.
    pub total_traffic: u64,
    /// Message volume per cut edge / inter-stage link.
    pub link_traffic: Vec<u64>,
    /// Total channel-occupancy time summed over all channels.
    pub channel_busy: u64,
    /// Number of interconnect channels available concurrently.
    pub channels: usize,
}

impl SimReport {
    /// Per-processor utilization in `[0, 1]`.
    pub fn processor_utilization(&self) -> Vec<f64> {
        self.processor_busy
            .iter()
            .map(|&b| {
                if self.makespan == 0 {
                    0.0
                } else {
                    b as f64 / self.makespan as f64
                }
            })
            .collect()
    }

    /// Mean processor utilization in `[0, 1]`.
    pub fn mean_utilization(&self) -> f64 {
        let u = self.processor_utilization();
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }

    /// Load imbalance: max processor busy time divided by mean (1.0 is
    /// perfectly balanced; 0 if no work).
    pub fn load_imbalance(&self) -> f64 {
        let max = self.processor_busy.iter().copied().max().unwrap_or(0);
        let sum: u64 = self.processor_busy.iter().sum();
        if sum == 0 {
            0.0
        } else {
            let mean = sum as f64 / self.processor_busy.len() as f64;
            max as f64 / mean
        }
    }

    /// Interconnect utilization in `[0, 1]`: channel busy time over the
    /// total channel-time available.
    pub fn interconnect_utilization(&self) -> f64 {
        if self.makespan == 0 || self.channels == 0 {
            0.0
        } else {
            self.channel_busy as f64 / (self.makespan as f64 * self.channels as f64)
        }
    }

    /// Items completed per time unit.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.items as f64 / self.makespan as f64
        }
    }

    /// The heaviest single link (the bottleneck objective observed at run
    /// time); 0 with no links.
    pub fn max_link_traffic(&self) -> u64 {
        self.link_traffic.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: 100,
            items: 10,
            processor_busy: vec![100, 50, 50],
            total_traffic: 400,
            link_traffic: vec![300, 100],
            channel_busy: 80,
            channels: 2,
        }
    }

    #[test]
    fn utilizations() {
        let r = report();
        assert_eq!(r.processor_utilization(), vec![1.0, 0.5, 0.5]);
        assert!((r.mean_utilization() - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.interconnect_utilization() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn imbalance_and_throughput() {
        let r = report();
        // mean busy = 200/3; max = 100 → imbalance 1.5.
        assert!((r.load_imbalance() - 1.5).abs() < 1e-9);
        assert!((r.throughput() - 0.1).abs() < 1e-9);
        assert_eq!(r.max_link_traffic(), 300);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let r = SimReport {
            makespan: 0,
            items: 0,
            processor_busy: vec![0],
            total_traffic: 0,
            link_traffic: vec![],
            channel_busy: 0,
            channels: 1,
        };
        assert_eq!(r.processor_utilization(), vec![0.0]);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.load_imbalance(), 0.0);
        assert_eq!(r.interconnect_utilization(), 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.max_link_traffic(), 0);
    }
}
