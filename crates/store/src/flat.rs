//! Flat SoA/CSR graph representations over a [`MemoryBacking`].
//!
//! [`FlatPath`] and [`FlatTree`] hold the same information as
//! `tgp_graph::PathGraph` / `tgp_graph::Tree`, but as parallel primitive
//! arrays (`u64` weights, `u32` edge endpoints, prefix-sum adjacency)
//! that can live on either backing. Their builders are *incremental* —
//! weights and edges stream in one at a time, which is what lets the
//! service parse a huge JSON upload directly into (possibly disk-backed)
//! arrays without ever materializing the document tree.
//!
//! Builders reproduce the exact validation sequence — and the exact
//! [`GraphError`] values — of the legacy constructors, so a request
//! routed through the flat substrate fails (or succeeds) byte-for-byte
//! identically to one routed through the pointer graphs.

use std::fmt;
use std::io;

use tgp_graph::{ChainView, EdgeId, GraphError, NodeId, TreeEdge, TreeView, UnionFind32, Weight};

use crate::backing::{Array, BackingKind, MemoryBacking};

/// Why a flat graph could not be built.
#[derive(Debug)]
pub enum BuildError {
    /// The input does not describe a valid graph; carries the same
    /// error value the legacy constructor would produce.
    Graph(GraphError),
    /// The backing failed (spill-file creation or growth).
    Io(io::Error),
    /// More nodes than the compact `u32` index space can address.
    TooLarge {
        /// The offending node count.
        nodes: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Graph(e) => e.fmt(f),
            BuildError::Io(e) => write!(f, "backing error: {e}"),
            BuildError::TooLarge { nodes } => {
                write!(f, "{nodes} node(s) exceed the u32 index space")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<GraphError> for BuildError {
    fn from(e: GraphError) -> Self {
        BuildError::Graph(e)
    }
}

impl From<io::Error> for BuildError {
    fn from(e: io::Error) -> Self {
        BuildError::Io(e)
    }
}

/// The crate-wide weight budget: the combined total of all vertex and
/// edge weights must stay *below* `u64::MAX` (same rule as
/// `tgp_graph::weight::check_combined_total`).
fn combined_total_ok(nodes: u128, edges: u128) -> bool {
    nodes + edges < u128::from(u64::MAX)
}

// ---------------------------------------------------------------------------
// FlatPath
// ---------------------------------------------------------------------------

/// A linear task graph as three parallel arrays: node weights, edge
/// weights, and vertex-weight prefix sums (length `n + 1`).
#[derive(Debug)]
pub struct FlatPath<B: MemoryBacking> {
    node_w: B::Array<u64>,
    edge_w: B::Array<u64>,
    prefix: B::Array<u64>,
    max_node: u64,
    kind: BackingKind,
}

impl<B: MemoryBacking> FlatPath<B> {
    /// Which medium holds this graph.
    pub fn backing_kind(&self) -> BackingKind {
        self.kind
    }

    /// All node weights as raw `u64`s, in index order.
    pub fn node_w(&self) -> &[u64] {
        self.node_w.as_slice()
    }

    /// All edge weights as raw `u64`s, in index order.
    pub fn edge_w(&self) -> &[u64] {
        self.edge_w.as_slice()
    }

    /// Bytes of process RAM the graph pins (0 when disk-backed).
    pub fn resident_bytes(&self) -> u64 {
        self.node_w.resident_bytes() + self.edge_w.resident_bytes() + self.prefix.resident_bytes()
    }

    /// Logical size of the graph's arrays in bytes, whichever medium
    /// holds them.
    pub fn byte_len(&self) -> u64 {
        self.node_w.byte_len() + self.edge_w.byte_len() + self.prefix.byte_len()
    }
}

impl<B: MemoryBacking> ChainView for FlatPath<B> {
    fn len(&self) -> usize {
        self.node_w.len()
    }

    fn edge_count(&self) -> usize {
        self.edge_w.len()
    }

    fn node_weight(&self, node: NodeId) -> Weight {
        Weight::new(self.node_w.as_slice()[node.index()])
    }

    fn edge_weight(&self, edge: EdgeId) -> Weight {
        Weight::new(self.edge_w.as_slice()[edge.index()])
    }

    #[inline]
    fn span_weight(&self, lo: usize, hi: usize) -> Weight {
        debug_assert!(lo <= hi, "span lo {lo} must be <= hi {hi}");
        let p = self.prefix.as_slice();
        Weight::new(p[hi + 1] - p[lo])
    }

    fn total_weight(&self) -> Weight {
        Weight::new(*self.prefix.as_slice().last().expect("prefix never empty"))
    }

    fn max_node_weight(&self) -> Weight {
        Weight::new(self.max_node)
    }
}

/// Incremental builder for [`FlatPath`]: stream node weights and edge
/// weights in order, then [`finish`](FlatPathBuilder::finish).
pub struct FlatPathBuilder<B: MemoryBacking> {
    node_w: B::Array<u64>,
    edge_w: B::Array<u64>,
    prefix: B::Array<u64>,
    node_total: u128,
    edge_total: u128,
    max_node: u64,
    kind: BackingKind,
}

impl<B: MemoryBacking> FlatPathBuilder<B> {
    /// A builder allocating on `backing`, sized for `nodes_hint` nodes.
    ///
    /// # Errors
    ///
    /// Backing allocation failure.
    pub fn new(backing: &B, nodes_hint: usize) -> io::Result<Self> {
        let mut prefix = backing.new_array::<u64>(nodes_hint + 1)?;
        prefix.push(0)?;
        Ok(FlatPathBuilder {
            node_w: backing.new_array::<u64>(nodes_hint)?,
            edge_w: backing.new_array::<u64>(nodes_hint.saturating_sub(1))?,
            prefix,
            node_total: 0,
            edge_total: 0,
            max_node: 0,
            kind: backing.kind(),
        })
    }

    /// Appends the next node weight.
    ///
    /// # Errors
    ///
    /// Backing growth failure.
    pub fn push_node(&mut self, weight: u64) -> io::Result<()> {
        self.node_w.push(weight)?;
        self.node_total += u128::from(weight);
        if self.node_total <= u128::from(u64::MAX) {
            self.prefix.push(self.node_total as u64)?;
        }
        // An overflowing total surfaces as WeightOverflow in finish();
        // the truncated prefix is never observed.
        self.max_node = self.max_node.max(weight);
        Ok(())
    }

    /// Appends the next edge weight.
    ///
    /// # Errors
    ///
    /// Backing growth failure.
    pub fn push_edge(&mut self, weight: u64) -> io::Result<()> {
        self.edge_w.push(weight)?;
        self.edge_total += u128::from(weight);
        Ok(())
    }

    /// Number of nodes pushed so far.
    pub fn nodes(&self) -> usize {
        self.node_w.len()
    }

    /// Number of edges pushed so far.
    pub fn edges(&self) -> usize {
        self.edge_w.len()
    }

    /// Validates and seals the graph. The checks run in the same order
    /// as `PathGraph::from_weights`, producing identical errors.
    ///
    /// # Errors
    ///
    /// [`GraphError::Empty`], [`GraphError::WrongEdgeCount`] or
    /// [`GraphError::WeightOverflow`], exactly as the legacy
    /// constructor reports them.
    pub fn finish(self) -> Result<FlatPath<B>, BuildError> {
        let n = self.node_w.len();
        if n == 0 {
            return Err(GraphError::Empty.into());
        }
        if self.edge_w.len() != n - 1 {
            return Err(GraphError::WrongEdgeCount {
                nodes: n,
                edges: self.edge_w.len(),
            }
            .into());
        }
        if !combined_total_ok(self.node_total, self.edge_total) {
            return Err(GraphError::WeightOverflow.into());
        }
        debug_assert_eq!(self.prefix.len(), n + 1);
        Ok(FlatPath {
            node_w: self.node_w,
            edge_w: self.edge_w,
            prefix: self.prefix,
            max_node: self.max_node,
            kind: self.kind,
        })
    }
}

// ---------------------------------------------------------------------------
// FlatTree
// ---------------------------------------------------------------------------

/// A weighted free tree as parallel arrays plus a CSR adjacency:
/// `edge_a[i]`/`edge_b[i]` are edge `i`'s endpoints in input
/// orientation, and `child_edge[child_start[v]..child_start[v+1]]`
/// lists the edges incident to node `v` in increasing edge order.
#[derive(Debug)]
pub struct FlatTree<B: MemoryBacking> {
    node_w: B::Array<u64>,
    edge_a: B::Array<u32>,
    edge_b: B::Array<u32>,
    edge_w: B::Array<u64>,
    child_start: B::Array<u32>,
    child_edge: B::Array<u32>,
    total: u64,
    max_node: u64,
    kind: BackingKind,
}

impl<B: MemoryBacking> FlatTree<B> {
    /// Which medium holds this graph.
    pub fn backing_kind(&self) -> BackingKind {
        self.kind
    }

    /// All node weights as raw `u64`s, in index order.
    pub fn node_w(&self) -> &[u64] {
        self.node_w.as_slice()
    }

    /// All edge weights as raw `u64`s, in edge order.
    pub fn edge_w(&self) -> &[u64] {
        self.edge_w.as_slice()
    }

    /// Edge `i`'s endpoints in the orientation the graph was built
    /// with (`a`, `b`).
    pub fn endpoints_raw(&self, edge: usize) -> (usize, usize) {
        (
            self.edge_a.as_slice()[edge] as usize,
            self.edge_b.as_slice()[edge] as usize,
        )
    }

    /// Ids of the edges incident to `node`, in increasing edge order.
    pub fn incident_edges(&self, node: usize) -> &[u32] {
        let start = self.child_start.as_slice()[node] as usize;
        let end = self.child_start.as_slice()[node + 1] as usize;
        &self.child_edge.as_slice()[start..end]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.incident_edges(node).len()
    }

    /// Bytes of process RAM the graph pins (0 when disk-backed).
    pub fn resident_bytes(&self) -> u64 {
        self.node_w.resident_bytes()
            + self.edge_a.resident_bytes()
            + self.edge_b.resident_bytes()
            + self.edge_w.resident_bytes()
            + self.child_start.resident_bytes()
            + self.child_edge.resident_bytes()
    }

    /// Logical size of the graph's arrays in bytes, whichever medium
    /// holds them.
    pub fn byte_len(&self) -> u64 {
        self.node_w.byte_len()
            + self.edge_a.byte_len()
            + self.edge_b.byte_len()
            + self.edge_w.byte_len()
            + self.child_start.byte_len()
            + self.child_edge.byte_len()
    }
}

impl<B: MemoryBacking> TreeView for FlatTree<B> {
    fn len(&self) -> usize {
        self.node_w.len()
    }

    fn edge_count(&self) -> usize {
        self.edge_w.len()
    }

    fn node_weight(&self, node: NodeId) -> Weight {
        Weight::new(self.node_w.as_slice()[node.index()])
    }

    fn edge(&self, edge: EdgeId) -> TreeEdge {
        let i = edge.index();
        TreeEdge::new(
            NodeId::new(self.edge_a.as_slice()[i] as usize),
            NodeId::new(self.edge_b.as_slice()[i] as usize),
            Weight::new(self.edge_w.as_slice()[i]),
        )
    }

    fn edge_weight(&self, edge: EdgeId) -> Weight {
        Weight::new(self.edge_w.as_slice()[edge.index()])
    }

    fn total_weight(&self) -> Weight {
        Weight::new(self.total)
    }

    fn max_node_weight(&self) -> Weight {
        Weight::new(self.max_node)
    }
}

/// Incremental builder for [`FlatTree`]: stream node weights, then (or
/// interleaved) edges, then [`finish`](FlatTreeBuilder::finish).
pub struct FlatTreeBuilder<B: MemoryBacking> {
    backing: B,
    node_w: B::Array<u64>,
    edge_a: B::Array<u32>,
    edge_b: B::Array<u32>,
    edge_w: B::Array<u64>,
    /// `(edge index, endpoint-is-b, value)` for endpoints too large to
    /// store as `u32`; only invalid inputs land here, and validation
    /// consults it so the out-of-range error names the original value.
    oversized: Vec<(usize, bool, usize)>,
    node_total: u128,
    edge_total: u128,
    max_node: u64,
}

impl<B: MemoryBacking> FlatTreeBuilder<B> {
    /// A builder allocating on `backing`, sized for `nodes_hint` nodes.
    ///
    /// # Errors
    ///
    /// Backing allocation failure.
    pub fn new(backing: B, nodes_hint: usize) -> io::Result<Self> {
        let m = nodes_hint.saturating_sub(1);
        Ok(FlatTreeBuilder {
            node_w: backing.new_array::<u64>(nodes_hint)?,
            edge_a: backing.new_array::<u32>(m)?,
            edge_b: backing.new_array::<u32>(m)?,
            edge_w: backing.new_array::<u64>(m)?,
            backing,
            oversized: Vec::new(),
            node_total: 0,
            edge_total: 0,
            max_node: 0,
        })
    }

    /// Appends the next node weight.
    ///
    /// # Errors
    ///
    /// Backing growth failure.
    pub fn push_node(&mut self, weight: u64) -> io::Result<()> {
        self.node_w.push(weight)?;
        self.node_total += u128::from(weight);
        self.max_node = self.max_node.max(weight);
        Ok(())
    }

    /// Appends the next edge `(a, b, weight)` in input orientation.
    ///
    /// # Errors
    ///
    /// Backing growth failure.
    pub fn push_edge(&mut self, a: usize, b: usize, weight: u64) -> io::Result<()> {
        let i = self.edge_w.len();
        for (value, is_b) in [(a, false), (b, true)] {
            if u32::try_from(value).is_err() {
                self.oversized.push((i, is_b, value));
            }
        }
        self.edge_a.push(a.min(u32::MAX as usize) as u32)?;
        self.edge_b.push(b.min(u32::MAX as usize) as u32)?;
        self.edge_w.push(weight)?;
        self.edge_total += u128::from(weight);
        Ok(())
    }

    /// Number of nodes pushed so far.
    pub fn nodes(&self) -> usize {
        self.node_w.len()
    }

    /// Number of edges pushed so far.
    pub fn edges(&self) -> usize {
        self.edge_w.len()
    }

    fn endpoint(&self, edge: usize, is_b: bool) -> usize {
        if let Some(&(_, _, v)) = self
            .oversized
            .iter()
            .find(|&&(e, side, _)| e == edge && side == is_b)
        {
            return v;
        }
        if is_b {
            self.edge_b.as_slice()[edge] as usize
        } else {
            self.edge_a.as_slice()[edge] as usize
        }
    }

    /// Validates the edge set and seals the graph, building the CSR
    /// adjacency. The checks run in the same order as
    /// `Tree::from_edges`, producing identical errors — including the
    /// duplicate-edge / cycle distinction.
    ///
    /// # Errors
    ///
    /// Any [`GraphError`] the legacy constructor reports, or
    /// [`BuildError::TooLarge`] for node counts beyond `u32`.
    pub fn finish(self) -> Result<FlatTree<B>, BuildError> {
        let n = self.node_w.len();
        if n == 0 {
            return Err(GraphError::Empty.into());
        }
        if n > u32::MAX as usize {
            return Err(BuildError::TooLarge { nodes: n });
        }
        let m = self.edge_w.len();
        if m != n - 1 {
            return Err(GraphError::WrongEdgeCount { nodes: n, edges: m }.into());
        }
        if !combined_total_ok(self.node_total, self.edge_total) {
            return Err(GraphError::WeightOverflow.into());
        }
        let mut uf = UnionFind32::new(n);
        for i in 0..m {
            let a = self.endpoint(i, false);
            let b = self.endpoint(i, true);
            for endpoint in [a, b] {
                if endpoint >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: NodeId::new(endpoint),
                        len: n,
                    }
                    .into());
                }
            }
            if a == b {
                return Err(GraphError::SelfLoop {
                    node: NodeId::new(a),
                }
                .into());
            }
            if !uf.union(a as u32, b as u32) {
                // The edge closed a cycle; distinguish a parallel edge
                // for a friendlier message, exactly as Tree::from_edges.
                if (0..i).any(|j| {
                    let (fa, fb) = (self.endpoint(j, false), self.endpoint(j, true));
                    (fa, fb) == (a, b) || (fa, fb) == (b, a)
                }) {
                    return Err(GraphError::DuplicateEdge {
                        a: NodeId::new(a),
                        b: NodeId::new(b),
                    }
                    .into());
                }
                return Err(GraphError::Cycle {
                    edge: EdgeId::new(i),
                }
                .into());
            }
        }
        // n - 1 successful unions on n nodes guarantee connectivity.
        // CSR adjacency by counting sort: degrees → prefix offsets →
        // scatter (each edge appears under both endpoints, increasing
        // edge order within a node).
        let edge_a = self.edge_a.as_slice();
        let edge_b = self.edge_b.as_slice();
        let mut degree = vec![0u32; n];
        for i in 0..m {
            degree[edge_a[i] as usize] += 1;
            degree[edge_b[i] as usize] += 1;
        }
        let mut child_start = self.backing.new_array::<u32>(n + 1)?;
        let mut acc = 0u32;
        child_start.push(0)?;
        for &d in &degree {
            acc += d;
            child_start.push(acc)?;
        }
        let mut cursor: Vec<u32> = child_start.as_slice()[..n].to_vec();
        let mut child_edge = self.backing.new_array::<u32>(2 * m)?;
        // Fill with zeros first, then scatter through as_mut_slice.
        for _ in 0..2 * m {
            child_edge.push(0)?;
        }
        {
            let out = child_edge.as_mut_slice();
            for i in 0..m {
                for v in [edge_a[i] as usize, edge_b[i] as usize] {
                    out[cursor[v] as usize] = i as u32;
                    cursor[v] += 1;
                }
            }
        }
        let kind = self.backing.kind();
        Ok(FlatTree {
            node_w: self.node_w,
            edge_a: self.edge_a,
            edge_b: self.edge_b,
            edge_w: self.edge_w,
            child_start,
            child_edge,
            total: self.node_total as u64,
            max_node: self.max_node,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::{DiskBacking, RamBacking};
    use tgp_graph::{PathGraph, Tree};

    fn build_path<B: MemoryBacking>(
        backing: &B,
        nodes: &[u64],
        edges: &[u64],
    ) -> Result<FlatPath<B>, BuildError> {
        let mut b = FlatPathBuilder::new(backing, nodes.len()).unwrap();
        for &w in nodes {
            b.push_node(w).unwrap();
        }
        for &w in edges {
            b.push_edge(w).unwrap();
        }
        b.finish()
    }

    fn build_tree<B: MemoryBacking + Clone>(
        backing: &B,
        nodes: &[u64],
        edges: &[(usize, usize, u64)],
    ) -> Result<FlatTree<B>, BuildError> {
        let mut b = FlatTreeBuilder::new(backing.clone(), nodes.len()).unwrap();
        for &w in nodes {
            b.push_node(w).unwrap();
        }
        for &(a, bb, w) in edges {
            b.push_edge(a, bb, w).unwrap();
        }
        b.finish()
    }

    fn graph_err(e: BuildError) -> GraphError {
        match e {
            BuildError::Graph(g) => g,
            other => panic!("expected graph error, got {other}"),
        }
    }

    #[test]
    fn flat_path_matches_pathgraph_views() {
        let nodes = [2u64, 3, 5, 7, 11];
        let edges = [1u64, 2, 3, 4];
        let legacy = PathGraph::from_raw(&nodes, &edges).unwrap();
        for kind in 0..2 {
            let assert_same = |flat: &dyn ChainView| {
                assert_eq!(flat.len(), legacy.len());
                assert_eq!(flat.edge_count(), legacy.edge_count());
                assert_eq!(flat.total_weight(), legacy.total_weight());
                assert_eq!(flat.max_node_weight(), legacy.max_node_weight());
                for lo in 0..nodes.len() {
                    for hi in lo..nodes.len() {
                        assert_eq!(flat.span_weight(lo, hi), legacy.span_weight(lo, hi));
                    }
                }
                for i in 0..edges.len() {
                    assert_eq!(
                        flat.edge_weight(EdgeId::new(i)),
                        legacy.edge_weight(EdgeId::new(i))
                    );
                }
            };
            if kind == 0 {
                let flat = build_path(&RamBacking, &nodes, &edges).unwrap();
                assert_eq!(flat.backing_kind(), BackingKind::Ram);
                assert_same(&flat);
            } else {
                let flat =
                    build_path(&DiskBacking::new(std::env::temp_dir()), &nodes, &edges).unwrap();
                assert_eq!(flat.backing_kind(), BackingKind::Disk);
                assert_eq!(flat.resident_bytes(), 0);
                assert_same(&flat);
            }
        }
    }

    #[test]
    fn flat_path_error_parity() {
        let cases: &[(&[u64], &[u64])] = &[
            (&[], &[]),
            (&[1, 2], &[1, 2]),
            (&[1, 2, 3], &[1]),
            (&[u64::MAX, 1], &[1]),
            (&[u64::MAX - 1, 1], &[]),
        ];
        for &(nodes, edges) in cases {
            let legacy = PathGraph::from_raw(nodes, edges).unwrap_err();
            let flat = graph_err(build_path(&RamBacking, nodes, edges).unwrap_err());
            assert_eq!(flat, legacy, "nodes={nodes:?} edges={edges:?}");
        }
    }

    #[test]
    fn flat_tree_matches_tree_views() {
        let nodes = [1u64, 2, 3, 4, 5, 6, 7];
        let edges = [
            (0usize, 1usize, 10u64),
            (1, 2, 20),
            (2, 3, 30),
            (1, 4, 40),
            (1, 5, 50),
            (2, 6, 60),
        ];
        let legacy = Tree::from_raw(&nodes, &edges).unwrap();
        let flat = build_tree(&DiskBacking::new(std::env::temp_dir()), &nodes, &edges).unwrap();
        assert_eq!(TreeView::len(&flat), legacy.len());
        assert_eq!(TreeView::edge_count(&flat), legacy.edge_count());
        assert_eq!(TreeView::total_weight(&flat), legacy.total_weight());
        assert_eq!(TreeView::max_node_weight(&flat), legacy.max_node_weight());
        for i in 0..edges.len() {
            assert_eq!(
                TreeView::edge(&flat, EdgeId::new(i)),
                legacy.edge(EdgeId::new(i))
            );
        }
        for v in 0..nodes.len() {
            assert_eq!(flat.degree(v), legacy.degree(NodeId::new(v)));
            let incident: Vec<usize> = flat.incident_edges(v).iter().map(|&e| e as usize).collect();
            let mut legacy_incident: Vec<usize> = legacy
                .neighbors(NodeId::new(v))
                .iter()
                .map(|&(_, e)| e.index())
                .collect();
            legacy_incident.sort_unstable();
            assert_eq!(incident, legacy_incident, "node {v}");
        }
    }

    #[test]
    fn flat_tree_error_parity() {
        type Case = (&'static [u64], &'static [(usize, usize, u64)]);
        let cases: &[Case] = &[
            (&[], &[]),
            (&[1, 2, 3], &[(0, 1, 1)]),
            (&[1, 2], &[(1, 1, 5)]),
            (&[1, 2], &[(0, 5, 1)]),
            (&[1, 2, 3, 4], &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]),
            (&[1, 2, 3], &[(0, 1, 1), (1, 0, 2)]),
            (&[1, 1, 1, 1], &[(0, 1, 1), (0, 1, 2), (2, 3, 1)]),
            (&[u64::MAX, 1], &[(0, 1, 1)]),
        ];
        for &(nodes, edges) in cases {
            let legacy = Tree::from_raw(nodes, edges).unwrap_err();
            let flat = graph_err(build_tree(&RamBacking, nodes, edges).unwrap_err());
            assert_eq!(flat, legacy, "nodes={nodes:?} edges={edges:?}");
        }
    }

    #[test]
    fn oversized_endpoint_reports_original_value() {
        let big = u32::MAX as usize + 7;
        let err = {
            let mut b = FlatTreeBuilder::new(RamBacking, 2).unwrap();
            b.push_node(1).unwrap();
            b.push_node(2).unwrap();
            b.push_edge(0, big, 1).unwrap();
            graph_err(b.finish().unwrap_err())
        };
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(big),
                len: 2
            }
        );
    }
}
