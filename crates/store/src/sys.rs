//! Raw `extern "C"` bindings to the memory-mapping syscalls the disk
//! backing needs: `mmap`/`munmap` to address a spill file as memory,
//! `msync` to flush dirty pages, and `ftruncate` to grow the file.
//!
//! Mirrors the epoll layer in `tgp-net`: no external dependency, just
//! the minimal FFI surface, wrapped in fallible safe functions that
//! translate failure sentinels into [`std::io::Error`]. Everything
//! above this module is safe code.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::ptr::NonNull;

const PROT_READ: c_int = 0x1;
const PROT_WRITE: c_int = 0x2;
const MAP_SHARED: c_int = 0x01;
const MS_SYNC: c_int = 0x4;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
    fn msync(addr: *mut c_void, length: usize, flags: c_int) -> c_int;
    fn ftruncate(fd: c_int, length: i64) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Maps `len` bytes of `fd` (from offset 0) as shared read-write
/// memory. The mapping is page-aligned, so casting it to any primitive
/// element type is alignment-safe.
///
/// # Errors
///
/// The raw `mmap` failure (`ENOMEM`, `ENODEV`, …) as an I/O error.
pub fn map_shared(fd: RawFd, len: usize) -> io::Result<NonNull<u8>> {
    // SAFETY: a NULL hint with a fresh length asks the kernel to pick
    // the placement; the fd stays open for the mapping's lifetime (the
    // owning DiskVec holds the File) and offset 0 is always valid.
    let ptr = unsafe {
        mmap(
            std::ptr::null_mut(),
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED,
            fd,
            0,
        )
    };
    if ptr == usize::MAX as *mut c_void {
        return Err(io::Error::last_os_error());
    }
    NonNull::new(ptr.cast::<u8>()).ok_or_else(|| io::Error::other("mmap returned NULL"))
}

/// Unmaps a region previously returned by [`map_shared`].
pub fn unmap(ptr: NonNull<u8>, len: usize) {
    // SAFETY: the caller owns the mapping and guarantees `ptr`/`len`
    // are exactly what `map_shared` returned; the owning type calls
    // this exactly once, in `Drop` or just before remapping.
    let _ = unsafe { munmap(ptr.as_ptr().cast::<c_void>(), len) };
}

/// Synchronously flushes dirty pages of a mapped region to its file.
///
/// # Errors
///
/// The raw `msync` failure as an I/O error.
pub fn sync(ptr: NonNull<u8>, len: usize) -> io::Result<()> {
    // SAFETY: the region is a live mapping owned by the caller.
    check(unsafe { msync(ptr.as_ptr().cast::<c_void>(), len, MS_SYNC) }).map(|_| ())
}

/// Grows (or shrinks) the file behind a mapping to `len` bytes.
///
/// # Errors
///
/// The raw `ftruncate` failure (`ENOSPC`, …) as an I/O error.
pub fn truncate(fd: RawFd, len: u64) -> io::Result<()> {
    let len = i64::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file length exceeds i64"))?;
    // SAFETY: no pointers involved; the return value is checked.
    check(unsafe { ftruncate(fd, len) }).map(|_| ())
}
