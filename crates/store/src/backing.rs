//! The [`MemoryBacking`] trait and its two implementations: heap
//! vectors and mmap-backed spill files.

#![allow(unsafe_code)]

use std::fs::{File, OpenOptions};
use std::io;
use std::marker::PhantomData;
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sys;

/// Smallest file size a [`DiskVec`] maps — one growth unit. Growing
/// doubles from here, so a million-element array needs ~9 remaps.
const MIN_MAP_BYTES: usize = 64 * 1024;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Element types an [`Array`] may hold: fixed-size primitives that are
/// valid for every bit pattern, so a page-aligned mapping of them can
/// be viewed as a slice. Sealed — the safety of [`DiskVec`] rests on
/// this list staying primitives-only.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + Default + 'static {}

impl Pod for u8 {}
impl Pod for u32 {}
impl Pod for u64 {}

/// Which medium holds an array — the `/metrics` label value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingKind {
    /// Heap memory.
    Ram,
    /// An mmap-backed spill file.
    Disk,
}

impl BackingKind {
    /// The lowercase label used in metrics and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            BackingKind::Ram => "ram",
            BackingKind::Disk => "disk",
        }
    }
}

/// A growable typed array, the uniform accessor over both backings.
///
/// `mmap` gives contiguous addressable memory, so even the disk
/// implementation exposes a plain slice — solver hot paths index it
/// with zero per-access overhead and the kernel pages data in and out
/// underneath.
pub trait Array<T: Pod> {
    /// Number of elements.
    fn len(&self) -> usize;

    /// Whether the array holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The elements as a contiguous slice.
    fn as_slice(&self) -> &[T];

    /// The elements as a mutable contiguous slice.
    fn as_mut_slice(&mut self) -> &mut [T];

    /// Appends one element, growing the storage if needed.
    ///
    /// # Errors
    ///
    /// Growth failure (`ENOSPC` on a spill file); heap growth aborts
    /// instead, as all Rust allocation does.
    fn push(&mut self, value: T) -> io::Result<()>;

    /// Appends a run of elements.
    ///
    /// # Errors
    ///
    /// As [`Array::push`].
    fn extend_from_slice(&mut self, values: &[T]) -> io::Result<()> {
        for &v in values {
            self.push(v)?;
        }
        Ok(())
    }

    /// Bytes of *RAM* this array pins (a disk array pins none — its
    /// pages live in the reclaimable page cache).
    fn resident_bytes(&self) -> u64;

    /// Logical payload size in bytes, whichever medium holds it.
    fn byte_len(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64
    }
}

/// A heap-backed array: a thin wrapper over `Vec<T>`.
#[derive(Debug, Default)]
pub struct RamVec<T: Pod>(Vec<T>);

impl<T: Pod> RamVec<T> {
    /// Creates an empty array with the given capacity hint.
    pub fn with_capacity(capacity: usize) -> Self {
        RamVec(Vec::with_capacity(capacity))
    }
}

impl<T: Pod> Array<T> for RamVec<T> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn as_slice(&self) -> &[T] {
        &self.0
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.0
    }

    fn push(&mut self, value: T) -> io::Result<()> {
        self.0.push(value);
        Ok(())
    }

    fn extend_from_slice(&mut self, values: &[T]) -> io::Result<()> {
        self.0.extend_from_slice(values);
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        (self.0.capacity() * std::mem::size_of::<T>()) as u64
    }
}

/// Distinguishes concurrently created spill files within one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// An mmap-backed growable array over an *unlinked* spill file.
///
/// The file is created in the spill directory, opened, and immediately
/// removed from the namespace — the kernel keeps it alive while the fd
/// is open and reclaims the space automatically on drop or crash, so
/// spill files can never leak. Growth doubles the file with
/// `ftruncate` and remaps (`MAP_SHARED` mappings of the same file see
/// the same pages, so data survives the remap).
#[derive(Debug)]
pub struct DiskVec<T: Pod> {
    file: File,
    ptr: NonNull<u8>,
    map_bytes: usize,
    len: usize,
    _marker: PhantomData<T>,
}

// SAFETY: the mapping is owned exclusively by this value (the file is
// unlinked and the fd private), `T` is a sealed primitive, and all
// access flows through &self / &mut self — the usual container rules.
unsafe impl<T: Pod> Send for DiskVec<T> {}
// SAFETY: &DiskVec only hands out &[T]; interior mutation is impossible.
unsafe impl<T: Pod> Sync for DiskVec<T> {}

impl<T: Pod> DiskVec<T> {
    /// Creates an empty disk array spilling into `dir`, sized for
    /// `capacity` elements up front (it still grows beyond that).
    ///
    /// # Errors
    ///
    /// File creation, truncation or mapping failure.
    pub fn with_capacity_in(dir: &Path, capacity: usize) -> io::Result<Self> {
        let name = format!(
            "tgp-spill-{}-{}.bin",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path: PathBuf = dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Unlink immediately: the mapping keeps the inode alive and the
        // space is reclaimed automatically however the process exits.
        std::fs::remove_file(&path)?;
        let want = capacity.saturating_mul(std::mem::size_of::<T>());
        let map_bytes = want.next_power_of_two().max(MIN_MAP_BYTES);
        sys::truncate(file.as_raw_fd(), map_bytes as u64)?;
        let ptr = sys::map_shared(file.as_raw_fd(), map_bytes)?;
        Ok(DiskVec {
            file,
            ptr,
            map_bytes,
            len: 0,
            _marker: PhantomData,
        })
    }

    fn capacity(&self) -> usize {
        self.map_bytes / std::mem::size_of::<T>()
    }

    fn grow_to_fit(&mut self, extra: usize) -> io::Result<()> {
        let need = (self.len + extra).saturating_mul(std::mem::size_of::<T>());
        if need <= self.map_bytes {
            return Ok(());
        }
        let new_bytes = need.next_power_of_two().max(self.map_bytes * 2);
        sys::unmap(self.ptr, self.map_bytes);
        sys::truncate(self.file.as_raw_fd(), new_bytes as u64)?;
        self.ptr = sys::map_shared(self.file.as_raw_fd(), new_bytes)?;
        self.map_bytes = new_bytes;
        Ok(())
    }

    /// Flushes dirty pages to the spill file.
    ///
    /// # Errors
    ///
    /// The underlying `msync` failure.
    pub fn sync(&self) -> io::Result<()> {
        sys::sync(self.ptr, self.map_bytes)
    }
}

impl<T: Pod> Array<T> for DiskVec<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn as_slice(&self) -> &[T] {
        // SAFETY: the mapping is page-aligned (so aligned for any Pod),
        // at least `len * size_of::<T>()` bytes long, and every byte of
        // it is initialized (fresh ftruncate pages read as zero, and
        // Pod types are valid for all bit patterns).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().cast::<T>(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as in `as_slice`, plus &mut self guarantees
        // exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr().cast::<T>(), self.len) }
    }

    fn push(&mut self, value: T) -> io::Result<()> {
        if self.len == self.capacity() {
            self.grow_to_fit(1)?;
        }
        // SAFETY: `len < capacity` after the growth check, so the write
        // lands inside the mapping.
        unsafe {
            self.ptr.as_ptr().cast::<T>().add(self.len).write(value);
        }
        self.len += 1;
        Ok(())
    }

    fn extend_from_slice(&mut self, values: &[T]) -> io::Result<()> {
        self.grow_to_fit(values.len())?;
        // SAFETY: capacity covers `len + values.len()` after the growth
        // check; source and destination cannot overlap (the mapping is
        // private to this value).
        unsafe {
            std::ptr::copy_nonoverlapping(
                values.as_ptr(),
                self.ptr.as_ptr().cast::<T>().add(self.len),
                values.len(),
            );
        }
        self.len += values.len();
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        0 // pages live in the reclaimable page cache, not process RAM
    }
}

impl<T: Pod> Drop for DiskVec<T> {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.map_bytes);
        // The unlinked file's space is reclaimed when `self.file` closes.
    }
}

/// Chooses where arrays live. Graph builders are generic over this, so
/// one code path serves both media.
pub trait MemoryBacking {
    /// The array type this backing produces.
    type Array<T: Pod>: Array<T>;

    /// Which medium this backing allocates on.
    fn kind(&self) -> BackingKind;

    /// Allocates an empty array sized for `capacity` elements.
    ///
    /// # Errors
    ///
    /// Spill-file creation failure ([`DiskBacking`] only).
    fn new_array<T: Pod>(&self, capacity: usize) -> io::Result<Self::Array<T>>;
}

/// Heap backing: arrays are `Vec`s.
#[derive(Debug, Clone, Copy, Default)]
pub struct RamBacking;

impl MemoryBacking for RamBacking {
    type Array<T: Pod> = RamVec<T>;

    fn kind(&self) -> BackingKind {
        BackingKind::Ram
    }

    fn new_array<T: Pod>(&self, capacity: usize) -> io::Result<RamVec<T>> {
        Ok(RamVec::with_capacity(capacity))
    }
}

/// Disk backing: arrays are mmap-backed spill files in a directory.
#[derive(Debug, Clone)]
pub struct DiskBacking {
    dir: PathBuf,
}

impl DiskBacking {
    /// A backing that spills into `dir` (which must exist and be
    /// writable — ideally a real filesystem, not tmpfs, so spilled
    /// pages are actually evictable under memory pressure).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskBacking { dir: dir.into() }
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl MemoryBacking for DiskBacking {
    type Array<T: Pod> = DiskVec<T>;

    fn kind(&self) -> BackingKind {
        BackingKind::Disk
    }

    fn new_array<T: Pod>(&self, capacity: usize) -> io::Result<DiskVec<T>> {
        DiskVec::with_capacity_in(&self.dir, capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        std::env::temp_dir()
    }

    #[test]
    fn ram_array_roundtrip() {
        let backing = RamBacking;
        assert_eq!(backing.kind(), BackingKind::Ram);
        let mut a = backing.new_array::<u64>(4).unwrap();
        for i in 0..100u64 {
            a.push(i * 3).unwrap();
        }
        assert_eq!(a.len(), 100);
        assert_eq!(a.as_slice()[77], 231);
        a.as_mut_slice()[77] = 1;
        assert_eq!(a.as_slice()[77], 1);
        assert!(a.resident_bytes() >= a.byte_len());
    }

    #[test]
    fn disk_array_roundtrip_and_growth() {
        let backing = DiskBacking::new(tmp());
        assert_eq!(backing.kind(), BackingKind::Disk);
        let mut a = backing.new_array::<u64>(8).unwrap();
        // Push well past the initial 64 KiB mapping to force remaps.
        let n = 64 * 1024;
        for i in 0..n as u64 {
            a.push(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).unwrap();
        }
        assert_eq!(a.len(), n);
        for (i, &v) in a.as_slice().iter().enumerate() {
            assert_eq!(v, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        assert_eq!(a.resident_bytes(), 0);
        assert_eq!(a.byte_len(), (n * 8) as u64);
        a.sync().unwrap();
    }

    #[test]
    fn disk_extend_matches_push() {
        let backing = DiskBacking::new(tmp());
        let mut a = backing.new_array::<u32>(0).unwrap();
        let vals: Vec<u32> = (0..50_000).collect();
        a.extend_from_slice(&vals).unwrap();
        a.extend_from_slice(&vals).unwrap();
        assert_eq!(a.len(), 100_000);
        assert_eq!(&a.as_slice()[..50_000], &vals[..]);
        assert_eq!(&a.as_slice()[50_000..], &vals[..]);
    }

    fn spill_file_count(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("tgp-spill-"))
            .count()
    }

    #[test]
    fn spill_files_do_not_linger() {
        let dir = tmp();
        let before = spill_file_count(&dir);
        let a = DiskVec::<u64>::with_capacity_in(&dir, 1024).unwrap();
        // Even while alive, the file is already unlinked.
        assert_eq!(spill_file_count(&dir), before);
        drop(a);
        assert_eq!(spill_file_count(&dir), before);
    }

    #[test]
    fn mutation_through_mut_slice_persists() {
        let mut a = DiskVec::<u64>::with_capacity_in(&tmp(), 16).unwrap();
        for _ in 0..16 {
            a.push(0).unwrap();
        }
        a.as_mut_slice()[9] = 42;
        assert_eq!(a.as_slice()[9], 42);
    }
}
