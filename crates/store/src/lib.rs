//! Out-of-core graph substrate: pluggable memory backing and flat
//! SoA/CSR graph representations.
//!
//! The paper's algorithms scan vertices in index order, so a graph is
//! fundamentally a handful of parallel arrays — vertex weights, edge
//! weights, prefix sums, and (for trees) a CSR adjacency. This crate
//! stores those arrays behind a [`MemoryBacking`] so the *same* solver
//! code runs over heap memory ([`RamBacking`]) or an mmap-backed spill
//! file ([`DiskBacking`]), letting the service partition graphs larger
//! than RAM while the kernel pages the arrays in and out.
//!
//! * [`MemoryBacking`] — chooses where arrays live; [`Array`] is the
//!   uniform accessor both backings provide (`mmap` gives contiguous
//!   addressable memory, so a disk array is still a plain slice).
//! * [`RamVec`] / [`DiskVec`] — the two array implementations.
//! * [`FlatPath`] / [`FlatTree`] — flat graph representations that
//!   implement [`tgp_graph::ChainView`] / [`tgp_graph::TreeView`], the
//!   access traits the solver hot paths are generic over. Their
//!   builders reproduce the exact validation (and [`GraphError`]
//!   values) of the legacy pointer graphs, so responses stay
//!   byte-identical whichever representation served them.
//! * [`SpillBuf`] — a request-body buffer that starts on the heap and
//!   spills to an unlinked mmap-backed file past a threshold, bounding
//!   the RAM a single huge upload can pin.
//!
//! The only `unsafe` in the crate is the minimal mmap FFI surface in
//! [`sys`], mirroring the epoll layer in `tgp-net`.
//!
//! [`GraphError`]: tgp_graph::GraphError

#![warn(missing_docs)]

mod backing;
mod flat;
mod spill;
pub mod sys;

pub use backing::{
    Array, BackingKind, DiskBacking, DiskVec, MemoryBacking, Pod, RamBacking, RamVec,
};
pub use flat::{BuildError, FlatPath, FlatPathBuilder, FlatTree, FlatTreeBuilder};
pub use spill::SpillBuf;
