//! [`SpillBuf`]: a byte buffer that starts on the heap and moves to an
//! unlinked mmap-backed spill file once it crosses a threshold.
//!
//! Request bodies use this so a single huge graph upload cannot pin
//! more than `threshold` bytes of heap — everything past that lives in
//! the page cache, evictable under memory pressure.

use std::io;
use std::path::{Path, PathBuf};

use crate::backing::{Array, DiskVec};

enum Inner {
    Ram(Vec<u8>),
    Disk(DiskVec<u8>),
}

/// A growable byte buffer with a heap-residency cap.
pub struct SpillBuf {
    inner: Inner,
    threshold: usize,
    dir: PathBuf,
}

impl SpillBuf {
    /// An empty buffer that spills into `dir` once it exceeds
    /// `threshold` bytes.
    pub fn new(threshold: usize, dir: impl Into<PathBuf>) -> Self {
        SpillBuf {
            inner: Inner::Ram(Vec::new()),
            threshold,
            dir: dir.into(),
        }
    }

    /// Appends bytes, migrating to disk if the total crosses the
    /// threshold.
    ///
    /// # Errors
    ///
    /// Spill-file creation or growth failure.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) -> io::Result<()> {
        match &mut self.inner {
            Inner::Ram(v) => {
                if v.len() + bytes.len() > self.threshold {
                    let mut disk =
                        DiskVec::<u8>::with_capacity_in(&self.dir, v.len() + bytes.len())?;
                    disk.extend_from_slice(v)?;
                    disk.extend_from_slice(bytes)?;
                    self.inner = Inner::Disk(disk);
                } else {
                    v.extend_from_slice(bytes);
                }
                Ok(())
            }
            Inner::Disk(d) => d.extend_from_slice(bytes),
        }
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Ram(v) => v.len(),
            Inner::Disk(d) => d.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered bytes as one contiguous slice (the disk variant is
    /// an mmap, so this is free).
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Ram(v) => v,
            Inner::Disk(d) => d.as_slice(),
        }
    }

    /// Whether the buffer has migrated to a spill file.
    pub fn is_spilled(&self) -> bool {
        matches!(self.inner, Inner::Disk(_))
    }

    /// The configured spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl std::fmt::Debug for SpillBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillBuf")
            .field("len", &self.len())
            .field("spilled", &self.is_spilled())
            .field("threshold", &self.threshold)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_ram_below_threshold() {
        let mut b = SpillBuf::new(1024, std::env::temp_dir());
        b.extend_from_slice(&[7u8; 1024]).unwrap();
        assert!(!b.is_spilled());
        assert_eq!(b.len(), 1024);
        assert!(b.as_slice().iter().all(|&x| x == 7));
    }

    #[test]
    fn spills_past_threshold_and_preserves_prefix() {
        let mut b = SpillBuf::new(100, std::env::temp_dir());
        let first: Vec<u8> = (0..90u8).collect();
        b.extend_from_slice(&first).unwrap();
        assert!(!b.is_spilled());
        let second: Vec<u8> = (90..200).map(|x| (x % 256) as u8).collect();
        b.extend_from_slice(&second).unwrap();
        assert!(b.is_spilled());
        assert_eq!(b.len(), 200);
        let expect: Vec<u8> = (0..200u32).map(|x| x as u8).collect();
        assert_eq!(b.as_slice(), &expect[..]);
        // Further appends stay on disk.
        b.extend_from_slice(&[1, 2, 3]).unwrap();
        assert_eq!(b.len(), 203);
        assert_eq!(&b.as_slice()[200..], &[1, 2, 3]);
    }
}
