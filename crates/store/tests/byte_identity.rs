//! Byte-identity property suite: every solver must produce *identical*
//! results — cut edge sets, weights, segment lists — whether the graph is
//! the legacy pointer representation (`PathGraph`/`Tree`), a RAM-backed
//! flat graph, or a disk-backed (mmap) flat graph.
//!
//! 64 random cases (32 chains, 32 trees) spanning tiny to moderately
//! large instances, plus several bounds per instance. Any divergence —
//! in `Ok` payloads *or* in error values — fails the test.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tgp_core::bandwidth::{min_bandwidth_cut, min_bandwidth_cut_lexicographic, prime_subpaths};
use tgp_core::bottleneck::{min_bottleneck_cut, min_bottleneck_cut_warm};
use tgp_core::pipeline::partition_chain;
use tgp_graph::{ChainView, PathGraph, Tree, TreeView, Weight};
use tgp_store::{
    DiskBacking, FlatPath, FlatPathBuilder, FlatTree, FlatTreeBuilder, MemoryBacking, RamBacking,
};

fn flat_path<B: MemoryBacking>(backing: &B, nodes: &[u64], edges: &[u64]) -> FlatPath<B> {
    let mut b = FlatPathBuilder::new(backing, nodes.len()).unwrap();
    for &w in nodes {
        b.push_node(w).unwrap();
    }
    for &w in edges {
        b.push_edge(w).unwrap();
    }
    b.finish().unwrap()
}

fn flat_tree<B: MemoryBacking + Clone>(
    backing: &B,
    nodes: &[u64],
    edges: &[(usize, usize, u64)],
) -> FlatTree<B> {
    let mut b = FlatTreeBuilder::new(backing.clone(), nodes.len()).unwrap();
    for &w in nodes {
        b.push_node(w).unwrap();
    }
    for &(a, bb, w) in edges {
        b.push_edge(a, bb, w).unwrap();
    }
    b.finish().unwrap()
}

/// Runs every chain solver on one view and returns a canonical transcript
/// of everything the service would serialize. Comparing transcripts across
/// representations is exactly the byte-identity contract.
fn chain_transcript<C: ChainView>(path: &C, bounds: &[u64]) -> String {
    let mut out = String::new();
    for &k in bounds {
        let bound = Weight::new(k);
        match prime_subpaths(path, bound) {
            Ok(primes) => {
                out.push_str(&format!("primes k={k}: {primes:?}\n"));
            }
            Err(e) => out.push_str(&format!("primes k={k}: ERR {e:?}\n")),
        }
        match min_bandwidth_cut(path, bound) {
            Ok(cut) => {
                let edges: Vec<usize> = cut.iter().map(|e| e.index()).collect();
                out.push_str(&format!(
                    "bw k={k}: cut={edges:?} w={:?} bn={:?}\n",
                    path.cut_weight(&cut).unwrap(),
                    path.bottleneck(&cut).unwrap(),
                ));
            }
            Err(e) => out.push_str(&format!("bw k={k}: ERR {e:?}\n")),
        }
        match min_bandwidth_cut_lexicographic(path, bound) {
            Ok(cut) => {
                let edges: Vec<usize> = cut.iter().map(|e| e.index()).collect();
                out.push_str(&format!(
                    "lex k={k}: cut={edges:?} w={:?} bn={:?} segs={:?}\n",
                    path.cut_weight(&cut).unwrap(),
                    path.bottleneck(&cut).unwrap(),
                    path.segments(&cut).unwrap(),
                ));
            }
            Err(e) => out.push_str(&format!("lex k={k}: ERR {e:?}\n")),
        }
        match partition_chain(path, bound) {
            Ok(p) => out.push_str(&format!(
                "pipe k={k}: procs={} bw={:?} bn={:?} segs={:?}\n",
                p.processors, p.bandwidth, p.bottleneck, p.segments,
            )),
            Err(e) => out.push_str(&format!("pipe k={k}: ERR {e:?}\n")),
        }
    }
    out
}

/// Same idea for trees: bottleneck solve (cold and warm-start paths).
fn tree_transcript<T: TreeView>(tree: &T, bounds: &[u64]) -> String {
    let mut out = String::new();
    for &k in bounds {
        let bound = Weight::new(k);
        match min_bottleneck_cut(tree, bound) {
            Ok(r) => {
                let edges: Vec<usize> = r.cut.iter().map(|e| e.index()).collect();
                out.push_str(&format!(
                    "bn k={k}: cut={edges:?} bn={:?} w={:?}\n",
                    r.bottleneck,
                    tree.cut_weight(&r.cut).unwrap(),
                ));
                // Warm re-solve with an exact hint window must certify and
                // reproduce the cold result on every backing.
                let warm =
                    min_bottleneck_cut_warm(tree, bound, r.bottleneck, r.bottleneck).unwrap();
                match warm {
                    Some(w) => {
                        let warm_edges: Vec<usize> = w.cut.iter().map(|e| e.index()).collect();
                        out.push_str(&format!(
                            "warm k={k}: cut={warm_edges:?} bn={:?}\n",
                            w.bottleneck
                        ));
                    }
                    None => out.push_str(&format!("warm k={k}: MISS\n")),
                }
            }
            Err(e) => out.push_str(&format!("bn k={k}: ERR {e:?}\n")),
        }
    }
    out
}

#[test]
fn chain_solvers_are_byte_identical_across_backings() {
    let mut rng = SmallRng::seed_from_u64(0x5107e);
    let spill = DiskBacking::new(std::env::temp_dir());
    for case in 0..32 {
        let n = rng.gen_range(1..200);
        let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..40)).collect();
        let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(1..100)).collect();
        let max = *nodes.iter().max().unwrap();
        let total: u64 = nodes.iter().sum();
        let bounds = [
            max.saturating_sub(1).max(1), // often infeasible
            max,
            max + rng.gen_range(0..30),
            total, // trivially feasible
        ];
        let legacy = PathGraph::from_raw(&nodes, &edges).unwrap();
        let ram = flat_path(&RamBacking, &nodes, &edges);
        let disk = flat_path(&spill, &nodes, &edges);
        let want = chain_transcript(&legacy, &bounds);
        assert_eq!(
            chain_transcript(&ram, &bounds),
            want,
            "case {case}: RAM flat diverged (n={n})"
        );
        assert_eq!(
            chain_transcript(&disk, &bounds),
            want,
            "case {case}: disk flat diverged (n={n})"
        );
    }
}

#[test]
fn tree_solvers_are_byte_identical_across_backings() {
    let mut rng = SmallRng::seed_from_u64(0xb10b);
    let spill = DiskBacking::new(std::env::temp_dir());
    for case in 0..32 {
        let n = rng.gen_range(1..150);
        let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..40)).collect();
        // Random attachment tree; shuffle edge insertion order away from
        // parent order by occasionally flipping the orientation.
        let edges: Vec<(usize, usize, u64)> = (1..n)
            .map(|v| {
                let parent = rng.gen_range(0..v);
                let w = rng.gen_range(1..100);
                if rng.gen_bool(0.5) {
                    (parent, v, w)
                } else {
                    (v, parent, w)
                }
            })
            .collect();
        let max = *nodes.iter().max().unwrap();
        let total: u64 = nodes.iter().sum();
        let bounds = [
            max.saturating_sub(1).max(1),
            max,
            max + rng.gen_range(0..40),
            total,
        ];
        let legacy = Tree::from_raw(&nodes, &edges).unwrap();
        let ram = flat_tree(&RamBacking, &nodes, &edges);
        let disk = flat_tree(&spill, &nodes, &edges);
        let want = tree_transcript(&legacy, &bounds);
        assert_eq!(
            tree_transcript(&ram, &bounds),
            want,
            "case {case}: RAM flat diverged (n={n})"
        );
        assert_eq!(
            tree_transcript(&disk, &bounds),
            want,
            "case {case}: disk flat diverged (n={n})"
        );
    }
}
