//! Property-based tests on the real-time application's contracts.

use proptest::prelude::*;

use tgp_graph::Weight;
use tgp_realtime::Strategy as RtStrategy;
use tgp_realtime::{admit, RealTimeTask, RtError};
use tgp_shmem::machine::Machine;

fn arb_task() -> impl Strategy<Value = RealTimeTask> {
    (1usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..15, n),
            prop::collection::vec(0u64..50, n - 1),
            15u64..80,
        )
            .prop_map(|(durations, deps, k)| {
                RealTimeTask::new(&durations, &deps, Weight::new(k))
                    .expect("durations are below the deadline by construction")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Both strategies produce deadline-feasible partitions; each one is
    /// at least as good as the other on its own objective.
    #[test]
    fn strategies_win_their_own_objective(task in arb_task()) {
        let bw = task.partition(RtStrategy::MinBandwidth).unwrap();
        let bn = task.partition(RtStrategy::MinBottleneck).unwrap();
        for part in [&bw, &bn] {
            prop_assert!(part.groups.iter().all(|g| g.weight <= task.deadline()));
            prop_assert_eq!(part.processors, part.groups.len());
            prop_assert_eq!(part.cut.len() + 1, part.processors);
        }
        prop_assert!(bw.bandwidth <= bn.bandwidth);
        prop_assert!(bn.bottleneck <= bw.bottleneck);
    }

    /// Admission control: accepted exactly when the machine is big
    /// enough; accepted runs conserve traffic.
    #[test]
    fn admission_is_sound(task in arb_task(), extra in 0usize..3, items in 1usize..30) {
        let part = task.partition(RtStrategy::default()).unwrap();
        let machine = Machine::bus(part.processors + extra).unwrap();
        let report = admit(&task, &part, &machine, items).unwrap();
        prop_assert_eq!(report.items, items);
        prop_assert_eq!(report.total_traffic, part.bandwidth.get() * items as u64);
        if part.processors > 1 {
            let small = Machine::bus(part.processors - 1).unwrap();
            let rejected = matches!(
                admit(&task, &part, &small, items),
                Err(RtError::TooFewProcessors { .. })
            );
            prop_assert!(rejected);
        }
    }

    /// The rendered schedule names every processor exactly once.
    #[test]
    fn render_covers_all_processors(task in arb_task()) {
        let part = task.partition(RtStrategy::default()).unwrap();
        let text = part.render();
        for p in 0..part.processors {
            prop_assert_eq!(text.matches(&format!("P{p}:")).count(), 1);
        }
    }
}
