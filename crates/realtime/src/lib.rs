//! Real-time pipelined computing — the first application of the
//! reproduced paper (§3, Figure 3).
//!
//! A real-time task `T` with deadline `k` is maximally divided into a
//! chain of subtasks `t_1 … t_n` with data dependencies `dp_i` between
//! neighbours. The paper's constraints: every partition class must finish
//! within `k`, the total network cost `Σ w(dp)` of cut dependencies must
//! be minimal, and the largest single-link demand `max w(dp)` minimized —
//! which is exactly the chain bandwidth/bottleneck machinery of `tgp_core`.
//! The resulting components map one-to-one onto the processors of a
//! shared-memory machine (Figure 3's trivial mapping).
//!
//! # Example
//!
//! ```
//! use tgp_realtime::{RealTimeTask, Strategy};
//! use tgp_graph::Weight;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let task = RealTimeTask::new(&[3, 4, 2, 5, 1], &[8, 1, 9, 2], Weight::new(9))?;
//! let part = task.partition(Strategy::MinBandwidth)?;
//! assert!(part.groups.iter().all(|g| g.weight <= Weight::new(9)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use tgp_core::bandwidth::min_bandwidth_cut_lexicographic;
use tgp_core::pipeline::{partition_chain, partition_tree, tree_from_path};
use tgp_core::procmin::proc_min;
use tgp_core::PartitionError;
use tgp_graph::{CutSet, GraphError, PathGraph, Segment, Weight};
use tgp_shmem::machine::Machine;
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec, SimError};
use tgp_shmem::SimReport;

/// Errors from the real-time partitioning workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtError {
    /// The subtask chain itself is malformed.
    Graph(GraphError),
    /// No feasible partition exists (a subtask alone misses the deadline).
    Partition(PartitionError),
    /// The machine has fewer processors than the partition needs.
    TooFewProcessors {
        /// Processors the partition needs.
        needed: usize,
        /// Processors the machine has.
        available: usize,
    },
    /// The pipeline simulation rejected the configuration.
    Sim(SimError),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Graph(e) => write!(f, "task chain is malformed: {e}"),
            RtError::Partition(e) => write!(f, "no deadline-feasible partition: {e}"),
            RtError::TooFewProcessors { needed, available } => write!(
                f,
                "partition needs {needed} processors but the machine has {available}"
            ),
            RtError::Sim(e) => write!(f, "simulation rejected the schedule: {e}"),
        }
    }
}

impl Error for RtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RtError::Graph(e) => Some(e),
            RtError::Partition(e) => Some(e),
            RtError::Sim(e) => Some(e),
            RtError::TooFewProcessors { .. } => None,
        }
    }
}

impl From<GraphError> for RtError {
    fn from(e: GraphError) -> Self {
        RtError::Graph(e)
    }
}

impl From<PartitionError> for RtError {
    fn from(e: PartitionError) -> Self {
        RtError::Partition(e)
    }
}

impl From<SimError> for RtError {
    fn from(e: SimError) -> Self {
        RtError::Sim(e)
    }
}

/// Which of the paper's partitioning objectives to prioritize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Strategy {
    /// Minimize total network cost `Σ w(dp)` over cut dependencies
    /// (§2.3's bandwidth minimization) — the default.
    #[default]
    MinBandwidth,
    /// Minimize the largest single-link demand `max w(dp)` (§2.1's
    /// bottleneck minimization, followed by §2.2's processor
    /// minimization to undo fragmentation).
    MinBottleneck,
    /// Minimize the number of processors that meet the deadline (§2.2's
    /// processor minimization applied directly) — for deployments where
    /// hardware is the scarce resource rather than the interconnect.
    MinProcessors,
    /// The paper's literal §3 requirement — "Σ w(dp) is minimum and
    /// max w(dp) is minimized" — read lexicographically: drive the
    /// bottleneck to its optimum first, then minimize the total among
    /// cuts within that bottleneck.
    Lexicographic,
}

/// A real-time task: a chain of subtasks with a completion deadline per
/// partition class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealTimeTask {
    chain: PathGraph,
    deadline: Weight,
}

impl RealTimeTask {
    /// Creates a task from subtask durations `w(t_i)`, dependency costs
    /// `w(dp_i)` and the deadline `k`.
    ///
    /// # Errors
    ///
    /// [`RtError::Graph`] if the chain dimensions are inconsistent;
    /// [`RtError::Partition`] if some subtask alone exceeds the deadline
    /// (the paper requires `w(t_i) ≤ k`).
    pub fn new(durations: &[u64], dep_costs: &[u64], deadline: Weight) -> Result<Self, RtError> {
        let chain = PathGraph::from_raw(durations, dep_costs)?;
        // Surface the infeasibility at construction, as the paper's
        // constraint list does.
        for (node, w) in chain.nodes() {
            if w > deadline {
                return Err(RtError::Partition(PartitionError::BoundTooSmall {
                    node,
                    weight: w,
                    bound: deadline,
                }));
            }
        }
        Ok(RealTimeTask { chain, deadline })
    }

    /// The underlying subtask chain.
    pub fn chain(&self) -> &PathGraph {
        &self.chain
    }

    /// The deadline `k`.
    pub fn deadline(&self) -> Weight {
        self.deadline
    }

    /// Partitions the task into deadline-feasible groups under the given
    /// strategy.
    ///
    /// # Errors
    ///
    /// [`RtError::Partition`] if no feasible partition exists.
    pub fn partition(&self, strategy: Strategy) -> Result<RtPartition, RtError> {
        let cut = match strategy {
            Strategy::MinBandwidth => partition_chain(&self.chain, self.deadline)?.cut,
            Strategy::MinBottleneck => {
                partition_tree(&tree_from_path(&self.chain), self.deadline)?.cut
            }
            Strategy::MinProcessors => proc_min(&tree_from_path(&self.chain), self.deadline)?.cut,
            Strategy::Lexicographic => min_bandwidth_cut_lexicographic(&self.chain, self.deadline)?,
        };
        let groups = self.chain.segments(&cut)?;
        let bandwidth = self.chain.cut_weight(&cut)?;
        let bottleneck = self.chain.bottleneck(&cut)?;
        Ok(RtPartition {
            processors: groups.len(),
            cut,
            groups,
            bandwidth,
            bottleneck,
            strategy,
        })
    }
}

/// A deadline-feasible partition of a real-time task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtPartition {
    /// The cut dependencies.
    pub cut: CutSet,
    /// The subtask groups `T_1 … T_p`, in chain order.
    pub groups: Vec<Segment>,
    /// Processors needed (one per group — the trivial mapping).
    pub processors: usize,
    /// Total network cost of the cut dependencies.
    pub bandwidth: Weight,
    /// Largest single cut dependency.
    pub bottleneck: Weight,
    /// The strategy that produced this partition.
    pub strategy: Strategy,
}

impl RtPartition {
    /// Renders the partition as a Figure 3-style text diagram:
    /// one processor per line with its subtasks and load.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (p, g) in self.groups.iter().enumerate() {
            let _ = writeln!(out, "P{p}: t{}..t{}  load={}", g.start, g.end, g.weight);
        }
        let _ = writeln!(
            out,
            "cut cost: total={} max={}",
            self.bandwidth, self.bottleneck
        );
        out
    }
}

/// Admission control: verifies the partition fits `machine` and runs a
/// stream of `items` task instances through the resulting pipeline,
/// returning the observed report.
///
/// # Errors
///
/// [`RtError::TooFewProcessors`] if the partition needs more processors
/// than available; [`RtError::Sim`] on simulation-level rejections.
pub fn admit(
    task: &RealTimeTask,
    partition: &RtPartition,
    machine: &Machine,
    items: usize,
) -> Result<SimReport, RtError> {
    if partition.processors > machine.processors() {
        return Err(RtError::TooFewProcessors {
            needed: partition.processors,
            available: machine.processors(),
        });
    }
    let spec = PipelineSpec::from_partition(task.chain(), &partition.cut)?;
    Ok(simulate_pipeline(&spec, machine, items)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgp_graph::EdgeId;

    fn task() -> RealTimeTask {
        RealTimeTask::new(&[3, 4, 2, 5, 1], &[8, 1, 9, 2], Weight::new(9)).unwrap()
    }

    #[test]
    fn construction_checks_deadline() {
        let err = RealTimeTask::new(&[3, 12], &[1], Weight::new(9)).unwrap_err();
        assert!(matches!(err, RtError::Partition(_)));
        let err = RealTimeTask::new(&[], &[], Weight::new(9)).unwrap_err();
        assert!(matches!(err, RtError::Graph(_)));
    }

    #[test]
    fn bandwidth_strategy_minimizes_total() {
        let t = task();
        let p = t.partition(Strategy::MinBandwidth).unwrap();
        // Weights [3,4,2,5,1], K=9: cheapest feasible cut is edge 1
        // (cost 1): groups [3,4]=7 and [2,5,1]=8.
        assert_eq!(p.cut.as_slice(), &[EdgeId::new(1)]);
        assert_eq!(p.bandwidth, Weight::new(1));
        assert_eq!(p.processors, 2);
        assert!(p.groups.iter().all(|g| g.weight <= Weight::new(9)));
    }

    #[test]
    fn bottleneck_strategy_minimizes_max_link() {
        let t = task();
        let p = t.partition(Strategy::MinBottleneck).unwrap();
        assert!(p.groups.iter().all(|g| g.weight <= Weight::new(9)));
        // The bottleneck of the bottleneck-first partition never exceeds
        // that of the bandwidth-first one.
        let pb = t.partition(Strategy::MinBandwidth).unwrap();
        assert!(p.bottleneck <= pb.bottleneck);
    }

    #[test]
    fn lexicographic_strategy_dominates_both_objectives() {
        let t = task();
        let lex = t.partition(Strategy::Lexicographic).unwrap();
        let bn = t.partition(Strategy::MinBottleneck).unwrap();
        let bw = t.partition(Strategy::MinBandwidth).unwrap();
        // Bottleneck-optimal, and no worse on total than any other cut
        // with that bottleneck.
        assert!(lex.bottleneck <= bn.bottleneck);
        assert!(lex.bandwidth >= bw.bandwidth); // total may pay for the cap
        assert!(lex.groups.iter().all(|g| g.weight <= t.deadline()));
    }

    #[test]
    fn min_processors_strategy_is_minimal() {
        let t = task();
        let p = t.partition(Strategy::MinProcessors).unwrap();
        assert!(p.groups.iter().all(|g| g.weight <= Weight::new(9)));
        // No other strategy can use fewer processors.
        for s in [Strategy::MinBandwidth, Strategy::MinBottleneck] {
            assert!(p.processors <= t.partition(s).unwrap().processors);
        }
    }

    #[test]
    fn render_mentions_every_processor() {
        let p = task().partition(Strategy::default()).unwrap();
        let s = p.render();
        assert!(s.contains("P0:"));
        assert!(s.contains("P1:"));
        assert!(s.contains("cut cost"));
    }

    #[test]
    fn admission_checks_processor_count() {
        let t = task();
        let p = t.partition(Strategy::MinBandwidth).unwrap();
        let small = Machine::bus(1).unwrap();
        let err = admit(&t, &p, &small, 10).unwrap_err();
        assert!(matches!(err, RtError::TooFewProcessors { .. }));
        assert!(err.to_string().contains('1'));
        let big = Machine::bus(4).unwrap();
        let report = admit(&t, &p, &big, 10).unwrap();
        assert_eq!(report.items, 10);
        assert!(report.makespan > 0);
    }

    #[test]
    fn trivial_task_fits_one_processor() {
        let t = RealTimeTask::new(&[2, 2], &[5], Weight::new(10)).unwrap();
        let p = t.partition(Strategy::MinBandwidth).unwrap();
        assert_eq!(p.processors, 1);
        assert!(p.cut.is_empty());
        assert_eq!(p.bandwidth, Weight::ZERO);
    }

    #[test]
    fn error_sources_chain() {
        let e: RtError = PartitionError::BoundTooSmall {
            node: tgp_graph::NodeId::new(0),
            weight: Weight::new(5),
            bound: Weight::new(1),
        }
        .into();
        assert!(e.source().is_some());
        let e2 = RtError::TooFewProcessors {
            needed: 4,
            available: 2,
        };
        assert!(e2.source().is_none());
    }
}
