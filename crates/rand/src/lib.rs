//! Vendored, dependency-free stand-in for the tiny slice of the `rand`
//! crate API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a seeded xorshift generator under the same paths the real crate would
//! provide: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. Everything is deterministic
//! per seed, which is all the generators, tests and benchmarks require —
//! none of this is cryptographic.
//!
//! Only the API surface actually exercised by the workspace is
//! implemented; growing it is deliberate, reviewed work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] exactly like the real crate.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits, the standard float-from-bits recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types a uniform value can be sampled for. The single blanket
/// [`SampleRange`] impl per range shape (mirroring the real crate's
/// structure) is what lets `gen_range(0..n)` infer its integer type from
/// the surrounding expression.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`); `low <= high` is already
    /// checked by the caller.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // i128 covers the full span of every 64-bit-or-smaller
                // integer type, signed or unsigned.
                let span = (high as i128 - low as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let off = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable xorshift64* generator.
    ///
    /// The name mirrors `rand::rngs::SmallRng`; the stream differs from
    /// the real crate's, which is fine because every consumer in this
    /// workspace only relies on determinism per seed, not on a specific
    /// stream.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 spreads low-entropy seeds (0, 1, 2, …) across the
            // whole state space and never yields the forbidden zero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u64..9);
            assert!((5..9).contains(&x));
            let y = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&y));
            let z = rng.gen_range(-4i64..5);
            assert!((-4..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(0usize..usize::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5u64..5);
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let _ = RngCore::next_u64(&mut rng);
    }
}
