//! Property-based tests on the optimality and feasibility contracts of
//! the paper's algorithms, checked against brute force on small
//! instances and against each other everywhere.

use proptest::prelude::*;

use tgp_core::bandwidth::{
    analyze_bandwidth, min_bandwidth_cut, nonredundant_edges, prime_subpaths,
};
use tgp_core::bottleneck::min_bottleneck_cut;
use tgp_core::pipeline::{partition_chain, partition_tree};
use tgp_core::procmin::proc_min;
use tgp_core::PartitionError;
use tgp_graph::{CutSet, EdgeId, NodeId, PathGraph, Tree, TreeEdge, Weight};

fn arb_small_chain() -> impl Strategy<Value = (PathGraph, Weight)> {
    (1usize..13).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..10, n),
            prop::collection::vec(0u64..12, n - 1),
            9u64..40,
        )
            .prop_map(|(nodes, edges, k)| {
                (PathGraph::from_raw(&nodes, &edges).unwrap(), Weight::new(k))
            })
    })
}

fn arb_small_tree() -> impl Strategy<Value = (Tree, Weight)> {
    (1usize..11).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..10, n),
            prop::collection::vec((0usize..usize::MAX, 0u64..12), n - 1),
            9u64..40,
        )
            .prop_map(|(nodes, raw, k)| {
                let edges: Vec<TreeEdge> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(p, w))| {
                        TreeEdge::new(NodeId::new(p % (i + 1)), NodeId::new(i + 1), Weight::new(w))
                    })
                    .collect();
                (
                    Tree::from_edges(nodes.into_iter().map(Weight::new).collect(), edges).unwrap(),
                    Weight::new(k),
                )
            })
    })
}

fn all_cuts(m: usize) -> impl Iterator<Item = CutSet> {
    (0u32..(1 << m)).map(move |mask| {
        (0..m)
            .filter(|&j| mask & (1 << j) != 0)
            .map(EdgeId::new)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// TEMP_S returns a cut that is (a) feasible and (b) of weight equal
    /// to the brute-force optimum.
    #[test]
    fn bandwidth_cut_is_optimal((path, k) in arb_small_chain()) {
        let cut = min_bandwidth_cut(&path, k).unwrap();
        prop_assert!(path.is_feasible_cut(&cut, k).unwrap());
        let ours = path.cut_weight(&cut).unwrap().get();
        let best = all_cuts(path.edge_count())
            .filter(|c| path.is_feasible_cut(c, k).unwrap())
            .map(|c| path.cut_weight(&c).unwrap().get())
            .min()
            .unwrap();
        prop_assert_eq!(ours, best);
    }

    /// The bottleneck result is the brute-force minimax over feasible
    /// cuts.
    #[test]
    fn bottleneck_value_is_optimal((tree, k) in arb_small_tree()) {
        let r = min_bottleneck_cut(&tree, k).unwrap();
        let best = all_cuts(tree.edge_count())
            .filter(|c| tree.components(c).unwrap().is_feasible(k))
            .map(|c| tree.bottleneck(&c).unwrap().get())
            .min()
            .unwrap();
        prop_assert_eq!(r.bottleneck.get(), best);
    }

    /// proc_min uses the brute-force minimum number of components.
    #[test]
    fn procmin_component_count_is_optimal((tree, k) in arb_small_tree()) {
        let r = proc_min(&tree, k).unwrap();
        let best = all_cuts(tree.edge_count())
            .filter(|c| tree.components(c).unwrap().is_feasible(k))
            .map(|c| tree.components(&c).unwrap().count())
            .min()
            .unwrap();
        prop_assert_eq!(r.component_count, best);
    }

    /// The composed tree pipeline is feasible, bottleneck-optimal, and
    /// uses the fewest processors among bottleneck-cut subsets.
    #[test]
    fn tree_pipeline_contract((tree, k) in arb_small_tree()) {
        let part = partition_tree(&tree, k).unwrap();
        prop_assert!(part.components.is_feasible(k));
        let bn = min_bottleneck_cut(&tree, k).unwrap();
        prop_assert!(part.bottleneck <= bn.bottleneck);
        prop_assert!(part.cut.is_subset_of(&bn.cut));
        prop_assert_eq!(part.processors, part.cut.len() + 1);
    }

    /// Prime subpaths: every one is critical and minimal; feasibility of
    /// a cut is equivalent to hitting all of them.
    #[test]
    fn prime_subpath_characterization((path, k) in arb_small_chain()) {
        let primes = prime_subpaths(&path, k).unwrap();
        for pr in &primes {
            prop_assert!(path.span_weight(pr.first_node, pr.last_node) > k);
            if pr.last_node - pr.first_node >= 1 {
                prop_assert!(path.span_weight(pr.first_node + 1, pr.last_node) <= k);
                prop_assert!(path.span_weight(pr.first_node, pr.last_node - 1) <= k);
            }
        }
        for cut in all_cuts(path.edge_count()) {
            let feasible = path.is_feasible_cut(&cut, k).unwrap();
            let hits_all = primes
                .iter()
                .all(|pr| pr.edges().any(|e| cut.contains(e)));
            prop_assert_eq!(feasible, hits_all);
        }
    }

    /// The non-redundant reduction never loses the optimum: there is an
    /// optimal cut using only non-redundant edges.
    #[test]
    fn nonredundant_edges_preserve_the_optimum((path, k) in arb_small_chain()) {
        let primes = prime_subpaths(&path, k).unwrap();
        let nr = nonredundant_edges(&path, &primes);
        let allowed: CutSet = nr.iter().map(|e| e.edge).collect();
        let best_all = all_cuts(path.edge_count())
            .filter(|c| path.is_feasible_cut(c, k).unwrap())
            .map(|c| path.cut_weight(&c).unwrap().get())
            .min()
            .unwrap();
        let best_nr = all_cuts(path.edge_count())
            .filter(|c| c.is_subset_of(&allowed))
            .filter(|c| path.is_feasible_cut(c, k).unwrap())
            .map(|c| path.cut_weight(&c).unwrap().get())
            .min();
        prop_assert_eq!(best_nr, Some(best_all));
    }

    /// The chain partition's reported fields are internally consistent.
    #[test]
    fn chain_partition_report_is_consistent((path, k) in arb_small_chain()) {
        let part = partition_chain(&path, k).unwrap();
        prop_assert_eq!(part.processors, part.segments.len());
        prop_assert_eq!(part.cut.len() + 1, part.segments.len());
        prop_assert_eq!(part.bandwidth, path.cut_weight(&part.cut).unwrap());
        prop_assert_eq!(part.bottleneck, path.bottleneck(&part.cut).unwrap());
        let (cut2, stats) = analyze_bandwidth(&path, k).unwrap();
        prop_assert_eq!(path.cut_weight(&cut2).unwrap(), part.bandwidth);
        prop_assert_eq!(stats.cut_weight, part.bandwidth.get());
    }

    /// Bound errors appear iff some vertex exceeds the bound — uniformly
    /// across all entry points.
    #[test]
    fn bound_errors_are_uniform((path, _k) in arb_small_chain(), k_small in 0u64..9) {
        let k = Weight::new(k_small);
        let should_fail = path.max_node_weight() > k;
        let failed = matches!(
            min_bandwidth_cut(&path, k),
            Err(PartitionError::BoundTooSmall { .. })
        );
        prop_assert_eq!(failed, should_fail);
    }
}
