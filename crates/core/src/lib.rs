//! Partitioning algorithms from *"Improved Algorithms for Partitioning
//! Tree and Linear Task Graphs on Shared Memory Architecture"*
//! (Sibabrata Ray & Hong Jiang, ICDCS 1994).
//!
//! Given a task graph whose vertices carry processing requirements and
//! whose edges carry communication volumes, and a per-processor load bound
//! `K`, the paper partitions the graph into connected components (each
//! assigned to one processor of a shared-memory machine — the mapping is
//! trivial because interconnect latency is uniform) optimizing three
//! objectives:
//!
//! * [`bottleneck`] — minimize the heaviest cut edge (trees, Alg. 2.1),
//! * [`procmin`] — minimize the number of processors (trees, Alg. 2.2),
//! * [`bandwidth`] — minimize the total cut weight (chains, the headline
//!   `O(n + p log q)` TEMP_S algorithm of §2.3.1),
//!
//! plus [`knapsack`], the executable form of Theorem 1 (bandwidth
//! minimization on trees is NP-complete, by reduction to 0-1 knapsack),
//! [`pipeline`], the composed workflow of Section 3, [`approx`], the
//! linear/tree super-graph route to general process graphs suggested in
//! the paper's conclusion, and [`tree_bandwidth`], the pseudo-polynomial
//! exact solver that matches Theorem 1's knapsack complexity on trees.
//!
//! # Example
//!
//! ```
//! use tgp_core::pipeline::partition_chain;
//! use tgp_graph::{PathGraph, Weight};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A pipeline of five stages, deadline-bound to 8 units per processor.
//! let chain = PathGraph::from_raw(&[4, 4, 4, 4, 4], &[9, 1, 9, 1])?;
//! let part = partition_chain(&chain, Weight::new(8))?;
//! assert_eq!(part.processors, 3);
//! assert_eq!(part.bandwidth, Weight::new(2)); // cheapest feasible cut
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod bandwidth;
pub mod bottleneck;
pub mod budget;
mod error;
pub mod knapsack;
pub mod pipeline;
pub mod procmin;
pub mod tree_bandwidth;

pub use error::PartitionError;
