//! The combined partitioning workflow of Section 3.
//!
//! For tree task graphs the paper composes its algorithms: first minimize
//! the bottleneck (Algorithm 2.1), then lump the resulting components into
//! super-nodes and minimize the number of processors over the contracted
//! tree (Algorithm 2.2). The final cut is a subset of the bottleneck cut,
//! so the bottleneck guarantee is preserved while fragmentation is undone.
//!
//! For linear task graphs the bandwidth-minimization algorithm applies
//! directly; [`partition_chain`] wraps it with the same report type.

use tgp_graph::{
    contract, ChainView, Components, CutSet, NodeId, PathGraph, Segment, Tree, TreeEdge, Weight,
};

use crate::bandwidth::{analyze_bandwidth_budgeted, min_bandwidth_cut, MergeSearch};
use crate::bottleneck::min_bottleneck_cut;
use crate::budget::Budget;
use crate::error::PartitionError;
use crate::procmin::proc_min;

/// A complete partition of a tree task graph with all three quality
/// measures the paper optimizes.
#[derive(Debug, Clone)]
pub struct TreePartition {
    /// The final edge cut.
    pub cut: CutSet,
    /// The components of `T − S` (each maps to one processor).
    pub components: Components,
    /// `max_{e∈S} δ(e)` of the final cut.
    pub bottleneck: Weight,
    /// `Σ_{e∈S} δ(e)` of the final cut.
    pub bandwidth: Weight,
    /// Number of processors used (= number of components).
    pub processors: usize,
}

/// Partitions a tree task graph for a shared-memory machine: bottleneck
/// minimization (Algorithm 2.1), super-node contraction, then processor
/// minimization (Algorithm 2.2) on the contracted tree.
///
/// The returned cut's bottleneck equals the optimum of Algorithm 2.1 or
/// better (the processor phase can only *remove* cut edges), every
/// component weighs at most `bound`, and the processor count is minimal
/// within the bottleneck-optimal cut family.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::pipeline::partition_tree;
/// use tgp_graph::{Tree, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Tree::from_raw(&[4, 4, 4, 4], &[(0, 1, 5), (1, 2, 1), (2, 3, 5)])?;
/// let part = partition_tree(&t, Weight::new(8))?;
/// assert!(part.components.is_feasible(Weight::new(8)));
/// assert_eq!(part.processors, part.components.count());
/// # Ok(())
/// # }
/// ```
pub fn partition_tree(tree: &Tree, bound: Weight) -> Result<TreePartition, PartitionError> {
    let bn = min_bottleneck_cut(tree, bound)?;
    // Lump components into super-nodes; the contracted tree's edges are
    // exactly the bottleneck cut edges.
    let contraction = contract(tree, &bn.cut)?;
    let pm = proc_min(contraction.tree(), bound)?;
    let cut = contraction.lift_cut(&pm.cut);
    let components = tree.components(&cut)?;
    debug_assert!(components.is_feasible(bound));
    debug_assert!(cut.is_subset_of(&bn.cut));
    let bottleneck = tree.bottleneck(&cut)?;
    let bandwidth = tree.cut_weight(&cut)?;
    debug_assert!(bottleneck <= bn.bottleneck);
    Ok(TreePartition {
        processors: components.count(),
        cut,
        components,
        bottleneck,
        bandwidth,
    })
}

/// A complete partition of a linear task graph.
#[derive(Debug, Clone)]
pub struct ChainPartition {
    /// The final edge cut (minimum total weight among feasible cuts).
    pub cut: CutSet,
    /// The contiguous segments of `P − S`, left to right.
    pub segments: Vec<Segment>,
    /// `Σ β(S)` — the minimized bandwidth demand.
    pub bandwidth: Weight,
    /// `max β(S)` of the final cut.
    pub bottleneck: Weight,
    /// Number of processors used (= number of segments).
    pub processors: usize,
}

/// Partitions a linear task graph by bandwidth minimization (§2.3, the
/// `O(n + p log q)` algorithm).
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::pipeline::partition_chain;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PathGraph::from_raw(&[4, 4, 4, 4, 4], &[9, 1, 9, 1])?;
/// let part = partition_chain(&p, Weight::new(8))?;
/// assert_eq!(part.bandwidth, Weight::new(2));
/// assert_eq!(part.processors, 3);
/// # Ok(())
/// # }
/// ```
pub fn partition_chain<C: ChainView>(
    path: &C,
    bound: Weight,
) -> Result<ChainPartition, PartitionError> {
    let cut = min_bandwidth_cut(path, bound)?;
    finish_chain(path, cut)
}

/// Cost-sliced [`partition_chain`]: the TEMP_S solve runs under the
/// [`Budget`] (see [`analyze_bandwidth_budgeted`]),
/// so a deadline or cancel raised mid-solve surfaces as
/// [`PartitionError::Interrupted`] instead of running to completion.
///
/// # Errors
///
/// As [`partition_chain`], plus [`PartitionError::Interrupted`] when
/// the budget runs out.
pub fn partition_chain_budgeted<C: ChainView>(
    path: &C,
    bound: Weight,
    budget: &Budget,
) -> Result<ChainPartition, PartitionError> {
    let (cut, _stats) = analyze_bandwidth_budgeted(path, bound, MergeSearch::Binary, budget)?;
    finish_chain(path, cut)
}

fn finish_chain<C: ChainView>(path: &C, cut: CutSet) -> Result<ChainPartition, PartitionError> {
    let segments = path.segments(&cut)?;
    let bandwidth = path.cut_weight(&cut)?;
    let bottleneck = path.bottleneck(&cut)?;
    Ok(ChainPartition {
        processors: segments.len(),
        cut,
        segments,
        bandwidth,
        bottleneck,
    })
}

/// Views a linear task graph as a [`Tree`] (a path is a tree), enabling
/// the tree algorithms — bottleneck and processor minimization — to run on
/// chains. Edge ids are preserved (`e_i` connects `v_i` and `v_{i+1}`).
pub fn tree_from_path(path: &PathGraph) -> Tree {
    let edges: Vec<TreeEdge> = path
        .edges()
        .map(|(e, w)| TreeEdge::new(NodeId::new(e.index()), NodeId::new(e.index() + 1), w))
        .collect();
    Tree::from_edges(path.node_weights().to_vec(), edges)
        .expect("a path graph is always a valid tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgp_graph::EdgeId;

    #[test]
    fn tree_pipeline_end_to_end() {
        // Chain-as-tree [4,4,4,4] with edge weights 5,1,5 and K = 8:
        // bottleneck phase cuts weight-1 and weight-5 edges (prefix until
        // feasible); procmin keeps only what is needed.
        let t = Tree::from_raw(&[4, 4, 4, 4], &[(0, 1, 5), (1, 2, 1), (2, 3, 5)]).unwrap();
        let part = partition_tree(&t, Weight::new(8)).unwrap();
        assert!(part.components.is_feasible(Weight::new(8)));
        assert_eq!(part.processors, 2);
        assert_eq!(part.cut.len(), 1);
        assert!(part.cut.contains(EdgeId::new(1)));
        assert_eq!(part.bottleneck, Weight::new(1));
        assert_eq!(part.bandwidth, Weight::new(1));
    }

    #[test]
    fn tree_pipeline_trivial_when_fits() {
        let t = Tree::from_raw(&[1, 1], &[(0, 1, 7)]).unwrap();
        let part = partition_tree(&t, Weight::new(2)).unwrap();
        assert!(part.cut.is_empty());
        assert_eq!(part.processors, 1);
        assert_eq!(part.bottleneck, Weight::ZERO);
    }

    #[test]
    fn tree_pipeline_errors_on_infeasible_bound() {
        let t = Tree::from_raw(&[9, 1], &[(0, 1, 1)]).unwrap();
        assert!(matches!(
            partition_tree(&t, Weight::new(8)),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn pipeline_never_uses_more_processors_than_bottleneck_cut() {
        use crate::bottleneck::min_bottleneck_cut;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.gen_range(2..100);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 10 },
                WeightDist::Uniform { lo: 1, hi: 100 },
                &mut rng,
            );
            let k = rng.gen_range(10..=80);
            let part = partition_tree(&t, Weight::new(k)).unwrap();
            let bn = min_bottleneck_cut(&t, Weight::new(k)).unwrap();
            assert!(part.cut.len() <= bn.cut.len());
            assert!(part.bottleneck <= bn.bottleneck);
            assert!(part.components.is_feasible(Weight::new(k)));
            assert_eq!(part.processors, part.cut.len() + 1);
        }
    }

    #[test]
    fn chain_partition_reports_consistent_fields() {
        let p = PathGraph::from_raw(&[4, 4, 4, 4, 4], &[9, 1, 9, 1]).unwrap();
        let part = partition_chain(&p, Weight::new(8)).unwrap();
        assert_eq!(part.processors, part.segments.len());
        assert_eq!(part.cut.len() + 1, part.segments.len());
        assert_eq!(part.bandwidth, Weight::new(2));
        assert_eq!(part.bottleneck, Weight::new(1));
        assert!(part.segments.iter().all(|s| s.weight <= Weight::new(8)));
    }

    #[test]
    fn tree_from_path_preserves_structure() {
        let p = PathGraph::from_raw(&[2, 3, 5], &[7, 8]).unwrap();
        let t = tree_from_path(&p);
        assert_eq!(t.len(), 3);
        assert_eq!(t.edge_weight(EdgeId::new(0)), Weight::new(7));
        assert_eq!(t.edge_weight(EdgeId::new(1)), Weight::new(8));
        assert_eq!(t.total_weight(), p.total_weight());
    }

    #[test]
    fn chain_as_tree_and_chain_direct_agree_on_feasibility() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_chain, WeightDist};
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..30 {
            let n = rng.gen_range(1..80);
            let p = random_chain(
                n,
                WeightDist::Uniform { lo: 1, hi: 10 },
                WeightDist::Uniform { lo: 1, hi: 40 },
                &mut rng,
            );
            let k = rng.gen_range(10..=60);
            let chain = partition_chain(&p, Weight::new(k)).unwrap();
            let tree = partition_tree(&tree_from_path(&p), Weight::new(k)).unwrap();
            assert!(tree.components.is_feasible(Weight::new(k)));
            // The chain (bandwidth-optimal) cut never exceeds the tree
            // pipeline's bandwidth.
            assert!(chain.bandwidth <= tree.bandwidth);
        }
    }
}
