//! Non-redundant edge reduction.
//!
//! §2.3: "if two edges belong to exactly the same subpaths under
//! consideration, then the edge with higher weight will never belong to any
//! S_r". Grouping edges by their prime-subpath membership interval and
//! keeping only the cheapest representative leaves at most `2p − 1` edges.

use tgp_graph::{ChainView, EdgeId, Weight};

use super::prime::PrimeSubpath;

/// An edge that survives the redundancy reduction, annotated with the
/// contiguous range of prime subpaths it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NrEdge {
    /// The edge id in the original path.
    pub edge: EdgeId,
    /// The edge weight `β`.
    pub weight: Weight,
    /// Index of the first prime subpath containing the edge (the paper's
    /// `c_j`), 0-based.
    pub first_prime: usize,
    /// Index of the last prime subpath containing the edge (the paper's
    /// `d_j`), 0-based inclusive.
    pub last_prime: usize,
}

impl NrEdge {
    /// The paper's `γ_j = c_j − 1` expressed as the number of prime
    /// subpaths wholly to the left of this edge. `0` means no subpath
    /// precedes it (the paper's `S_0 = ∅` base case).
    pub fn gamma(&self) -> usize {
        self.first_prime
    }
}

/// Computes the non-redundant edges of `path` with respect to the given
/// prime subpaths, in O(n) time.
///
/// Edges belonging to no prime subpath are dropped (they can never be
/// needed in an optimal cut). Among edges with identical membership the
/// cheapest one is kept; ties keep the leftmost for determinism.
///
/// The result is ordered by edge index, and both `first_prime` and
/// `last_prime` are strictly increasing across the result (each group has
/// a distinct membership interval).
pub fn nonredundant_edges<C: ChainView>(path: &C, primes: &[PrimeSubpath]) -> Vec<NrEdge> {
    if primes.is_empty() {
        return Vec::new();
    }
    let p = primes.len();
    let first_edge = primes[0].first_edge();
    let last_edge = primes[p - 1].last_edge();
    let mut out: Vec<NrEdge> = Vec::new();
    // c = first prime with last_edge >= j; d = last prime with
    // first_edge <= j. Both are monotone in j.
    let mut c = 0usize;
    let mut d = 0usize;
    for j in first_edge..=last_edge {
        while c < p && primes[c].last_edge() < j {
            c += 1;
        }
        while d + 1 < p && primes[d + 1].first_edge() <= j {
            d += 1;
        }
        if c > d {
            continue; // edge in a gap between consecutive primes
        }
        let w = path.edge_weight(EdgeId::new(j));
        match out.last_mut() {
            Some(prev) if prev.first_prime == c && prev.last_prime == d => {
                if w < prev.weight {
                    prev.weight = w;
                    prev.edge = EdgeId::new(j);
                }
            }
            _ => out.push(NrEdge {
                edge: EdgeId::new(j),
                weight: w,
                first_prime: c,
                last_prime: d,
            }),
        }
    }
    debug_assert!(out.len() < 2 * p, "at most 2p - 1 non-redundant edges");
    debug_assert!(out
        .windows(2)
        .all(|w| w[0].first_prime <= w[1].first_prime && w[0].last_prime <= w[1].last_prime));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::prime_subpaths;
    use tgp_graph::PathGraph;

    fn path(nodes: &[u64], edges: &[u64]) -> PathGraph {
        PathGraph::from_raw(nodes, edges).unwrap()
    }

    #[test]
    fn empty_primes_give_no_edges() {
        let p = path(&[1, 1, 1], &[5, 5]);
        assert!(nonredundant_edges(&p, &[]).is_empty());
    }

    #[test]
    fn identical_membership_keeps_cheapest() {
        // One prime subpath covering all of [4,4,4] with K = 11:
        // total 12 > 11; inner windows fit. Edges 0 and 1 both belong to
        // exactly that subpath; the cheaper one must survive.
        let p = path(&[4, 4, 4], &[7, 3]);
        let primes = prime_subpaths(&p, Weight::new(11)).unwrap();
        assert_eq!(primes.len(), 1);
        let nr = nonredundant_edges(&p, &primes);
        assert_eq!(nr.len(), 1);
        assert_eq!(nr[0].edge, EdgeId::new(1));
        assert_eq!(nr[0].weight, Weight::new(3));
        assert_eq!((nr[0].first_prime, nr[0].last_prime), (0, 0));
        assert_eq!(nr[0].gamma(), 0);
    }

    #[test]
    fn ties_keep_leftmost() {
        let p = path(&[4, 4, 4], &[3, 3]);
        let primes = prime_subpaths(&p, Weight::new(11)).unwrap();
        let nr = nonredundant_edges(&p, &primes);
        assert_eq!(nr.len(), 1);
        assert_eq!(nr[0].edge, EdgeId::new(0));
    }

    #[test]
    fn membership_intervals_are_correct() {
        // [4, 4, 4, 4] with K = 7: primes are the three 2-node windows
        // [0,1], [1,2], [2,3]; edge j belongs only to prime j.
        let p = path(&[4, 4, 4, 4], &[9, 8, 7]);
        let primes = prime_subpaths(&p, Weight::new(7)).unwrap();
        let nr = nonredundant_edges(&p, &primes);
        assert_eq!(nr.len(), 3);
        for (j, e) in nr.iter().enumerate() {
            assert_eq!(e.edge, EdgeId::new(j));
            assert_eq!((e.first_prime, e.last_prime), (j, j));
        }
    }

    #[test]
    fn overlapping_primes_share_edges() {
        // [10, 1, 1, 10] with K = 11: primes [0..=2] (edges 0,1) and
        // [1..=3] (edges 1,2). Edge 1 belongs to both.
        let p = path(&[10, 1, 1, 10], &[5, 6, 7]);
        let primes = prime_subpaths(&p, Weight::new(11)).unwrap();
        let nr = nonredundant_edges(&p, &primes);
        assert_eq!(nr.len(), 3);
        assert_eq!((nr[0].first_prime, nr[0].last_prime), (0, 0));
        assert_eq!((nr[1].first_prime, nr[1].last_prime), (0, 1));
        assert_eq!((nr[2].first_prime, nr[2].last_prime), (1, 1));
        assert_eq!(nr[1].gamma(), 0);
        assert_eq!(nr[2].gamma(), 1);
    }

    #[test]
    fn gap_edges_are_dropped() {
        // [9, 1, 1, 1, 9] with K = 9: the minimal critical windows are
        // [0..=1] (weight 10, edge 0) and [3..=4] (weight 10, edge 3);
        // every wider critical window is dominated by one of them. Edges 1
        // and 2 lie in the gap between the two primes and are dropped.
        let p = path(&[9, 1, 1, 1, 9], &[1, 2, 3, 4]);
        let primes = prime_subpaths(&p, Weight::new(9)).unwrap();
        assert_eq!(primes.len(), 2);
        assert_eq!((primes[0].first_node, primes[0].last_node), (0, 1));
        assert_eq!((primes[1].first_node, primes[1].last_node), (3, 4));
        let nr = nonredundant_edges(&p, &primes);
        assert_eq!(nr.len(), 2);
        assert_eq!(nr[0].edge, EdgeId::new(0));
        assert_eq!(nr[1].edge, EdgeId::new(3));
    }

    #[test]
    fn count_never_exceeds_2p_minus_1() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(2..60);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..20)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(1..100)).collect();
            let p = path(&nodes, &edges);
            let k = rng.gen_range(20..60);
            let primes = prime_subpaths(&p, Weight::new(k)).unwrap();
            let nr = nonredundant_edges(&p, &primes);
            if primes.is_empty() {
                assert!(nr.is_empty());
            } else {
                assert!(nr.len() < 2 * primes.len());
            }
        }
    }
}
