//! Prime (minimal critical) subpaths of a linear task graph.
//!
//! Section 2.3: a *critical subpath* is a subpath of vertex weight greater
//! than the load bound `K`; a critical subpath containing no other critical
//! subpath is *prime*. An edge cut keeps every segment within `K` **iff**
//! it contains at least one edge from every prime subpath, which turns
//! bandwidth minimization into a structured weighted hitting-set problem.

use tgp_graph::{ChainView, EdgeId, NodeId, Weight};

use crate::error::{check_bound_nodes, PartitionError};

/// A prime (minimal critical) subpath `P_i` of a path graph.
///
/// The subpath spans nodes `first_node..=last_node`; its edge set is
/// `E(P_i) = {e_{first_node}, …, e_{last_node - 1}}` (the paper's
/// `{e_{a_i}, …, e_{b_i}}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrimeSubpath {
    /// Index of the first node of the subpath.
    pub first_node: usize,
    /// Index of the last node of the subpath (inclusive).
    pub last_node: usize,
}

impl PrimeSubpath {
    /// The paper's `a_i`: index of the first edge of the subpath.
    pub fn first_edge(&self) -> usize {
        self.first_node
    }

    /// The paper's `b_i`: index of the last edge of the subpath.
    pub fn last_edge(&self) -> usize {
        self.last_node - 1
    }

    /// Number of edges in the subpath.
    pub fn edge_len(&self) -> usize {
        self.last_node - self.first_node
    }

    /// Iterates over the edge ids of the subpath.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (self.first_node..self.last_node).map(EdgeId::new)
    }
}

/// Computes all prime subpaths of `path` under load bound `bound`, in
/// left-to-right order, in O(n) time (the paper's "all p prime subpaths may
/// be computed in linear time").
///
/// The result satisfies the paper's ordering invariant: both the left ends
/// `a_i` and the right ends `b_i` are strictly increasing.
///
/// Returns an empty vector when the whole path fits within `bound` (so the
/// empty cut is optimal).
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`
/// (in which case no cut is feasible).
///
/// # Examples
///
/// ```
/// use tgp_core::bandwidth::prime_subpaths;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PathGraph::from_raw(&[4, 4, 4], &[1, 1])?;
/// let primes = prime_subpaths(&p, Weight::new(7))?;
/// // Any two adjacent nodes weigh 8 > 7, so both 2-node windows are prime.
/// assert_eq!(primes.len(), 2);
/// assert_eq!(primes[0].first_node, 0);
/// assert_eq!(primes[0].last_node, 1);
/// # Ok(())
/// # }
/// ```
pub fn prime_subpaths<C: ChainView>(
    path: &C,
    bound: Weight,
) -> Result<Vec<PrimeSubpath>, PartitionError> {
    check_bound_nodes(
        (0..path.len()).map(|i| path.node_weight(NodeId::new(i))),
        bound,
    )?;
    let n = path.len();
    // For each left end s, t(s) = the smallest t with span(s..=t) > bound,
    // if any. t(s) is non-decreasing in s, so a two-pointer sweep suffices.
    // The window [s, t(s)] is prime iff it strictly contains no other
    // critical window, i.e. iff t(s + 1) > t(s).
    let mut primes = Vec::new();
    let mut t = 0usize;
    let mut prev_t: Option<usize> = None;
    for s in 0..n {
        if t < s {
            t = s;
        }
        while t < n && path.span_weight(s, t) <= bound {
            t += 1;
        }
        if t == n {
            break; // no critical window starts at s or later
        }
        // Window [s, t] is critical and minimal for this s. It dominates
        // the previous candidate iff the previous candidate had the same
        // right end; keep only the innermost (largest s) per right end.
        if prev_t == Some(t) {
            let last = primes.last_mut().expect("prev_t implies a candidate");
            *last = PrimeSubpath {
                first_node: s,
                last_node: t,
            };
        } else {
            primes.push(PrimeSubpath {
                first_node: s,
                last_node: t,
            });
        }
        prev_t = Some(t);
    }
    debug_assert!(primes
        .windows(2)
        .all(|w| { w[0].first_node < w[1].first_node && w[0].last_node < w[1].last_node }));
    Ok(primes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgp_graph::PathGraph;

    fn path(nodes: &[u64]) -> PathGraph {
        let edges = vec![1u64; nodes.len() - 1];
        PathGraph::from_raw(nodes, &edges).unwrap()
    }

    /// Brute-force prime subpaths for cross-checking: all critical windows
    /// that strictly contain no other critical window.
    fn primes_brute(p: &PathGraph, bound: Weight) -> Vec<PrimeSubpath> {
        let n = p.len();
        let mut critical = Vec::new();
        for s in 0..n {
            for t in s..n {
                if p.span_weight(s, t) > bound {
                    critical.push((s, t));
                }
            }
        }
        let mut primes = Vec::new();
        for &(s, t) in &critical {
            let dominated = critical
                .iter()
                .any(|&(s2, t2)| (s2, t2) != (s, t) && s2 >= s && t2 <= t);
            if !dominated {
                primes.push(PrimeSubpath {
                    first_node: s,
                    last_node: t,
                });
            }
        }
        primes.sort_by_key(|p| p.first_node);
        primes
    }

    #[test]
    fn no_primes_when_total_fits() {
        let p = path(&[1, 2, 3]);
        assert!(prime_subpaths(&p, Weight::new(6)).unwrap().is_empty());
        assert!(prime_subpaths(&p, Weight::new(100)).unwrap().is_empty());
    }

    #[test]
    fn bound_below_vertex_weight_errors() {
        let p = path(&[1, 9, 3]);
        assert!(matches!(
            prime_subpaths(&p, Weight::new(8)),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn uniform_weights_give_sliding_windows() {
        let p = path(&[4, 4, 4, 4]);
        let primes = prime_subpaths(&p, Weight::new(7)).unwrap();
        assert_eq!(primes.len(), 3);
        for (i, pr) in primes.iter().enumerate() {
            assert_eq!(pr.first_node, i);
            assert_eq!(pr.last_node, i + 1);
            assert_eq!(pr.first_edge(), i);
            assert_eq!(pr.last_edge(), i);
            assert_eq!(pr.edge_len(), 1);
        }
    }

    #[test]
    fn dominated_windows_are_dropped() {
        // [10, 1, 1, 10] with K = 11: window (0..=1)=11 fits; (0..=2)=12
        // critical but contains (1..=3)? span(1,3)=12 critical, and
        // span(2,3)=11 fits, span(1,2)=2 fits. Primes: [0..=2] and [1..=3].
        let p = path(&[10, 1, 1, 10]);
        let primes = prime_subpaths(&p, Weight::new(11)).unwrap();
        assert_eq!(
            primes,
            vec![
                PrimeSubpath {
                    first_node: 0,
                    last_node: 2
                },
                PrimeSubpath {
                    first_node: 1,
                    last_node: 3
                },
            ]
        );
    }

    #[test]
    fn matches_brute_force_on_varied_inputs() {
        let cases: Vec<(Vec<u64>, u64)> = vec![
            (vec![5, 1, 4, 2, 8, 1, 1, 9], 9),
            (vec![5, 1, 4, 2, 8, 1, 1, 9], 10),
            (vec![5, 1, 4, 2, 8, 1, 1, 9], 14),
            (vec![1, 1, 1, 1, 1, 1], 2),
            (vec![3, 3, 3], 3),
            (vec![7], 7),
            (vec![2, 9, 2], 9),
        ];
        for (nodes, k) in cases {
            let p = path(&nodes);
            let fast = prime_subpaths(&p, Weight::new(k)).unwrap();
            let brute = primes_brute(&p, Weight::new(k));
            assert_eq!(fast, brute, "nodes={nodes:?} k={k}");
        }
    }

    #[test]
    fn every_prime_has_at_least_one_edge() {
        // Guaranteed because bound >= every single vertex weight.
        let p = path(&[3, 4, 5, 6, 7]);
        for k in 7..=24 {
            for pr in prime_subpaths(&p, Weight::new(k)).unwrap() {
                assert!(pr.edge_len() >= 1);
                assert!(pr.edges().count() == pr.edge_len());
            }
        }
    }

    #[test]
    fn endpoints_strictly_increase() {
        let p = path(&[5, 1, 4, 2, 8, 1, 1, 9, 3, 3, 6]);
        for k in 9..=30 {
            let primes = prime_subpaths(&p, Weight::new(k)).unwrap();
            for w in primes.windows(2) {
                assert!(w[0].first_node < w[1].first_node);
                assert!(w[0].last_node < w[1].last_node);
            }
        }
    }
}
