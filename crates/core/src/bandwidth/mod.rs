//! Bandwidth minimization for linear task graphs (§2.3 of the paper).
//!
//! **Problem.** Given a path `P` with vertex weights `α` and edge weights
//! `β`, and a load bound `K ≥ max α_i`, find an edge cut `S ⊆ E` of minimum
//! total weight `β(S)` such that every connected component of `P − S`
//! weighs at most `K`.
//!
//! **Approach.** Feasibility is equivalent to hitting every *prime*
//! (minimal critical) subpath ([`prime_subpaths`]), which turns the problem
//! into a consecutive-interval weighted hitting set solved by dynamic
//! programming over the primes. Four interchangeable solvers are provided:
//!
//! | function | algorithm | complexity |
//! |---|---|---|
//! | [`min_bandwidth_cut`] | the paper's TEMP_S deque (§2.3.1) | `O(n + p log q)` |
//! | [`min_bandwidth_cut_naive`] | the paper's naive recurrence | `O(Σ\|P_i\|) ⊆ O(np)` |
//! | [`min_bandwidth_cut_window`] | monotonic-deque DP (post-1994 reference) | `O(n)` |
//! | [`min_bandwidth_cut_oracle`] | textbook DP (test oracle) | `O(n·L)` |
//!
//! All four return cuts of identical weight (property-tested against each
//! other and against brute force). [`analyze_bandwidth`] additionally
//! reports the instance statistics (`p`, `q`, TEMP_S occupancy) that the
//! paper's Figure 2 and Appendix B study. For §3's real-time requirement
//! that the bottleneck *and* the total be minimized,
//! [`min_bandwidth_cut_lexicographic`] optimizes both in lexicographic
//! order via [`min_bandwidth_cut_bounded`].

mod bounded;
mod naive;
mod nonredundant;
mod oracle;
mod prime;
mod stats;
mod temps;

pub use bounded::{
    min_bandwidth_cut_bounded, min_bandwidth_cut_bounded_budgeted, min_bandwidth_cut_lexicographic,
    min_bandwidth_cut_lexicographic_budgeted, min_bandwidth_cut_lexicographic_warm,
};
pub use naive::min_bandwidth_cut_naive;
pub use nonredundant::{nonredundant_edges, NrEdge};
pub use oracle::{min_bandwidth_cut_oracle, min_bandwidth_cut_window};
pub use prime::{prime_subpaths, PrimeSubpath};
pub use stats::BandwidthStats;
pub use temps::{
    analyze_bandwidth, analyze_bandwidth_budgeted, analyze_bandwidth_with, min_bandwidth_cut,
    MergeSearch,
};
