//! Instance statistics backing the paper's Figure 2.
//!
//! The paper's evaluation studies the relation between `n`, `p`, `q`, `K`,
//! `p log q` and the maximum vertex weight; [`BandwidthStats`] captures all
//! of those for one solved instance, plus the TEMP_S occupancy telemetry
//! that Appendix B reasons about.

/// Statistics of one bandwidth-minimization run (the quantities plotted in
/// the paper's Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthStats {
    /// Number of tasks `n` in the chain.
    pub n: usize,
    /// Number of prime subpaths `p`.
    pub p: usize,
    /// Number of non-redundant edges `r` (`r ≤ min(n − 1, 2p − 1)`).
    pub r: usize,
    /// `Σ q_i` over non-redundant edges, where `q_i` is the number of prime
    /// subpaths edge `i` belongs to.
    pub q_sum: u64,
    /// The paper's `q = Σ q_i / r` (0 when there are no primes).
    pub q_bar: f64,
    /// `p · log₂ q` — the paper's adaptive cost term (log clamped below at
    /// 1 so the term never vanishes for `q < 2`).
    pub p_log_q: f64,
    /// `n · log₂ n` — the cost term of the best previously known algorithm.
    pub n_log_n: f64,
    /// Average prime-subpath length in edges (bounded by `2K/(w₁+w₂)` for
    /// uniform weights, §2.3.2).
    pub avg_prime_edge_len: f64,
    /// Largest TEMP_S occupancy observed (Appendix B studies its average).
    pub max_deque_len: usize,
    /// Mean TEMP_S occupancy per processed non-redundant edge.
    pub avg_deque_len: f64,
    /// Weight of the optimal cut, `β(S_p)`.
    pub cut_weight: u64,
    /// Number of edges in the optimal cut.
    pub cut_len: usize,
}

impl BandwidthStats {
    /// Statistics for an instance with no critical subpaths (empty cut).
    pub(crate) fn trivial(n: usize) -> Self {
        BandwidthStats {
            n,
            p: 0,
            r: 0,
            q_sum: 0,
            q_bar: 0.0,
            p_log_q: 0.0,
            n_log_n: n_log_n(n),
            avg_prime_edge_len: 0.0,
            max_deque_len: 0,
            avg_deque_len: 0.0,
            cut_weight: 0,
            cut_len: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        n: usize,
        p: usize,
        r: usize,
        q_sum: u64,
        prime_edge_len_sum: usize,
        deque_len_sum: u64,
        max_deque_len: usize,
        cut_weight: u64,
        cut_len: usize,
    ) -> Self {
        let q_bar = if r == 0 { 0.0 } else { q_sum as f64 / r as f64 };
        let p_log_q = p as f64 * q_bar.max(2.0).log2();
        BandwidthStats {
            n,
            p,
            r,
            q_sum,
            q_bar,
            p_log_q,
            n_log_n: n_log_n(n),
            avg_prime_edge_len: if p == 0 {
                0.0
            } else {
                prime_edge_len_sum as f64 / p as f64
            },
            max_deque_len,
            avg_deque_len: if r == 0 {
                0.0
            } else {
                deque_len_sum as f64 / r as f64
            },
            cut_weight,
            cut_len,
        }
    }

    /// The paper's headline ratio: how far below `n log n` the adaptive
    /// cost `p log q` falls (1.0 means no advantage; small values mean a
    /// large advantage). Returns 0 for instances with no primes.
    pub fn advantage_ratio(&self) -> f64 {
        if self.n_log_n == 0.0 {
            0.0
        } else {
            self.p_log_q / self.n_log_n
        }
    }
}

fn n_log_n(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        n as f64 * (n as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_stats_are_all_zero_except_n() {
        let s = BandwidthStats::trivial(100);
        assert_eq!(s.n, 100);
        assert_eq!(s.p, 0);
        assert_eq!(s.q_bar, 0.0);
        assert_eq!(s.advantage_ratio(), 0.0);
        assert!(s.n_log_n > 0.0);
    }

    #[test]
    fn derived_quantities() {
        let s = BandwidthStats::new(1000, 50, 80, 240, 500, 400, 9, 1234, 50);
        assert!((s.q_bar - 3.0).abs() < 1e-9);
        assert!((s.p_log_q - 50.0 * 3.0f64.log2()).abs() < 1e-9);
        assert!((s.avg_prime_edge_len - 10.0).abs() < 1e-9);
        assert!((s.avg_deque_len - 5.0).abs() < 1e-9);
        assert!(s.advantage_ratio() > 0.0 && s.advantage_ratio() < 1.0);
    }

    #[test]
    fn log_clamp_keeps_cost_positive_for_small_q() {
        let s = BandwidthStats::new(10, 5, 5, 5, 5, 5, 1, 0, 0);
        assert!((s.q_bar - 1.0).abs() < 1e-9);
        assert!((s.p_log_q - 5.0).abs() < 1e-9); // 5 * log2(2)
    }

    #[test]
    fn n_log_n_edge_cases() {
        assert_eq!(n_log_n(0), 0.0);
        assert_eq!(n_log_n(1), 0.0);
        assert!((n_log_n(8) - 24.0).abs() < 1e-9);
    }
}
