//! The paper's naive recurrence over prime subpaths (§2.3).
//!
//! `S_1 = {e_s}` with `β_s` minimal over `E(P_1)`, and
//! `S_{i+1} = {e_s} ∪ S_{γ_s}` where `e_s` minimizes
//! `β_j + β(S_{γ_j})` over `e_j ∈ E(P_{i+1})`; `γ_j = c_j − 1` is the
//! number of prime subpaths wholly to the left of `e_j`.
//!
//! Evaluated directly this costs `O(Σ|P_i|)` — up to `O(np)` — which is
//! why the paper develops the TEMP_S implementation
//! ([`super::temps`]). Kept as a faithful mid-complexity reference.

use tgp_graph::{CutSet, EdgeId, PathGraph, Weight};

use super::prime::prime_subpaths;
use crate::error::PartitionError;

/// Minimum-weight feasible cut via the paper's naive prime-subpath
/// recurrence: `O(Σ|P_i|)` time (worst case `O(np)`), `O(n)` space.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::bandwidth::min_bandwidth_cut_naive;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PathGraph::from_raw(&[4, 4, 4, 4], &[9, 1, 9])?;
/// let cut = min_bandwidth_cut_naive(&p, Weight::new(8))?;
/// assert_eq!(p.cut_weight(&cut)?, Weight::new(1));
/// # Ok(())
/// # }
/// ```
pub fn min_bandwidth_cut_naive(path: &PathGraph, bound: Weight) -> Result<CutSet, PartitionError> {
    let primes = prime_subpaths(path, bound)?;
    if primes.is_empty() {
        return Ok(CutSet::empty());
    }
    let p = primes.len();
    // c_of_edge[j] = index of the first prime subpath containing edge j.
    // Filled by sweeping primes left to right (later primes do not
    // overwrite).
    let mut c_of_edge = vec![usize::MAX; path.edge_count()];
    for (i, pr) in primes.iter().enumerate() {
        for e in pr.edges() {
            if c_of_edge[e.index()] == usize::MAX {
                c_of_edge[e.index()] = i;
            }
        }
    }
    // Persistent solution sets: arena of (edge, parent) cons cells.
    let mut arena: Vec<(EdgeId, Option<usize>)> = Vec::with_capacity(p);
    // cost[i] = β(S_{i+1}) in paper terms (0-based prime index);
    // set[i] = arena index of the last cons cell of S_{i+1}.
    let mut cost = vec![u64::MAX; p];
    let mut set: Vec<Option<usize>> = vec![None; p];
    for (i, pr) in primes.iter().enumerate() {
        let mut best: Option<(u64, EdgeId, Option<usize>)> = None;
        for e in pr.edges() {
            let c = c_of_edge[e.index()];
            debug_assert!(c <= i, "edge of P_i first appears in a prime <= i");
            let gamma_cost = if c == 0 { 0 } else { cost[c - 1] };
            let gamma_set = if c == 0 { None } else { set[c - 1] };
            debug_assert_ne!(gamma_cost, u64::MAX);
            let w = path.edge_weight(e).get() + gamma_cost;
            if best.as_ref().is_none_or(|&(bw, _, _)| w < bw) {
                best = Some((w, e, gamma_set));
            }
        }
        let (w, e, gamma_set) = best.expect("every prime subpath has at least one edge");
        arena.push((e, gamma_set));
        cost[i] = w;
        set[i] = Some(arena.len() - 1);
    }
    // Reconstruct S_p.
    let mut edges = Vec::new();
    let mut cursor = set[p - 1];
    while let Some(idx) = cursor {
        let (e, parent) = arena[idx];
        edges.push(e);
        cursor = parent;
    }
    let cut = CutSet::new(edges);
    debug_assert_eq!(path.cut_weight(&cut).map(|w| w.get()), Ok(cost[p - 1]));
    debug_assert_eq!(path.is_feasible_cut(&cut, bound), Ok(true));
    Ok(cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::min_bandwidth_cut_oracle;

    fn path(nodes: &[u64], edges: &[u64]) -> PathGraph {
        PathGraph::from_raw(nodes, edges).unwrap()
    }

    #[test]
    fn empty_cut_when_everything_fits() {
        let p = path(&[1, 2, 3], &[10, 10]);
        assert!(min_bandwidth_cut_naive(&p, Weight::new(6))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn infeasible_bound_errors() {
        let p = path(&[1, 9], &[1]);
        assert!(matches!(
            min_bandwidth_cut_naive(&p, Weight::new(8)),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn forced_single_cut() {
        let p = path(&[4, 4, 4, 4], &[9, 1, 9]);
        let cut = min_bandwidth_cut_naive(&p, Weight::new(8)).unwrap();
        assert_eq!(cut.len(), 1);
        assert!(cut.contains(EdgeId::new(1)));
    }

    #[test]
    fn shared_edge_between_overlapping_primes_is_reused() {
        // [10, 1, 1, 10], K = 11: primes [0..=2] and [1..=3]; the shared
        // middle edge 1 (weight 1) hits both, beating cutting edges 0 and
        // 2 (weight 5 + 5).
        let p = path(&[10, 1, 1, 10], &[5, 1, 5]);
        let cut = min_bandwidth_cut_naive(&p, Weight::new(11)).unwrap();
        assert_eq!(cut.len(), 1);
        assert!(cut.contains(EdgeId::new(1)));
    }

    #[test]
    fn matches_oracle_on_random_inputs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for round in 0..200 {
            let n = rng.gen_range(1..80);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..12)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..40)).collect();
            let p = path(&nodes, &edges);
            let max = nodes.iter().copied().max().unwrap();
            let k = rng.gen_range(max..=max * 3);
            let ours = min_bandwidth_cut_naive(&p, Weight::new(k)).unwrap();
            let oracle = min_bandwidth_cut_oracle(&p, Weight::new(k)).unwrap();
            assert!(p.is_feasible_cut(&ours, Weight::new(k)).unwrap());
            assert_eq!(
                p.cut_weight(&ours).unwrap(),
                p.cut_weight(&oracle).unwrap(),
                "round={round} nodes={nodes:?} edges={edges:?} k={k}"
            );
        }
    }
}
