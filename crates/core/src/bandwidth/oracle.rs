//! Reference dynamic programs for bandwidth minimization on a path.
//!
//! Two implementations that do not use the paper's prime-subpath machinery,
//! used as correctness oracles and ablation baselines:
//!
//! * [`min_bandwidth_cut_oracle`] — direct textbook DP, O(n · L) where `L`
//!   is the longest feasible segment length (worst case O(n²)),
//! * [`min_bandwidth_cut_window`] — the same DP with a monotonic-deque
//!   sliding-window minimum, O(n). This technique post-dates the paper and
//!   is included as a modern reference point for the benches.

use std::collections::VecDeque;

use tgp_graph::{CutSet, EdgeId, PathGraph, Weight};

use crate::error::{check_bound, PartitionError};

const INF: u64 = u64::MAX;

/// Shared scaffolding: handles the trivial cases, otherwise calls `solve`
/// to fill the DP tables and reconstructs the cut.
fn run_dp(
    path: &PathGraph,
    bound: Weight,
    solve: impl FnOnce(&PathGraph, Weight, &mut [u64], &mut [usize]),
) -> Result<CutSet, PartitionError> {
    check_bound(path.node_weights(), bound)?;
    if path.total_weight() <= bound {
        return Ok(CutSet::empty());
    }
    let m = path.edge_count();
    debug_assert!(m >= 1, "total > bound with one node is impossible");
    // cost[j] = min cut weight such that edge j is cut and the prefix of
    // nodes 0..=j is feasibly segmented; parent[j] = previous cut edge
    // (usize::MAX = none).
    let mut cost = vec![INF; m];
    let mut parent = vec![usize::MAX; m];
    solve(path, bound, &mut cost, &mut parent);
    // Choose the last cut: edge j whose suffix (j+1..n-1) fits the bound.
    let n = path.len();
    let mut best: Option<usize> = None;
    for j in (0..m).rev() {
        if path.span_weight(j + 1, n - 1) > bound {
            break; // suffix only grows as j decreases
        }
        if cost[j] < INF && best.is_none_or(|b| cost[j] < cost[b]) {
            best = Some(j);
        }
    }
    let mut j = best.expect("a feasible cut exists whenever bound >= max vertex weight");
    let mut edges = Vec::new();
    loop {
        edges.push(EdgeId::new(j));
        if parent[j] == usize::MAX {
            break;
        }
        j = parent[j];
    }
    Ok(CutSet::new(edges))
}

/// Minimum-weight feasible cut by the direct textbook DP (the oracle).
///
/// For every edge `j`, scans candidate previous cuts backwards while the
/// intermediate segment still fits the bound: O(n · L) time, O(n) space.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::bandwidth::min_bandwidth_cut_oracle;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PathGraph::from_raw(&[4, 4, 4, 4], &[9, 1, 9])?;
/// let cut = min_bandwidth_cut_oracle(&p, Weight::new(8))?;
/// assert_eq!(p.cut_weight(&cut)?, Weight::new(1)); // cut the middle edge
/// # Ok(())
/// # }
/// ```
pub fn min_bandwidth_cut_oracle(path: &PathGraph, bound: Weight) -> Result<CutSet, PartitionError> {
    run_dp(path, bound, |path, bound, cost, parent| {
        let m = path.edge_count();
        for j in 0..m {
            let beta = path.edge_weight(EdgeId::new(j)).get();
            // Base case: the whole prefix 0..=j forms one segment.
            if path.span_weight(0, j) <= bound {
                cost[j] = beta;
                parent[j] = usize::MAX;
            }
            // Previous cut at i: segment i+1..=j must fit.
            for i in (0..j).rev() {
                if path.span_weight(i + 1, j) > bound {
                    break;
                }
                if cost[i] < INF && cost[i].saturating_add(beta) < cost[j] {
                    cost[j] = cost[i] + beta;
                    parent[j] = i;
                }
            }
        }
    })
}

/// Minimum-weight feasible cut via a monotonic-deque sliding-window
/// minimum over the same DP: O(n) time, O(n) space.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
pub fn min_bandwidth_cut_window(path: &PathGraph, bound: Weight) -> Result<CutSet, PartitionError> {
    run_dp(path, bound, |path, bound, cost, parent| {
        let m = path.edge_count();
        // Deque of candidate predecessor edges i with strictly increasing
        // cost front-to-back; the window of valid i for edge j is
        // [lo_j, j-1], with lo_j non-decreasing in j.
        let mut deque: VecDeque<usize> = VecDeque::new();
        let mut lo = 0usize; // smallest i still possibly valid
        for j in 0..m {
            // Admit i = j - 1 (newly available predecessor).
            if j >= 1 {
                let i = j - 1;
                if cost[i] < INF {
                    while deque.back().is_some_and(|&b| cost[b] >= cost[i]) {
                        deque.pop_back();
                    }
                    deque.push_back(i);
                }
            }
            // Evict predecessors whose segment i+1..=j no longer fits.
            while lo < j && path.span_weight(lo + 1, j) > bound {
                lo += 1;
            }
            while deque.front().is_some_and(|&f| f < lo) {
                deque.pop_front();
            }
            let beta = path.edge_weight(EdgeId::new(j)).get();
            if path.span_weight(0, j) <= bound {
                cost[j] = beta;
                parent[j] = usize::MAX;
            }
            if let Some(&i) = deque.front() {
                let candidate = cost[i].saturating_add(beta);
                if candidate < cost[j] {
                    cost[j] = candidate;
                    parent[j] = i;
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[u64], edges: &[u64]) -> PathGraph {
        PathGraph::from_raw(nodes, edges).unwrap()
    }

    /// Brute force over all 2^(n-1) cuts.
    fn brute(path: &PathGraph, bound: Weight) -> Option<u64> {
        let m = path.edge_count();
        let mut best: Option<u64> = None;
        for mask in 0u32..(1 << m) {
            let cut: CutSet = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(EdgeId::new)
                .collect();
            if path.is_feasible_cut(&cut, bound).unwrap() {
                let w = path.cut_weight(&cut).unwrap().get();
                if best.is_none_or(|b| w < b) {
                    best = Some(w);
                }
            }
        }
        best
    }

    #[test]
    fn empty_cut_when_everything_fits() {
        let p = path(&[1, 2, 3], &[10, 10]);
        assert!(min_bandwidth_cut_oracle(&p, Weight::new(6))
            .unwrap()
            .is_empty());
        assert!(min_bandwidth_cut_window(&p, Weight::new(6))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn infeasible_bound_errors() {
        let p = path(&[1, 9], &[1]);
        for f in [min_bandwidth_cut_oracle, min_bandwidth_cut_window] {
            assert!(matches!(
                f(&p, Weight::new(8)),
                Err(PartitionError::BoundTooSmall { .. })
            ));
        }
    }

    #[test]
    fn picks_cheapest_edge_in_forced_window() {
        let p = path(&[4, 4, 4, 4], &[9, 1, 9]);
        for f in [min_bandwidth_cut_oracle, min_bandwidth_cut_window] {
            let cut = f(&p, Weight::new(8)).unwrap();
            assert_eq!(p.cut_weight(&cut).unwrap(), Weight::new(1));
            assert!(p.is_feasible_cut(&cut, Weight::new(8)).unwrap());
        }
    }

    #[test]
    fn single_node_never_needs_cutting() {
        let p = path(&[5], &[]);
        for f in [min_bandwidth_cut_oracle, min_bandwidth_cut_window] {
            assert!(f(&p, Weight::new(5)).unwrap().is_empty());
        }
    }

    #[test]
    fn tight_bound_cuts_every_edge() {
        let p = path(&[3, 3, 3], &[7, 11]);
        for f in [min_bandwidth_cut_oracle, min_bandwidth_cut_window] {
            let cut = f(&p, Weight::new(3)).unwrap();
            assert_eq!(cut.len(), 2);
            assert_eq!(p.cut_weight(&cut).unwrap(), Weight::new(18));
        }
    }

    #[test]
    fn both_match_brute_force_exhaustively() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..300 {
            let n = rng.gen_range(1..11);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..15)).collect();
            let p = path(&nodes, &edges);
            let max = nodes.iter().copied().max().unwrap();
            let k = rng.gen_range(max..=max + 20);
            let expect = brute(&p, Weight::new(k)).unwrap();
            for f in [min_bandwidth_cut_oracle, min_bandwidth_cut_window] {
                let cut = f(&p, Weight::new(k)).unwrap();
                assert!(p.is_feasible_cut(&cut, Weight::new(k)).unwrap());
                assert_eq!(
                    p.cut_weight(&cut).unwrap().get(),
                    expect,
                    "nodes={nodes:?} edges={edges:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn window_matches_oracle_on_larger_random_inputs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..40 {
            let n = rng.gen_range(2..400);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..50)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..1000)).collect();
            let p = path(&nodes, &edges);
            let max = nodes.iter().copied().max().unwrap();
            let k = rng.gen_range(max..=max * 4);
            let a = min_bandwidth_cut_oracle(&p, Weight::new(k)).unwrap();
            let b = min_bandwidth_cut_window(&p, Weight::new(k)).unwrap();
            assert_eq!(
                p.cut_weight(&a).unwrap(),
                p.cut_weight(&b).unwrap(),
                "n={n} k={k}"
            );
        }
    }
}
