//! Bandwidth minimization under a bottleneck ceiling, and the
//! lexicographic bicriteria solve the paper's real-time application
//! demands.
//!
//! §3's real-time constraints ask for a partition where "Σ w(dp_im) is
//! minimum **and** max w(dp_im) is minimized". Both cannot always be
//! optimized simultaneously; the standard reading is lexicographic:
//! first drive the bottleneck to its optimum `B*` (Algorithm 2.1 applies
//! — a chain is a tree), then minimize the total cut weight among cuts
//! that only use edges of weight `≤ B*`.
//!
//! [`min_bandwidth_cut_bounded`] is the constrained solver (a sliding-
//! window DP over the *allowed* edges, `O(n)`), and
//! [`min_bandwidth_cut_lexicographic`] composes it with the bottleneck
//! optimum.

use std::collections::VecDeque;

use tgp_graph::{ChainView, CutSet, EdgeId, NodeId, Weight};

use crate::budget::Budget;
use crate::error::{check_bound_nodes, PartitionError};

const INF: u64 = u64::MAX;

/// Minimum-weight cut keeping every segment within `bound`, using only
/// edges of weight at most `bottleneck_limit`. Returns `Ok(None)` when no
/// such cut exists (some over-weight window contains no allowed edge).
///
/// `O(n)` time via a monotonic-deque window minimum.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`
/// (then no cut of any kind is feasible).
///
/// # Examples
///
/// ```
/// use tgp_core::bandwidth::min_bandwidth_cut_bounded;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PathGraph::from_raw(&[4, 4, 4, 4], &[9, 1, 9])?;
/// // With the bottleneck capped at 1, only the middle edge may be cut.
/// let cut = min_bandwidth_cut_bounded(&p, Weight::new(8), Weight::new(1))?.unwrap();
/// assert_eq!(p.cut_weight(&cut)?, Weight::new(1));
/// // Capping below every edge weight makes the instance infeasible.
/// assert!(min_bandwidth_cut_bounded(&p, Weight::new(8), Weight::new(0))?.is_none());
/// # Ok(())
/// # }
/// ```
pub fn min_bandwidth_cut_bounded<C: ChainView>(
    path: &C,
    bound: Weight,
    bottleneck_limit: Weight,
) -> Result<Option<CutSet>, PartitionError> {
    min_bandwidth_cut_bounded_budgeted(path, bound, bottleneck_limit, &Budget::unlimited())
}

/// Cost-sliced [`min_bandwidth_cut_bounded`]: the sliding-window DP
/// charges the [`Budget`] one unit per edge, so an expired deadline or a
/// raised cancel flag interrupts the probe mid-scan.
///
/// # Errors
///
/// As [`min_bandwidth_cut_bounded`], plus
/// [`PartitionError::Interrupted`] when the budget runs out.
pub fn min_bandwidth_cut_bounded_budgeted<C: ChainView>(
    path: &C,
    bound: Weight,
    bottleneck_limit: Weight,
    budget: &Budget,
) -> Result<Option<CutSet>, PartitionError> {
    check_bound_nodes(
        (0..path.len()).map(|i| path.node_weight(NodeId::new(i))),
        bound,
    )?;
    if path.total_weight() <= bound {
        return Ok(Some(CutSet::empty()));
    }
    let m = path.edge_count();
    let n = path.len();
    let mut cost = vec![INF; m];
    let mut parent = vec![usize::MAX; m];
    let mut deque: VecDeque<usize> = VecDeque::new();
    let mut lo = 0usize;
    for j in 0..m {
        budget.charge(1)?;
        if j >= 1 && cost[j - 1] < INF {
            let i = j - 1;
            while deque.back().is_some_and(|&b| cost[b] >= cost[i]) {
                deque.pop_back();
            }
            deque.push_back(i);
        }
        while lo < j && path.span_weight(lo + 1, j) > bound {
            lo += 1;
        }
        while deque.front().is_some_and(|&f| f < lo) {
            deque.pop_front();
        }
        let beta = path.edge_weight(EdgeId::new(j));
        if beta > bottleneck_limit {
            continue; // this edge may not be cut
        }
        if path.span_weight(0, j) <= bound {
            cost[j] = beta.get();
            parent[j] = usize::MAX;
        }
        if let Some(&i) = deque.front() {
            let candidate = cost[i] + beta.get();
            if candidate < cost[j] {
                cost[j] = candidate;
                parent[j] = i;
            }
        }
    }
    let mut best: Option<usize> = None;
    for j in (0..m).rev() {
        if path.span_weight(j + 1, n - 1) > bound {
            break;
        }
        if cost[j] < INF && best.is_none_or(|b| cost[j] < cost[b]) {
            best = Some(j);
        }
    }
    let Some(mut j) = best else {
        return Ok(None);
    };
    let mut edges = Vec::new();
    loop {
        edges.push(EdgeId::new(j));
        if parent[j] == usize::MAX {
            break;
        }
        j = parent[j];
    }
    let cut = CutSet::new(edges);
    debug_assert_eq!(path.is_feasible_cut(&cut, bound), Ok(true));
    debug_assert!(path.bottleneck(&cut).expect("valid cut") <= bottleneck_limit);
    Ok(Some(cut))
}

/// The lexicographic bicriteria cut of §3's real-time application: the
/// minimum-total-weight cut among all feasible cuts whose bottleneck
/// equals the optimum `B*` of Algorithm 2.1.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::bandwidth::min_bandwidth_cut_lexicographic;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Pure bandwidth minimization would cut the single weight-6 edge; the
/// // lexicographic solve prefers two weight-4 cuts (bottleneck 4 < 6).
/// let p = PathGraph::from_raw(&[5, 5, 5, 5], &[4, 6, 4])?;
/// let cut = min_bandwidth_cut_lexicographic(&p, Weight::new(10))?;
/// assert_eq!(p.bottleneck(&cut)?, Weight::new(4));
/// assert_eq!(p.cut_weight(&cut)?, Weight::new(8));
/// # Ok(())
/// # }
/// ```
pub fn min_bandwidth_cut_lexicographic<C: ChainView>(
    path: &C,
    bound: Weight,
) -> Result<CutSet, PartitionError> {
    min_bandwidth_cut_lexicographic_budgeted(path, bound, &Budget::unlimited())
}

/// Cost-sliced [`min_bandwidth_cut_lexicographic`]: every `O(n)` probe
/// of the candidate-limit binary search runs under the [`Budget`]
/// (charged per edge), so a mid-solve deadline or cancel interrupts the
/// bicriteria solve between — and inside — probes.
///
/// # Errors
///
/// As [`min_bandwidth_cut_lexicographic`], plus
/// [`PartitionError::Interrupted`] when the budget runs out.
pub fn min_bandwidth_cut_lexicographic_budgeted<C: ChainView>(
    path: &C,
    bound: Weight,
    budget: &Budget,
) -> Result<CutSet, PartitionError> {
    budget.check_now()?;
    // `B*` is the smallest bottleneck limit admitting any feasible cut.
    // Feasibility of [`min_bandwidth_cut_bounded`] is monotone in the
    // limit (raising it only adds cuttable edges), and a cut's
    // bottleneck is one of the edge weights (or zero, for the empty
    // cut), so a binary search over those candidates finds `B*` with
    // `O(log n)` linear probes — no tree materialization, unlike
    // delegating to Algorithm 2.1 via `tree_from_path`.
    let mut limits: Vec<Weight> = std::iter::once(Weight::ZERO)
        .chain((0..path.edge_count()).map(|j| path.edge_weight(EdgeId::new(j))))
        .collect();
    limits.sort_unstable();
    limits.dedup();
    budget.charge(limits.len() as u64)?;

    let (mut lo, mut hi) = (0usize, limits.len() - 1);
    let mut best: Option<CutSet> = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match min_bandwidth_cut_bounded_budgeted(path, bound, limits[mid], budget)? {
            // `best` always holds the cut for the current `hi`.
            Some(cut) => {
                best = Some(cut);
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    match best {
        Some(cut) => Ok(cut),
        // Every probe failed (or there was nothing to search), so the
        // search converged on the largest limit without testing it.
        // With the limit at the maximum edge weight, cutting every edge
        // is allowed, and `check_bound` inside the probe guarantees
        // single-vertex segments fit — so this probe cannot miss.
        None => Ok(
            min_bandwidth_cut_bounded_budgeted(path, bound, limits[lo], budget)?
                .expect("cutting every edge is feasible once all weights are allowed"),
        ),
    }
}

/// Warm-started variant of [`min_bandwidth_cut_lexicographic`]: the
/// candidate-limit binary search is restricted to bottleneck values in
/// `[hint_lo, hint_hi]` (typically a window around a previous solve's
/// `B*` widened by how much the instance has drifted since).
///
/// The window is *certified* before it is trusted: the largest
/// candidate limit below the window must be infeasible and the largest
/// candidate inside it must be feasible — together those prove the true
/// `B*` lies inside the window, because feasibility is monotone in the
/// limit. `Ok(None)` means a certificate failed (or the window contains
/// no candidate) and the caller must fall back to the cold solve.
///
/// When the certificates hold, the returned cut is **byte-identical**
/// to the cold solve's: both converge on the same first-feasible
/// candidate index and return the cut produced by the deterministic
/// probe at that limit.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs
/// `bound` (the cold solve fails identically).
pub fn min_bandwidth_cut_lexicographic_warm<C: ChainView>(
    path: &C,
    bound: Weight,
    hint_lo: Weight,
    hint_hi: Weight,
) -> Result<Option<CutSet>, PartitionError> {
    if hint_lo > hint_hi {
        return Ok(None);
    }
    // The cold solve sorts every candidate limit; the warm solve only
    // ever probes the largest candidate *below* the window and the
    // candidates *inside* it, so a single O(n) scan replaces the
    // O(n log n) sort — on a narrow window this is where the warm
    // path's time goes, not the probes.
    let mut below: Option<Weight> = None;
    let mut window: Vec<Weight> = Vec::new();
    for w in std::iter::once(Weight::ZERO)
        .chain((0..path.edge_count()).map(|j| path.edge_weight(EdgeId::new(j))))
    {
        if w < hint_lo {
            below = Some(below.map_or(w, |b| b.max(w)));
        } else if w <= hint_hi {
            window.push(w);
        }
    }
    window.sort_unstable();
    window.dedup();
    if window.is_empty() {
        return Ok(None); // no candidate in the window
    }

    // Certificate: the strongest limit below the window is infeasible
    // (vacuously true when the window starts at the smallest candidate).
    if let Some(b) = below {
        if min_bandwidth_cut_bounded(path, bound, b)?.is_some() {
            return Ok(None); // B* is below the window
        }
    }
    // Certificate: the window's top candidate is feasible.
    let Some(top) = min_bandwidth_cut_bounded(path, bound, *window.last().expect("non-empty"))?
    else {
        return Ok(None); // B* is above the window
    };

    // Same search as the cold solve, seeded inside the certified
    // window; `best` always holds the cut for the current `hi`. The
    // window holds the same candidate set (sorted, deduped) the cold
    // solve's array holds over those indices, so the search converges
    // on the same first-feasible candidate and the same cut.
    let (mut lo, mut hi) = (0usize, window.len() - 1);
    let mut best = top;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match min_bandwidth_cut_bounded(path, bound, window[mid])? {
            Some(cut) => {
                best = cut;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Ok(Some(best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::min_bandwidth_cut;
    use tgp_graph::PathGraph;

    fn path(nodes: &[u64], edges: &[u64]) -> PathGraph {
        PathGraph::from_raw(nodes, edges).unwrap()
    }

    fn all_cuts(m: usize) -> impl Iterator<Item = CutSet> {
        (0u32..(1 << m)).map(move |mask| {
            (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(EdgeId::new)
                .collect()
        })
    }

    #[test]
    fn unbounded_limit_recovers_plain_bandwidth() {
        let p = path(&[4, 4, 4, 4], &[9, 1, 9]);
        let bounded = min_bandwidth_cut_bounded(&p, Weight::new(8), Weight::MAX)
            .unwrap()
            .unwrap();
        let plain = min_bandwidth_cut(&p, Weight::new(8)).unwrap();
        assert_eq!(
            p.cut_weight(&bounded).unwrap(),
            p.cut_weight(&plain).unwrap()
        );
    }

    #[test]
    fn infeasible_limit_returns_none() {
        let p = path(&[6, 6, 6], &[5, 7]);
        // K = 11: every adjacent pair bursts, so both edges must be cut;
        // a limit below 7 forbids the second.
        assert!(
            min_bandwidth_cut_bounded(&p, Weight::new(11), Weight::new(6))
                .unwrap()
                .is_none()
        );
        assert!(
            min_bandwidth_cut_bounded(&p, Weight::new(11), Weight::new(7))
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn lexicographic_trades_total_for_bottleneck() {
        let p = path(&[5, 5, 5, 5], &[4, 6, 4]);
        let lex = min_bandwidth_cut_lexicographic(&p, Weight::new(10)).unwrap();
        let plain = min_bandwidth_cut(&p, Weight::new(10)).unwrap();
        assert_eq!(p.bottleneck(&lex).unwrap(), Weight::new(4));
        assert_eq!(p.cut_weight(&lex).unwrap(), Weight::new(8));
        assert_eq!(p.cut_weight(&plain).unwrap(), Weight::new(6));
        assert_eq!(p.bottleneck(&plain).unwrap(), Weight::new(6));
    }

    #[test]
    fn matches_brute_force_lexicographic_order() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x1E);
        for round in 0..200 {
            let n: usize = rng.gen_range(1..11);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..15)).collect();
            let p = path(&nodes, &edges);
            let max = nodes.iter().copied().max().unwrap();
            let k = Weight::new(rng.gen_range(max..=max + 15));
            let lex = min_bandwidth_cut_lexicographic(&p, k).unwrap();
            // Brute force: minimize (bottleneck, total) lexicographically.
            let best = all_cuts(p.edge_count())
                .filter(|c| p.is_feasible_cut(c, k).unwrap())
                .map(|c| {
                    (
                        p.bottleneck(&c).unwrap().get(),
                        p.cut_weight(&c).unwrap().get(),
                    )
                })
                .min()
                .unwrap();
            let got = (
                p.bottleneck(&lex).unwrap().get(),
                p.cut_weight(&lex).unwrap().get(),
            );
            assert_eq!(
                got, best,
                "round={round} nodes={nodes:?} edges={edges:?} k={k}"
            );
        }
    }

    #[test]
    fn budgeted_lexicographic_matches_and_interrupts() {
        use std::time::{Duration, Instant};
        let nodes: Vec<u64> = (0..400).map(|i| 1 + (i % 5)).collect();
        let edges: Vec<u64> = (0..399).map(|i| 1 + (i * 17) % 29).collect();
        let p = path(&nodes, &edges);
        let k = Weight::new(18);
        let cold = min_bandwidth_cut_lexicographic(&p, k).unwrap();
        let generous = Budget::with_deadline(Instant::now() + Duration::from_secs(3600));
        let budgeted = min_bandwidth_cut_lexicographic_budgeted(&p, k, &generous).unwrap();
        assert_eq!(cold, budgeted);
        let expired = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(
            min_bandwidth_cut_lexicographic_budgeted(&p, k, &expired),
            Err(PartitionError::Interrupted(_))
        ));
    }

    #[test]
    fn bound_errors_propagate() {
        let p = path(&[1, 9], &[1]);
        assert!(matches!(
            min_bandwidth_cut_bounded(&p, Weight::new(8), Weight::MAX),
            Err(PartitionError::BoundTooSmall { .. })
        ));
        assert!(matches!(
            min_bandwidth_cut_lexicographic(&p, Weight::new(8)),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn warm_with_certified_window_matches_cold_exactly() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xA11CE);
        let mut certified = 0u32;
        for round in 0..300 {
            let n: usize = rng.gen_range(1..40);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..25)).collect();
            let p = path(&nodes, &edges);
            let max = nodes.iter().copied().max().unwrap();
            let k = Weight::new(rng.gen_range(max..=max + 20));
            let cold = min_bandwidth_cut_lexicographic(&p, k).unwrap();
            let b_star = p.bottleneck(&cold).unwrap().get();
            // A window around the true B* (as a session would seed after
            // drift) must certify and reproduce the cold cut exactly.
            let delta = rng.gen_range(0..6);
            let warm = min_bandwidth_cut_lexicographic_warm(
                &p,
                k,
                Weight::new(b_star.saturating_sub(delta)),
                Weight::new(b_star + delta),
            )
            .unwrap();
            let warm = warm.expect("window containing B* always certifies");
            assert_eq!(warm, cold, "round={round} nodes={nodes:?} edges={edges:?}");
            certified += 1;
        }
        assert_eq!(certified, 300);
    }

    #[test]
    fn warm_refuses_windows_that_exclude_the_optimum() {
        let p = path(&[5, 5, 5, 5], &[4, 6, 4]);
        let k = Weight::new(10);
        let cold = min_bandwidth_cut_lexicographic(&p, k).unwrap();
        assert_eq!(p.bottleneck(&cold).unwrap(), Weight::new(4));
        // Window entirely above B*: the below-window certificate fails.
        assert!(
            min_bandwidth_cut_lexicographic_warm(&p, k, Weight::new(5), Weight::new(9))
                .unwrap()
                .is_none()
        );
        // Window entirely below B*: the top-of-window probe is infeasible.
        assert!(
            min_bandwidth_cut_lexicographic_warm(&p, k, Weight::ZERO, Weight::new(3))
                .unwrap()
                .is_none()
        );
        // Inverted or empty windows fall back without probing.
        assert!(
            min_bandwidth_cut_lexicographic_warm(&p, k, Weight::new(9), Weight::new(5))
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn warm_errors_match_cold_errors() {
        let p = path(&[1, 9], &[1]);
        assert!(matches!(
            min_bandwidth_cut_lexicographic_warm(&p, Weight::new(8), Weight::ZERO, Weight::MAX),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn empty_cut_ignores_the_limit() {
        let p = path(&[2, 2], &[99]);
        let cut = min_bandwidth_cut_bounded(&p, Weight::new(4), Weight::ZERO)
            .unwrap()
            .unwrap();
        assert!(cut.is_empty());
    }
}
