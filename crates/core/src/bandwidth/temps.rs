//! The paper's TEMP_S algorithm — `O(n + p log q)` bandwidth minimization.
//!
//! This is the headline contribution (§2.3.1 and Appendix A). Non-redundant
//! edges are processed left to right; a double-ended queue TEMP_S keeps one
//! row per distinct "current minimum W-value", each row covering a
//! contiguous run of still-open prime subpaths:
//!
//! * rows are ordered by subpath index, and their W column is strictly
//!   increasing from head (TOP) to tail (BOTTOM) — so the row to merge
//!   into is found by *binary search* in `O(log q_i)`;
//! * when the leftmost open subpath ends, its minimum (W, S) pair is final
//!   and the row range shrinks from the head in `O(1)`;
//! * when a new edge's W-value undercuts a suffix of rows, that suffix is
//!   replaced wholesale by one new row in `O(1)` (plus the binary search).
//!
//! Solution sets are shared structurally (a persistent cons-list arena), so
//! total space stays `O(n)`.

use tgp_graph::{ChainView, CutSet, EdgeId, Weight};

use super::nonredundant::{nonredundant_edges, NrEdge};
use super::prime::prime_subpaths;
use super::stats::BandwidthStats;
use crate::budget::Budget;
use crate::error::PartitionError;

/// How the merge point in TEMP_S is located (the paper's step 2a).
///
/// §2.3.2 observes that "W values will have a tendency to grow towards
/// the end" and suggests that a search exploiting the distribution "may
/// reduce the search time by a log factor". [`MergeSearch::Gallop`]
/// implements that idea: it gallops from the BOTTOM of the queue
/// (exponentially growing steps), so a merge point `d` rows from the end
/// is found in `O(log d)` instead of `O(log len)` — `O(1)` in the common
/// ascending-W case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum MergeSearch {
    /// Plain binary search over the whole live queue (the paper's
    /// Algorithm 4.1 as written).
    #[default]
    Binary,
    /// Exponential (galloping) search from the tail, as the paper's
    /// future-work remark proposes.
    Gallop,
}

/// One row of TEMP_S: prime subpaths `lo..=hi` currently share the minimum
/// W-value `w`, achieved by the solution set `set`.
#[derive(Debug, Clone, Copy)]
struct Row {
    lo: usize,
    hi: usize,
    w: u64,
    set: Option<usize>,
}

/// Internal run of the TEMP_S algorithm with telemetry counters.
struct TempS<'a, C: ChainView> {
    path: &'a C,
    rows: std::collections::VecDeque<Row>,
    arena: Vec<(EdgeId, Option<usize>)>,
    final_cost: Vec<u64>,
    final_set: Vec<Option<usize>>,
    /// Number of prime subpaths that have appeared in a row so far.
    started: usize,
    // Telemetry.
    q_sum: u64,
    deque_len_sum: u64,
    max_deque_len: usize,
}

impl<'a, C: ChainView> TempS<'a, C> {
    fn new(path: &'a C, p: usize) -> Self {
        TempS {
            path,
            rows: std::collections::VecDeque::with_capacity(p.min(1024)),
            arena: Vec::new(),
            final_cost: vec![u64::MAX; p],
            final_set: vec![None; p],
            started: 0,
            q_sum: 0,
            deque_len_sum: 0,
            max_deque_len: 0,
        }
    }

    /// Finalizes every open subpath with index `< upto` (they no longer
    /// contain the edge about to be processed, so their minimum is final).
    fn finalize_below(&mut self, upto: usize) {
        while let Some(front) = self.rows.front_mut() {
            if front.lo >= upto {
                break;
            }
            self.final_cost[front.lo] = front.w;
            self.final_set[front.lo] = front.set;
            front.lo += 1;
            if front.lo > front.hi {
                self.rows.pop_front();
            }
        }
    }

    /// First row index whose W-value is `>= w` (the paper's step 2a);
    /// `rows.len()` if none. The W column is strictly increasing, so the
    /// answer is the partition point of `w_row >= w`.
    fn search(&self, w: u64, policy: MergeSearch) -> usize {
        let len = self.rows.len();
        let (mut lo, mut hi) = match policy {
            MergeSearch::Binary => (0usize, len),
            MergeSearch::Gallop => {
                if len == 0 || self.rows[len - 1].w < w {
                    return len; // nothing to merge — the common fast path
                }
                // rows[len-1].w >= w; gallop towards the front with
                // exponentially growing steps until a probe falls below w
                // (or we run out of rows). Probes: len-1-step.
                let mut step = 1usize;
                loop {
                    if step > len - 1 {
                        // Every probe satisfied >= w; the answer is at or
                        // before the last successful probe.
                        break (0, len - step / 2);
                    }
                    let idx = len - 1 - step;
                    if self.rows[idx].w < w {
                        // Bracketed: rows[idx] < w <= rows[len-1-step/2].
                        break (idx + 1, len - step / 2);
                    }
                    step *= 2;
                }
            }
        };
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.rows[mid].w >= w {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    fn process(&mut self, g: &NrEdge, policy: MergeSearch) {
        let (c, d) = (g.first_prime, g.last_prime);
        self.finalize_below(c);
        let (gamma_cost, gamma_set) = if c == 0 {
            (0, None)
        } else {
            debug_assert_ne!(self.final_cost[c - 1], u64::MAX, "S_γ must be final");
            (self.final_cost[c - 1], self.final_set[c - 1])
        };
        let w = self.path.edge_weight(g.edge).get() + gamma_cost;
        // Merge the suffix of rows whose minimum is beaten (or equalled).
        let s = self.search(w, policy);
        let merged_lo = self.rows.get(s).map(|r| r.lo);
        self.rows.truncate(s);
        // Open any subpaths that start at (or before) this edge.
        let new_subpaths = d >= self.started;
        let hi = if new_subpaths { d } else { self.started - 1 };
        if let Some(lo) = merged_lo {
            let set = Some(self.push_set(g.edge, gamma_set));
            self.rows.push_back(Row { lo, hi, w, set });
        } else if new_subpaths {
            let set = Some(self.push_set(g.edge, gamma_set));
            self.rows.push_back(Row {
                lo: self.started,
                hi,
                w,
                set,
            });
        }
        if new_subpaths {
            self.started = d + 1;
        }
        // Telemetry: q_i is the number of prime subpaths this edge belongs
        // to; the deque length is what the binary search pays for.
        self.q_sum += (d - c + 1) as u64;
        self.deque_len_sum += self.rows.len() as u64;
        self.max_deque_len = self.max_deque_len.max(self.rows.len());
    }

    fn push_set(&mut self, edge: EdgeId, parent: Option<usize>) -> usize {
        self.arena.push((edge, parent));
        self.arena.len() - 1
    }

    fn finish(mut self, p: usize) -> (CutSet, u64, u64, u64, usize, usize) {
        self.finalize_below(p);
        debug_assert!(self.rows.is_empty());
        let mut edges = Vec::new();
        let mut cursor = self.final_set[p - 1];
        while let Some(idx) = cursor {
            let (e, parent) = self.arena[idx];
            edges.push(e);
            cursor = parent;
        }
        (
            CutSet::new(edges),
            self.final_cost[p - 1],
            self.q_sum,
            self.deque_len_sum,
            self.max_deque_len,
            self.arena.len(),
        )
    }
}

/// Minimum-weight feasible cut via the paper's TEMP_S algorithm:
/// `O(n + p log q)` time, `O(n)` space — the headline result of the paper.
///
/// `p` is the number of prime subpaths and `q` the average number of prime
/// subpaths a non-redundant edge belongs to (`q ≤ p ≤ n`). Use
/// [`analyze_bandwidth`] to obtain those quantities alongside the cut.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::bandwidth::min_bandwidth_cut;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pipeline = PathGraph::from_raw(&[4, 4, 4, 4, 4], &[9, 1, 9, 1])?;
/// let cut = min_bandwidth_cut(&pipeline, Weight::new(8))?;
/// assert!(pipeline.is_feasible_cut(&cut, Weight::new(8))?);
/// assert_eq!(pipeline.cut_weight(&cut)?, Weight::new(2));
/// # Ok(())
/// # }
/// ```
pub fn min_bandwidth_cut<C: ChainView>(path: &C, bound: Weight) -> Result<CutSet, PartitionError> {
    Ok(analyze_bandwidth(path, bound)?.0)
}

/// Runs the TEMP_S algorithm and returns both the optimal cut and the
/// instance statistics (`n`, `p`, `q`, TEMP_S occupancy, …) that the
/// paper's Figure 2 plots.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
pub fn analyze_bandwidth<C: ChainView>(
    path: &C,
    bound: Weight,
) -> Result<(CutSet, BandwidthStats), PartitionError> {
    analyze_bandwidth_with(path, bound, MergeSearch::Binary)
}

/// [`analyze_bandwidth`] with an explicit [`MergeSearch`] policy — the
/// ablation hook for the paper's §2.3.2 "k-ary search" future-work idea.
///
/// All policies return cuts of identical weight; only the constant factor
/// of the TEMP_S merge step changes.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
pub fn analyze_bandwidth_with<C: ChainView>(
    path: &C,
    bound: Weight,
    policy: MergeSearch,
) -> Result<(CutSet, BandwidthStats), PartitionError> {
    analyze_bandwidth_budgeted(path, bound, policy, &Budget::unlimited())
}

/// Cost-sliced [`analyze_bandwidth_with`]: the TEMP_S edge loop charges
/// the [`Budget`] one unit per non-redundant edge (plus `n` units for
/// the linear prime-subpath scan), so a mid-solve deadline or cancel
/// surfaces as [`PartitionError::Interrupted`] within one budget stride
/// instead of after the full `O(n + p log q)` run.
///
/// With an unlimited budget the result is identical to the unbudgeted
/// entry point — this *is* the unbudgeted entry point's implementation.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs
/// `bound`; [`PartitionError::Interrupted`] if the budget ran out.
pub fn analyze_bandwidth_budgeted<C: ChainView>(
    path: &C,
    bound: Weight,
    policy: MergeSearch,
    budget: &Budget,
) -> Result<(CutSet, BandwidthStats), PartitionError> {
    budget.check_now()?;
    let primes = prime_subpaths(path, bound)?;
    let n = path.len();
    budget.charge(n as u64)?;
    if primes.is_empty() {
        return Ok((CutSet::empty(), BandwidthStats::trivial(n)));
    }
    let p = primes.len();
    let nr = nonredundant_edges(path, &primes);
    let r = nr.len();
    let mut solver = TempS::new(path, p);
    for g in &nr {
        budget.charge(1)?;
        solver.process(g, policy);
    }
    let (cut, cost, q_sum, deque_len_sum, max_deque_len, _arena) = solver.finish(p);
    debug_assert_eq!(path.cut_weight(&cut).map(|w| w.get()), Ok(cost));
    debug_assert_eq!(path.is_feasible_cut(&cut, bound), Ok(true));
    let prime_edge_len_sum: usize = primes.iter().map(|pr| pr.edge_len()).sum();
    let stats = BandwidthStats::new(
        n,
        p,
        r,
        q_sum,
        prime_edge_len_sum,
        deque_len_sum,
        max_deque_len,
        cost,
        cut.len(),
    );
    Ok((cut, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::{min_bandwidth_cut_naive, min_bandwidth_cut_oracle};
    use tgp_graph::PathGraph;

    fn path(nodes: &[u64], edges: &[u64]) -> PathGraph {
        PathGraph::from_raw(nodes, edges).unwrap()
    }

    #[test]
    fn empty_cut_when_everything_fits() {
        let p = path(&[1, 2, 3], &[10, 10]);
        let (cut, stats) = analyze_bandwidth(&p, Weight::new(6)).unwrap();
        assert!(cut.is_empty());
        assert_eq!(stats.p, 0);
        assert_eq!(stats.r, 0);
    }

    #[test]
    fn budgeted_matches_unbudgeted_and_interrupts_when_expired() {
        use std::time::{Duration, Instant};
        let nodes: Vec<u64> = (0..600).map(|i| 1 + (i % 7)).collect();
        let edges: Vec<u64> = (0..599).map(|i| 1 + (i * 13) % 31).collect();
        let p = path(&nodes, &edges);
        let bound = Weight::new(24);
        let plain = analyze_bandwidth(&p, bound).unwrap();
        let generous = Budget::with_deadline(Instant::now() + Duration::from_secs(3600));
        let budgeted =
            analyze_bandwidth_budgeted(&p, bound, MergeSearch::Binary, &generous).unwrap();
        assert_eq!(plain.0, budgeted.0);
        let expired = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(
            analyze_bandwidth_budgeted(&p, bound, MergeSearch::Binary, &expired),
            Err(PartitionError::Interrupted(_))
        ));
    }

    #[test]
    fn infeasible_bound_errors() {
        let p = path(&[1, 9], &[1]);
        assert!(matches!(
            min_bandwidth_cut(&p, Weight::new(8)),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn forced_single_cut() {
        let p = path(&[4, 4, 4, 4], &[9, 1, 9]);
        let cut = min_bandwidth_cut(&p, Weight::new(8)).unwrap();
        assert_eq!(cut.len(), 1);
        assert!(cut.contains(EdgeId::new(1)));
    }

    #[test]
    fn shared_edge_between_overlapping_primes() {
        let p = path(&[10, 1, 1, 10], &[5, 1, 5]);
        let cut = min_bandwidth_cut(&p, Weight::new(11)).unwrap();
        assert_eq!(cut.len(), 1);
        assert!(cut.contains(EdgeId::new(1)));
    }

    #[test]
    fn tight_bound_cuts_every_edge() {
        let p = path(&[3, 3, 3, 3], &[7, 11, 2]);
        let cut = min_bandwidth_cut(&p, Weight::new(3)).unwrap();
        assert_eq!(cut.len(), 3);
    }

    #[test]
    fn ascending_w_values_stress_the_deque() {
        // Monotone increasing edge weights make every new W-value the
        // largest so far, so rows accumulate (the paper's worst case for
        // TEMP_S length).
        let nodes = vec![5u64; 40];
        let edges: Vec<u64> = (1..40).map(|i| i * 10).collect();
        let p = path(&nodes, &edges);
        let (cut, stats) = analyze_bandwidth(&p, Weight::new(12)).unwrap();
        let oracle = min_bandwidth_cut_oracle(&p, Weight::new(12)).unwrap();
        assert_eq!(p.cut_weight(&cut).unwrap(), p.cut_weight(&oracle).unwrap());
        assert!(stats.max_deque_len >= 1);
    }

    #[test]
    fn descending_w_values_keep_the_deque_short() {
        let nodes = vec![5u64; 40];
        let edges: Vec<u64> = (1..40).rev().map(|i| i * 10).collect();
        let p = path(&nodes, &edges);
        let (cut, stats) = analyze_bandwidth(&p, Weight::new(12)).unwrap();
        let oracle = min_bandwidth_cut_oracle(&p, Weight::new(12)).unwrap();
        assert_eq!(p.cut_weight(&cut).unwrap(), p.cut_weight(&oracle).unwrap());
        assert!(stats.max_deque_len <= 2);
    }

    #[test]
    fn matches_oracle_and_naive_on_random_inputs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31337);
        for round in 0..300 {
            let n = rng.gen_range(1..100);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..12)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..40)).collect();
            let p = path(&nodes, &edges);
            let max = nodes.iter().copied().max().unwrap();
            let k = rng.gen_range(max..=max * 3);
            let ours = min_bandwidth_cut(&p, Weight::new(k)).unwrap();
            let naive = min_bandwidth_cut_naive(&p, Weight::new(k)).unwrap();
            let oracle = min_bandwidth_cut_oracle(&p, Weight::new(k)).unwrap();
            assert!(p.is_feasible_cut(&ours, Weight::new(k)).unwrap());
            let w = |c: &CutSet| p.cut_weight(c).unwrap();
            assert_eq!(
                w(&ours),
                w(&oracle),
                "round={round} nodes={nodes:?} edges={edges:?} k={k}"
            );
            assert_eq!(w(&ours), w(&naive), "round={round}");
        }
    }

    #[test]
    fn gallop_search_matches_binary_everywhere() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x6A110);
        for round in 0..300 {
            let n: usize = rng.gen_range(1..120);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..12)).collect();
            // Mix ascending, descending and random edge-weight shapes so
            // both gallop fast paths and deep merges are exercised.
            let edges: Vec<u64> = match round % 3 {
                0 => (0..n.saturating_sub(1))
                    .map(|i| (i as u64 + 1) * 3)
                    .collect(),
                1 => (0..n.saturating_sub(1))
                    .rev()
                    .map(|i| (i as u64 + 1) * 3)
                    .collect(),
                _ => (0..n.saturating_sub(1))
                    .map(|_| rng.gen_range(0..40))
                    .collect(),
            };
            let p = path(&nodes, &edges);
            let max = nodes.iter().copied().max().unwrap();
            let k = Weight::new(rng.gen_range(max..=max * 3));
            let (a, _) = analyze_bandwidth_with(&p, k, MergeSearch::Binary).unwrap();
            let (b, _) = analyze_bandwidth_with(&p, k, MergeSearch::Gallop).unwrap();
            assert_eq!(
                p.cut_weight(&a).unwrap(),
                p.cut_weight(&b).unwrap(),
                "round={round} nodes={nodes:?} edges={edges:?} k={k}"
            );
            assert!(p.is_feasible_cut(&b, k).unwrap());
        }
    }

    #[test]
    fn stats_relationships_hold() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use tgp_graph::generators::{random_chain, WeightDist};
        let mut rng = SmallRng::seed_from_u64(5);
        let p = random_chain(
            2000,
            WeightDist::Uniform { lo: 1, hi: 100 },
            WeightDist::Uniform { lo: 1, hi: 1000 },
            &mut rng,
        );
        let (_, stats) = analyze_bandwidth(&p, Weight::new(400)).unwrap();
        assert!(stats.p >= 1);
        assert!(stats.p < 2000);
        assert!(stats.r < 2 * stats.p);
        assert!(stats.q_bar >= 1.0);
        assert!(stats.q_bar <= stats.p as f64);
        assert!(stats.p_log_q <= stats.n_log_n);
        assert!(stats.max_deque_len <= stats.p);
    }
}
