//! Bottleneck minimization for tree task graphs (§2.1, Algorithm 2.1).
//!
//! **Problem.** Given a tree `T` with vertex weights `ω` and edge weights
//! `δ`, and a load bound `K`, find a cut `S ⊆ E` such that every component
//! of `T − S` weighs at most `K` and `max_{e∈S} δ(e)` is minimum.
//!
//! Algorithm 2.1 sorts the edges by increasing weight and adds them to `S`
//! one at a time until the components fit the bound. Its correctness rests
//! on monotonicity: adding more (light) edges only shrinks components, so
//! the minimal feasible *prefix* of the sorted edge list is optimal.
//!
//! Two implementations are provided with identical output:
//!
//! * [`min_bottleneck_cut_paper`] — the literal Algorithm 2.1: re-check all
//!   component weights after each insertion; `O(n²)` (matches the paper's
//!   stated complexity).
//! * [`min_bottleneck_cut`] — an optimized equivalent: process edges in
//!   *decreasing* order with a union-find, re-inserting edges into the
//!   tree; the first merge that exceeds `K` pins the minimal feasible
//!   prefix. `O(n log n)` (dominated by the sort).

use tgp_graph::{CutSet, EdgeId, NodeId, Tree, TreeView, UnionFind, UnionFind32, Weight};

use crate::error::{check_bound_nodes, PartitionError};

/// The outcome of bottleneck minimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BottleneckResult {
    /// The minimal feasible prefix of the weight-sorted edge list.
    pub cut: CutSet,
    /// `max_{e∈S} δ(e)` — zero when no cut is needed.
    pub bottleneck: Weight,
}

/// Edge ids sorted by (weight, id); the id tiebreak makes both
/// implementations deterministic and identical.
fn edges_by_weight<T: TreeView>(tree: &T) -> Vec<EdgeId> {
    let mut ids: Vec<EdgeId> = (0..tree.edge_count()).map(EdgeId::new).collect();
    ids.sort_by_key(|&e| (tree.edge_weight(e), e));
    ids
}

fn result_from_prefix<T: TreeView>(tree: &T, sorted: &[EdgeId], prefix: usize) -> BottleneckResult {
    let cut = CutSet::new(sorted[..prefix].to_vec());
    let bottleneck = if prefix == 0 {
        Weight::ZERO
    } else {
        tree.edge_weight(sorted[prefix - 1])
    };
    BottleneckResult { cut, bottleneck }
}

/// [`result_from_prefix`] over the compact `u32` id ordering the
/// optimized solver uses; the cut itself is small (it is the answer),
/// so widening the prefix back to [`EdgeId`]s costs nothing.
fn result_from_compact_prefix<T: TreeView>(
    tree: &T,
    sorted: &[u32],
    prefix: usize,
) -> BottleneckResult {
    let cut = CutSet::new(
        sorted[..prefix]
            .iter()
            .map(|&e| EdgeId::new(e as usize))
            .collect(),
    );
    let bottleneck = if prefix == 0 {
        Weight::ZERO
    } else {
        tree.edge_weight(EdgeId::new(sorted[prefix - 1] as usize))
    };
    BottleneckResult { cut, bottleneck }
}

/// Bottleneck minimization — optimized `O(n log n)` implementation.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::bottleneck::min_bottleneck_cut;
/// use tgp_graph::{Tree, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Tree::from_raw(&[5, 5, 5], &[(0, 1, 9), (1, 2, 2)])?;
/// let r = min_bottleneck_cut(&t, Weight::new(10))?;
/// // Cutting only the weight-2 edge leaves components {5,5} and {5}.
/// assert_eq!(r.bottleneck, Weight::new(2));
/// assert_eq!(r.cut.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn min_bottleneck_cut<T: TreeView>(
    tree: &T,
    bound: Weight,
) -> Result<BottleneckResult, PartitionError> {
    check_bound_nodes(
        (0..tree.len()).map(|i| tree.node_weight(NodeId::new(i))),
        bound,
    )?;
    // The solver's working set is what bounds how far past RAM an
    // out-of-core solve can go (the graph itself streams from its spill
    // file, but these temporaries are anonymous memory): 20 bytes per
    // node — u32 sorted ids (the sort is in-place; keys are unique so
    // an unstable sort is deterministic), a u32 union-find, and the
    // component weights. Graphs beyond u32 indices would not fit any
    // real machine's address space alongside their own weights, and
    // `FlatTreeBuilder` refuses them outright.
    assert!(
        u32::try_from(tree.len()).is_ok(),
        "tree node count exceeds u32 indices"
    );
    let mut sorted: Vec<u32> = (0..tree.edge_count() as u32).collect();
    sorted.sort_unstable_by_key(|&e| (tree.edge_weight(EdgeId::new(e as usize)), e));
    // Re-insert edges from heaviest to lightest. Cutting the prefix
    // `sorted[..i]` keeps exactly the edges `sorted[i..]`; the first merge
    // that exceeds the bound (at sorted index `i0`) proves prefix `i0 + 1`
    // is the minimal feasible one.
    let mut uf = UnionFind32::new(tree.len());
    let mut comp_weight: Vec<u64> = (0..tree.len())
        .map(|i| tree.node_weight(NodeId::new(i)).get())
        .collect();
    for idx in (0..sorted.len()).rev() {
        let e = tree.edge(EdgeId::new(sorted[idx] as usize));
        let (ra, rb) = (uf.find(e.a.index() as u32), uf.find(e.b.index() as u32));
        let merged = comp_weight[ra as usize] + comp_weight[rb as usize];
        if merged > bound.get() {
            return Ok(result_from_compact_prefix(tree, &sorted, idx + 1));
        }
        uf.union(ra, rb);
        let root = uf.find(ra);
        comp_weight[root as usize] = merged;
    }
    // All edges re-inserted without violation: the empty cut is feasible.
    Ok(result_from_compact_prefix(tree, &sorted, 0))
}

/// Bottleneck minimization — the literal Algorithm 2.1, `O(n²)`.
///
/// Kept for fidelity to the paper and as a cross-check for
/// [`min_bottleneck_cut`]; both always return the same cut.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
pub fn min_bottleneck_cut_paper(
    tree: &Tree,
    bound: Weight,
) -> Result<BottleneckResult, PartitionError> {
    check_bound_nodes(tree.node_weights().iter().copied(), bound)?;
    let sorted = edges_by_weight(tree);
    // "for i ← 1 to n−1 do S ← S ∪ {e_i}; if all components ≤ K, output S"
    // — with i = 0 meaning the empty cut, checked first.
    for prefix in 0..=sorted.len() {
        let cut = CutSet::new(sorted[..prefix].to_vec());
        let comps = tree.components(&cut).expect("cut edges are in range");
        if comps.is_feasible(bound) {
            return Ok(result_from_prefix(tree, &sorted, prefix));
        }
    }
    unreachable!("cutting every edge isolates single vertices, all <= bound")
}

/// Whether cutting the prefix `sorted[..prefix]` leaves every component
/// within `bound`. `O(n α(n))` via a union-find over the kept edges.
fn prefix_is_feasible<T: TreeView>(
    tree: &T,
    sorted: &[EdgeId],
    prefix: usize,
    bound: Weight,
) -> bool {
    let mut uf = UnionFind::new(tree.len());
    let mut comp_weight: Vec<u64> = (0..tree.len())
        .map(|i| tree.node_weight(NodeId::new(i)).get())
        .collect();
    for &id in &sorted[prefix..] {
        let e = tree.edge(id);
        let (ra, rb) = (uf.find(e.a.index()), uf.find(e.b.index()));
        let merged = comp_weight[ra] + comp_weight[rb];
        if merged > bound.get() {
            return false;
        }
        uf.union(ra, rb);
        let root = uf.find(ra);
        comp_weight[root] = merged;
    }
    true
}

/// Warm-started variant of [`min_bottleneck_cut`]: the minimal-feasible-
/// prefix search over the weight-sorted edge list is restricted to
/// prefixes whose bottleneck value lies in `[hint_lo, hint_hi]`.
///
/// The window is certified before it is trusted: the prefix just below
/// it must be infeasible and the window's top prefix must be feasible,
/// which together pin the true minimal feasible prefix inside the
/// window (prefix feasibility is monotone — cutting more light edges
/// only shrinks components). `Ok(None)` means a certificate failed and
/// the caller must fall back to [`min_bottleneck_cut`]; `Ok(Some(_))`
/// is guaranteed equal to the cold result.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs
/// `bound` (the cold solve fails identically).
pub fn min_bottleneck_cut_warm<T: TreeView>(
    tree: &T,
    bound: Weight,
    hint_lo: Weight,
    hint_hi: Weight,
) -> Result<Option<BottleneckResult>, PartitionError> {
    check_bound_nodes(
        (0..tree.len()).map(|i| tree.node_weight(NodeId::new(i))),
        bound,
    )?;
    if hint_lo > hint_hi {
        return Ok(None);
    }
    let sorted = edges_by_weight(tree);
    let wts: Vec<Weight> = sorted.iter().map(|&e| tree.edge_weight(e)).collect();
    // Prefix `p` has bottleneck `wts[p - 1]` (zero for the empty cut).
    let p_min = if hint_lo == Weight::ZERO {
        0
    } else {
        wts.partition_point(|&w| w < hint_lo) + 1
    };
    let p_max = wts.partition_point(|&w| w <= hint_hi);
    if p_min > p_max {
        return Ok(None); // no prefix has a bottleneck inside the window
    }
    // Certificates: just below the window infeasible, window top feasible.
    if p_min > 0 && prefix_is_feasible(tree, &sorted, p_min - 1, bound) {
        return Ok(None); // the optimum is below the window
    }
    if !prefix_is_feasible(tree, &sorted, p_max, bound) {
        return Ok(None); // the optimum is above the window
    }
    // Binary search the minimal feasible prefix inside the window.
    let (mut lo, mut hi) = (p_min, p_max);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if prefix_is_feasible(tree, &sorted, mid, bound) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some(result_from_prefix(tree, &sorted, lo)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgp_graph::NodeId;

    fn chain_tree(nodes: &[u64], edges: &[u64]) -> Tree {
        let e: Vec<(usize, usize, u64)> = edges
            .iter()
            .enumerate()
            .map(|(i, &w)| (i, i + 1, w))
            .collect();
        Tree::from_raw(nodes, &e).unwrap()
    }

    #[test]
    fn empty_cut_when_everything_fits() {
        let t = chain_tree(&[1, 2, 3], &[5, 5]);
        for f in [min_bottleneck_cut, min_bottleneck_cut_paper] {
            let r = f(&t, Weight::new(6)).unwrap();
            assert!(r.cut.is_empty());
            assert_eq!(r.bottleneck, Weight::ZERO);
        }
    }

    #[test]
    fn infeasible_bound_errors() {
        let t = chain_tree(&[1, 9], &[1]);
        for f in [min_bottleneck_cut, min_bottleneck_cut_paper] {
            assert!(matches!(
                f(&t, Weight::new(8)),
                Err(PartitionError::BoundTooSmall { .. })
            ));
        }
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::from_raw(&[7], &[]).unwrap();
        for f in [min_bottleneck_cut, min_bottleneck_cut_paper] {
            let r = f(&t, Weight::new(7)).unwrap();
            assert!(r.cut.is_empty());
        }
    }

    #[test]
    fn prefix_includes_all_lighter_edges() {
        // Star with centre 0 (weight 10) and three leaves of weight 10;
        // K = 20 forces at least two leaf cut-offs. The sorted prefix
        // property means the two lightest edges are cut.
        let t = Tree::from_raw(&[10, 10, 10, 10], &[(0, 1, 5), (0, 2, 3), (0, 3, 8)]).unwrap();
        for f in [min_bottleneck_cut, min_bottleneck_cut_paper] {
            let r = f(&t, Weight::new(20)).unwrap();
            assert_eq!(r.cut.len(), 2);
            assert!(r.cut.contains(EdgeId::new(0)));
            assert!(r.cut.contains(EdgeId::new(1)));
            assert_eq!(r.bottleneck, Weight::new(5));
            assert!(t.components(&r.cut).unwrap().is_feasible(Weight::new(20)));
        }
    }

    #[test]
    fn bottleneck_value_is_minimal() {
        // Brute-force check: no feasible cut has a smaller max edge weight.
        let t = Tree::from_raw(
            &[4, 6, 3, 7, 2],
            &[(0, 1, 9), (1, 2, 4), (1, 3, 7), (3, 4, 1)],
        )
        .unwrap();
        let bound = Weight::new(10);
        let r = min_bottleneck_cut(&t, bound).unwrap();
        let m = t.edge_count();
        let mut best: Option<u64> = None;
        for mask in 0u32..(1 << m) {
            let cut: CutSet = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(EdgeId::new)
                .collect();
            if t.components(&cut).unwrap().is_feasible(bound) {
                let b = t.bottleneck(&cut).unwrap().get();
                if best.is_none_or(|x| b < x) {
                    best = Some(b);
                }
            }
        }
        assert_eq!(r.bottleneck.get(), best.unwrap());
    }

    #[test]
    fn implementations_agree_on_random_trees() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..100 {
            let n = rng.gen_range(1..60);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 9 },
                WeightDist::Uniform { lo: 1, hi: 50 },
                &mut rng,
            );
            let k = rng.gen_range(9..=60);
            let fast = min_bottleneck_cut(&t, Weight::new(k)).unwrap();
            let paper = min_bottleneck_cut_paper(&t, Weight::new(k)).unwrap();
            assert_eq!(fast, paper, "n={n} k={k}");
            assert!(t.components(&fast.cut).unwrap().is_feasible(Weight::new(k)));
        }
    }

    #[test]
    fn equal_weight_ties_are_deterministic() {
        let t = Tree::from_raw(&[6, 6, 6], &[(0, 1, 5), (1, 2, 5)]).unwrap();
        let r1 = min_bottleneck_cut(&t, Weight::new(6)).unwrap();
        let r2 = min_bottleneck_cut_paper(&t, Weight::new(6)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.cut.len(), 2); // both edges must go
    }

    #[test]
    fn warm_windows_containing_the_optimum_match_cold() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(0xB0B);
        for round in 0..150 {
            let n = rng.gen_range(1..50);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 9 },
                WeightDist::Uniform { lo: 1, hi: 40 },
                &mut rng,
            );
            let k = Weight::new(rng.gen_range(9..=60));
            let cold = min_bottleneck_cut(&t, k).unwrap();
            let delta = rng.gen_range(0..8);
            let warm = min_bottleneck_cut_warm(
                &t,
                k,
                Weight::new(cold.bottleneck.get().saturating_sub(delta)),
                Weight::new(cold.bottleneck.get() + delta),
            )
            .unwrap()
            .expect("window containing the optimum always certifies");
            assert_eq!(warm, cold, "round={round} n={n} k={k}");
        }
    }

    #[test]
    fn warm_refuses_windows_missing_the_optimum() {
        // Star needing two leaf cut-offs; optimum bottleneck is 5.
        let t = Tree::from_raw(&[10, 10, 10, 10], &[(0, 1, 5), (0, 2, 3), (0, 3, 8)]).unwrap();
        let k = Weight::new(20);
        let cold = min_bottleneck_cut(&t, k).unwrap();
        assert_eq!(cold.bottleneck, Weight::new(5));
        // Window above the optimum: the below-window prefix is feasible.
        assert!(
            min_bottleneck_cut_warm(&t, k, Weight::new(6), Weight::new(9))
                .unwrap()
                .is_none()
        );
        // Window below the optimum: the top prefix is infeasible.
        assert!(min_bottleneck_cut_warm(&t, k, Weight::ZERO, Weight::new(4))
            .unwrap()
            .is_none());
        // Inverted window refuses immediately.
        assert!(
            min_bottleneck_cut_warm(&t, k, Weight::new(9), Weight::new(6))
                .unwrap()
                .is_none()
        );
        // Bound errors still propagate.
        let t2 = Tree::from_raw(&[1, 99], &[(0, 1, 1)]).unwrap();
        assert!(matches!(
            min_bottleneck_cut_warm(&t2, Weight::new(50), Weight::ZERO, Weight::MAX),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn bound_equal_to_total_weight_needs_no_cut() {
        let t = chain_tree(&[5, 5, 5], &[1, 1]);
        let r = min_bottleneck_cut(&t, Weight::new(15)).unwrap();
        assert!(r.cut.is_empty());
    }

    #[test]
    fn error_names_offending_node() {
        let t = chain_tree(&[1, 2, 99], &[1, 1]);
        match min_bottleneck_cut(&t, Weight::new(50)) {
            Err(PartitionError::BoundTooSmall { node, weight, .. }) => {
                assert_eq!(node, NodeId::new(2));
                assert_eq!(weight, Weight::new(99));
            }
            other => panic!("expected BoundTooSmall, got {other:?}"),
        }
    }
}
