//! Exact (pseudo-polynomial) bandwidth minimization on trees.
//!
//! Theorem 1 shows bandwidth minimization under a load bound is
//! NP-complete already for stars, so no polynomial algorithm exists
//! unless P = NP — but the reduction is to *knapsack*, which admits a
//! pseudo-polynomial solution. This module provides the matching
//! pseudo-polynomial tree algorithm: a dynamic program over
//! `(vertex, weight of the still-open component)` states, `O(n·K²)` time
//! and `O(n·K)` space.
//!
//! It completes the paper's complexity picture (polynomial on chains,
//! NP-complete but pseudo-polynomial on trees) and serves as the exact
//! reference the heuristic tree pipeline can be measured against.

use tgp_graph::{CutSet, EdgeId, NodeId, Tree, Weight};

use crate::error::{check_bound, PartitionError};

const INF: u64 = u64::MAX;

/// Exact minimum-weight cut of `tree` such that every component of
/// `T − S` weighs at most `bound`: `O(n·K²)` time, `O(n·K)` space, where
/// `K = bound`.
///
/// Intended for moderate bounds (the state space is proportional to `K`);
/// for chains use [`crate::bandwidth::min_bandwidth_cut`], which is
/// `O(n + p log q)` regardless of `K`.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_core::tree_bandwidth::min_tree_bandwidth_cut;
/// use tgp_graph::{Tree, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A star whose centre plus all leaves exceed K = 10: cutting the
/// // cheapest sufficient set of edges is a knapsack choice.
/// let star = Tree::from_raw(&[2, 6, 5, 4], &[(0, 1, 9), (0, 2, 3), (0, 3, 5)])?;
/// let cut = min_tree_bandwidth_cut(&star, Weight::new(10))?;
/// // Keep the expensive-uplink leaf (6): 2 + 6 = 8 <= 10; cut 3 + 5 = 8.
/// assert_eq!(star.cut_weight(&cut)?, Weight::new(8));
/// # Ok(())
/// # }
/// ```
pub fn min_tree_bandwidth_cut(tree: &Tree, bound: Weight) -> Result<CutSet, PartitionError> {
    check_bound(tree.node_weights(), bound)?;
    if tree.total_weight() <= bound {
        return Ok(CutSet::empty());
    }
    let k = usize::try_from(bound.get()).expect("pseudo-polynomial solver needs K to fit usize");
    let root = NodeId::new(0);
    let order = tree.post_order(root);
    let parent = tree.parents(root);
    let n = tree.len();
    // dp[v][w] = min cut cost inside subtree(v) such that the component
    // containing v (within the subtree) weighs exactly w. Children are
    // merged one at a time; `steps[v]` keeps the intermediate tables for
    // reconstruction.
    let mut dp: Vec<Vec<u64>> = vec![Vec::new(); n];
    // For each node: the ordered child list actually merged, and the DP
    // table *before* each merge (the table after the last merge is
    // dp[v]).
    let mut merge_children: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
    let mut steps: Vec<Vec<Vec<u64>>> = vec![Vec::new(); n];
    // best[c] = min over w of dp[c][w] (cost of finishing child c's
    // subtree when its uplink is cut).
    let mut best: Vec<u64> = vec![INF; n];
    for &v in &order {
        let vi = v.index();
        let wv = usize::try_from(tree.node_weight(v).get()).expect("node weight <= K fits");
        let mut table = vec![INF; k + 1];
        table[wv] = 0;
        for &(u, e) in tree.neighbors(v) {
            if parent[vi].is_some_and(|(p, _)| u == p) {
                continue;
            }
            steps[vi].push(table.clone());
            merge_children[vi].push((u, e));
            let child = &dp[u.index()];
            let child_best = best[u.index()];
            let beta = tree.edge_weight(e).get();
            let mut next = vec![INF; k + 1];
            for (w, &cost) in table.iter().enumerate() {
                if cost == INF {
                    continue;
                }
                // Cut the uplink: the child's component is sealed.
                if child_best < INF {
                    let cand = cost + child_best + beta;
                    if cand < next[w] {
                        next[w] = cand;
                    }
                }
                // Keep the uplink: weights add.
                for (wc, &ccost) in child.iter().enumerate() {
                    if ccost == INF || w + wc > k {
                        continue;
                    }
                    let cand = cost + ccost;
                    if cand < next[w + wc] {
                        next[w + wc] = cand;
                    }
                }
            }
            table = next;
        }
        best[vi] = table.iter().copied().min().expect("non-empty table");
        debug_assert_ne!(best[vi], INF, "K >= max vertex weight keeps states alive");
        dp[vi] = table;
    }
    // Reconstruct: walk down deciding (component weight at v, child
    // decisions) from the stored intermediate tables.
    let root_w = argmin(&dp[root.index()]);
    let mut cut = Vec::new();
    let mut stack = vec![(root, root_w)];
    while let Some((v, w_target)) = stack.pop() {
        let vi = v.index();
        // Undo the merges right-to-left: find, for each merge step, the
        // split of (weight, cost) between the prefix table and the child.
        let mut w = w_target;
        let mut cost = dp[vi][w];
        for (step_idx, &(c, e)) in merge_children[vi].iter().enumerate().rev() {
            let before = &steps[vi][step_idx];
            let child = &dp[c.index()];
            let child_best = best[c.index()];
            let beta = tree.edge_weight(e).get();
            // Option 1: uplink cut — prefix keeps (w, cost - child_best - beta).
            let cut_works =
                child_best < INF && before[w] < INF && cost == before[w] + child_best + beta;
            if cut_works {
                cut.push(e);
                let wc = argmin(child);
                stack.push((c, wc));
                cost = before[w];
                continue;
            }
            // Option 2: uplink kept — find wc with
            // before[w - wc] + child[wc] == cost.
            let mut found = false;
            for (wc, &ccost) in child.iter().enumerate() {
                if ccost == INF || wc > w {
                    continue;
                }
                if before[w - wc] < INF && before[w - wc] + ccost == cost {
                    stack.push((c, wc));
                    w -= wc;
                    cost = before[w];
                    found = true;
                    break;
                }
            }
            debug_assert!(found, "DP reconstruction must find a witness");
        }
    }
    let cut = CutSet::new(cut);
    debug_assert!(tree
        .components(&cut)
        .expect("cut edges in range")
        .is_feasible(bound));
    Ok(cut)
}

fn argmin(table: &[u64]) -> usize {
    let mut best = 0;
    for (w, &c) in table.iter().enumerate() {
        if c < table[best] {
            best = w;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::min_bandwidth_cut;
    use crate::knapsack::min_star_bandwidth_cut;
    use crate::pipeline::tree_from_path;
    use tgp_graph::PathGraph;

    fn brute(tree: &Tree, bound: Weight) -> u64 {
        let m = tree.edge_count();
        let mut best = u64::MAX;
        for mask in 0u32..(1 << m) {
            let cut: CutSet = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(EdgeId::new)
                .collect();
            if tree.components(&cut).unwrap().is_feasible(bound) {
                best = best.min(tree.cut_weight(&cut).unwrap().get());
            }
        }
        best
    }

    #[test]
    fn empty_cut_when_everything_fits() {
        let t = Tree::from_raw(&[1, 2, 3], &[(0, 1, 5), (1, 2, 5)]).unwrap();
        assert!(min_tree_bandwidth_cut(&t, Weight::new(6))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn infeasible_bound_errors() {
        let t = Tree::from_raw(&[1, 9], &[(0, 1, 1)]).unwrap();
        assert!(matches!(
            min_tree_bandwidth_cut(&t, Weight::new(8)),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    fn matches_brute_force_on_random_trees() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(0x7BDB);
        for round in 0..150 {
            let n: usize = rng.gen_range(1..12);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 9 },
                WeightDist::Uniform { lo: 0, hi: 12 },
                &mut rng,
            );
            let k = rng.gen_range(9u64..40);
            let cut = min_tree_bandwidth_cut(&t, Weight::new(k)).unwrap();
            assert!(t.components(&cut).unwrap().is_feasible(Weight::new(k)));
            assert_eq!(
                t.cut_weight(&cut).unwrap().get(),
                brute(&t, Weight::new(k)),
                "round={round}"
            );
        }
    }

    #[test]
    fn agrees_with_knapsack_solver_on_stars() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x57A7);
        for _ in 0..60 {
            let leaves: usize = rng.gen_range(1..10);
            let mut nodes = vec![rng.gen_range(0u64..4)];
            nodes.extend((0..leaves).map(|_| rng.gen_range(1u64..10)));
            let edges: Vec<(usize, usize, u64)> = (0..leaves)
                .map(|i| (0, i + 1, rng.gen_range(0u64..20)))
                .collect();
            let star = Tree::from_raw(&nodes, &edges).unwrap();
            let k = rng.gen_range(nodes.iter().copied().max().unwrap()..30);
            let dp_cut = min_tree_bandwidth_cut(&star, Weight::new(k)).unwrap();
            let ks_cut = min_star_bandwidth_cut(&star, Weight::new(k)).unwrap();
            assert_eq!(
                star.cut_weight(&dp_cut).unwrap(),
                star.cut_weight(&ks_cut).unwrap()
            );
        }
    }

    #[test]
    fn agrees_with_chain_solver_on_paths() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xC4A1);
        for _ in 0..60 {
            let n: usize = rng.gen_range(1..30);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..20)).collect();
            let path = PathGraph::from_raw(&nodes, &edges).unwrap();
            let tree = tree_from_path(&path);
            let k = rng.gen_range(nodes.iter().copied().max().unwrap()..60);
            let tree_cut = min_tree_bandwidth_cut(&tree, Weight::new(k)).unwrap();
            let chain_cut = min_bandwidth_cut(&path, Weight::new(k)).unwrap();
            assert_eq!(
                tree.cut_weight(&tree_cut).unwrap(),
                path.cut_weight(&chain_cut).unwrap()
            );
        }
    }

    #[test]
    fn tree_pipeline_is_never_better_than_exact() {
        use crate::pipeline::partition_tree;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(0xE8A);
        for _ in 0..40 {
            let n: usize = rng.gen_range(2..30);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 8 },
                WeightDist::Uniform { lo: 0, hi: 15 },
                &mut rng,
            );
            let k = rng.gen_range(8u64..50);
            let exact = min_tree_bandwidth_cut(&t, Weight::new(k)).unwrap();
            let heuristic = partition_tree(&t, Weight::new(k)).unwrap();
            assert!(
                t.cut_weight(&exact).unwrap() <= heuristic.bandwidth,
                "exact must lower-bound the heuristic pipeline"
            );
        }
    }
}
