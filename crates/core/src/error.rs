//! Error type for the partitioning algorithms.

use std::error::Error;
use std::fmt;

use tgp_graph::{GraphError, NodeId, Weight};

/// Errors produced by the partitioning algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The load bound `K` is smaller than some single vertex weight, so no
    /// partition can satisfy the execution-time bound (the paper assumes
    /// `K > max_i α_i`).
    BoundTooSmall {
        /// A vertex whose weight exceeds the bound.
        node: NodeId,
        /// That vertex's weight.
        weight: Weight,
        /// The offending bound.
        bound: Weight,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// A budgeted solve stopped cooperatively before finishing: its
    /// [`Budget`](crate::budget::Budget) refused further work.
    Interrupted(crate::budget::Exceeded),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::BoundTooSmall {
                node,
                weight,
                bound,
            } => write!(
                f,
                "load bound {bound} is smaller than the weight {weight} of node {node}; \
                 no feasible partition exists"
            ),
            PartitionError::Graph(e) => write!(f, "graph error: {e}"),
            PartitionError::Interrupted(why) => write!(f, "solve interrupted: {why}"),
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::Graph(e) => Some(e),
            PartitionError::BoundTooSmall { .. } | PartitionError::Interrupted(_) => None,
        }
    }
}

impl From<GraphError> for PartitionError {
    fn from(e: GraphError) -> Self {
        PartitionError::Graph(e)
    }
}

impl From<crate::budget::Exceeded> for PartitionError {
    fn from(e: crate::budget::Exceeded) -> Self {
        PartitionError::Interrupted(e)
    }
}

/// Checks the paper's standing feasibility precondition `K ≥ max_i α_i`.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] naming the first over-weight vertex.
pub(crate) fn check_bound(node_weights: &[Weight], bound: Weight) -> Result<(), PartitionError> {
    check_bound_nodes(node_weights.iter().copied(), bound)
}

/// [`check_bound`] over any weight sequence — the solver hot paths are
/// generic over graph views, which expose weights by index rather than
/// as a slice. Names the first over-weight vertex in iteration order,
/// exactly as [`check_bound`] does.
pub(crate) fn check_bound_nodes<I>(weights: I, bound: Weight) -> Result<(), PartitionError>
where
    I: IntoIterator<Item = Weight>,
{
    for (i, w) in weights.into_iter().enumerate() {
        if w > bound {
            return Err(PartitionError::BoundTooSmall {
                node: NodeId::new(i),
                weight: w,
                bound,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_check_accepts_equal_weights() {
        let ws = [Weight::new(3), Weight::new(5)];
        assert!(check_bound(&ws, Weight::new(5)).is_ok());
    }

    #[test]
    fn bound_check_names_first_offender() {
        let ws = [Weight::new(3), Weight::new(9), Weight::new(11)];
        let err = check_bound(&ws, Weight::new(8)).unwrap_err();
        assert_eq!(
            err,
            PartitionError::BoundTooSmall {
                node: NodeId::new(1),
                weight: Weight::new(9),
                bound: Weight::new(8),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("v1"));
        assert!(msg.contains('9'));
        assert!(msg.contains('8'));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        let err: PartitionError = GraphError::Empty.into();
        assert!(matches!(err, PartitionError::Graph(GraphError::Empty)));
        assert!(Error::source(&err).is_some());
        let bound_err = PartitionError::BoundTooSmall {
            node: NodeId::new(0),
            weight: Weight::new(2),
            bound: Weight::new(1),
        };
        assert!(Error::source(&bound_err).is_none());
    }
}
