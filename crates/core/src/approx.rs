//! Partitioning general process graphs via super-graph approximation.
//!
//! The paper's algorithms are exact for chains and trees; its conclusion
//! extends them to general systems: "more general cases may be
//! approximated by generating a linear or tree supergraph of the original
//! process graph". This module implements both routes behind one API:
//!
//! * **linear** ([`ApproxMethod::LinearIdentity`],
//!   [`ApproxMethod::LinearBfs`]) — arrange the processes on a line,
//!   build the boundary-weighted chain
//!   ([`tgp_graph::supergraph`]), and run the exact `O(n + p log q)`
//!   bandwidth minimization;
//! * **tree** ([`ApproxMethod::SpanningTree`]) — keep a maximum-weight
//!   spanning tree ([`tgp_graph::spanning`]) and minimize bandwidth on it
//!   with the exact pseudo-polynomial DP
//!   ([`crate::tree_bandwidth`]) while the `n·K` state space is
//!   affordable, falling back to the polynomial bottleneck + processor
//!   minimization pipeline for huge bounds. (Exact bandwidth minimization
//!   on trees is NP-complete — Theorem 1 — so pseudo-polynomial is the
//!   best possible.)
//!
//! Every candidate is scored by its *true* cut cost on the original
//! graph, so [`partition_process_graph_best`] can fairly pick the winner.

use tgp_graph::spanning::tree_supergraph;
use tgp_graph::supergraph::{linear_supergraph, LinearOrdering};
use tgp_graph::{NodeId, ProcessGraph, Weight};

use crate::error::PartitionError;
use crate::pipeline::{partition_chain, partition_tree};

/// Which super-graph approximation to use for a general process graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ApproxMethod {
    /// Linear super-graph over the natural node order (best when the
    /// system is already pipeline- or ring-shaped).
    LinearIdentity,
    /// Linear super-graph over a BFS order from a pseudo-peripheral node.
    LinearBfs,
    /// Maximum-weight spanning tree, bandwidth-minimized exactly with the
    /// pseudo-polynomial DP when affordable (bottleneck + processor
    /// minimization pipeline otherwise).
    SpanningTree,
}

impl ApproxMethod {
    /// All methods, in the order [`partition_process_graph_best`] tries
    /// them.
    pub const ALL: [ApproxMethod; 3] = [
        ApproxMethod::LinearIdentity,
        ApproxMethod::LinearBfs,
        ApproxMethod::SpanningTree,
    ];
}

/// A partition of a general process graph into load-bounded parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessPartition {
    /// `part_of[v]` = part hosting process `v`.
    pub part_of: Vec<usize>,
    /// Number of parts (processors).
    pub parts: usize,
    /// Total vertex weight per part.
    pub part_weights: Vec<Weight>,
    /// True total weight of graph edges crossing parts (evaluated on the
    /// original graph, not the super-graph).
    pub cut_weight: Weight,
    /// The approximation that produced this partition.
    pub method: ApproxMethod,
}

impl ProcessPartition {
    /// The heaviest part.
    pub fn max_part_weight(&self) -> Weight {
        self.part_weights
            .iter()
            .copied()
            .max()
            .unwrap_or(Weight::ZERO)
    }

    fn from_assignment(
        g: &ProcessGraph,
        part_of: Vec<usize>,
        method: ApproxMethod,
    ) -> ProcessPartition {
        let parts = part_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut part_weights = vec![Weight::ZERO; parts];
        for (v, &p) in part_of.iter().enumerate() {
            part_weights[p] += g.node_weight(NodeId::new(v));
        }
        let mut cut_weight = Weight::ZERO;
        for e in g.edges() {
            if part_of[e.a.index()] != part_of[e.b.index()] {
                cut_weight += e.weight;
            }
        }
        ProcessPartition {
            part_of,
            parts,
            part_weights,
            cut_weight,
            method,
        }
    }
}

/// Partitions a general process graph under a per-part load bound using
/// the given approximation.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if some process alone outweighs the
/// bound (no approximation can fix that).
///
/// # Examples
///
/// ```
/// use tgp_core::approx::{partition_process_graph, ApproxMethod};
/// use tgp_graph::{ProcessGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ring = ProcessGraph::from_raw(
///     &[3, 3, 3, 3],
///     &[(0, 1, 10), (1, 2, 10), (2, 3, 10), (3, 0, 10)],
/// )?;
/// let part = partition_process_graph(&ring, Weight::new(6), ApproxMethod::LinearIdentity)?;
/// assert!(part.max_part_weight() <= Weight::new(6));
/// # Ok(())
/// # }
/// ```
pub fn partition_process_graph(
    g: &ProcessGraph,
    bound: Weight,
    method: ApproxMethod,
) -> Result<ProcessPartition, PartitionError> {
    let part_of = match method {
        ApproxMethod::LinearIdentity | ApproxMethod::LinearBfs => {
            let ordering = if method == ApproxMethod::LinearIdentity {
                LinearOrdering::Identity
            } else {
                LinearOrdering::BfsFromPeriphery
            };
            let sup = linear_supergraph(g, ordering)?;
            let part = partition_chain(sup.path(), bound)?;
            let mut part_of = vec![0usize; g.len()];
            for (idx, seg) in part.segments.iter().enumerate() {
                for pos in seg.start..=seg.end {
                    part_of[sup.process_at(pos).index()] = idx;
                }
            }
            part_of
        }
        ApproxMethod::SpanningTree => {
            let sup = tree_supergraph(g);
            // Prefer the exact pseudo-polynomial bandwidth DP while its
            // n·K state space is affordable; fall back to the polynomial
            // bottleneck + procmin pipeline for huge bounds.
            const STATE_BUDGET: u128 = 20_000_000;
            let states = g.len() as u128 * (u128::from(bound.get()) + 1);
            if states <= STATE_BUDGET {
                let cut = crate::tree_bandwidth::min_tree_bandwidth_cut(sup.tree(), bound)?;
                let comps = sup.components(&cut);
                (0..g.len())
                    .map(|v| comps.component_of(NodeId::new(v)))
                    .collect()
            } else {
                let part = partition_tree(sup.tree(), bound)?;
                (0..g.len())
                    .map(|v| part.components.component_of(NodeId::new(v)))
                    .collect()
            }
        }
    };
    Ok(ProcessPartition::from_assignment(g, part_of, method))
}

/// Tries every [`ApproxMethod`] and returns the partition with the lowest
/// true cut weight (ties: fewer parts, then method order).
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if some process alone outweighs the
/// bound.
pub fn partition_process_graph_best(
    g: &ProcessGraph,
    bound: Weight,
) -> Result<ProcessPartition, PartitionError> {
    let mut best: Option<ProcessPartition> = None;
    for method in ApproxMethod::ALL {
        let candidate = partition_process_graph(g, bound, method)?;
        let better = match &best {
            None => true,
            Some(b) => (candidate.cut_weight, candidate.parts) < (b.cut_weight, b.parts),
        };
        if better {
            best = Some(candidate);
        }
    }
    Ok(best.expect("at least one method ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, node_w: u64, edge_w: u64) -> ProcessGraph {
        let nodes = vec![node_w; n];
        let edges: Vec<(usize, usize, u64)> = (0..n).map(|i| (i, (i + 1) % n, edge_w)).collect();
        ProcessGraph::from_raw(&nodes, &edges).unwrap()
    }

    #[test]
    fn all_methods_respect_the_bound() {
        let g = ring(12, 5, 7);
        for method in ApproxMethod::ALL {
            let part = partition_process_graph(&g, Weight::new(20), method).unwrap();
            assert!(part.max_part_weight() <= Weight::new(20), "{method:?}");
            assert_eq!(part.part_of.len(), 12);
            assert!(part.part_of.iter().all(|&p| p < part.parts));
            let total: Weight = part.part_weights.iter().copied().sum();
            assert_eq!(total, g.total_weight());
        }
    }

    #[test]
    fn bound_too_small_errors() {
        let g = ring(4, 9, 1);
        for method in ApproxMethod::ALL {
            assert!(matches!(
                partition_process_graph(&g, Weight::new(8), method),
                Err(PartitionError::BoundTooSmall { .. })
            ));
        }
    }

    #[test]
    fn identity_order_wins_on_rings() {
        // On a uniform ring the identity order cuts exactly where needed;
        // BFS interleaves the two directions and pays for it.
        let g = ring(32, 1, 10);
        let best = partition_process_graph_best(&g, Weight::new(8)).unwrap();
        let ident =
            partition_process_graph(&g, Weight::new(8), ApproxMethod::LinearIdentity).unwrap();
        assert_eq!(best.cut_weight, ident.cut_weight);
    }

    #[test]
    fn spanning_tree_wins_on_star_heavy_graphs() {
        // A hub with heavy spokes plus a light ring among the leaves: the
        // spanning tree keeps the spokes, so the tree pipeline can cut
        // only light ring edges... whereas any linear order must separate
        // hub from some heavy spoke.
        let mut edges: Vec<(usize, usize, u64)> = (1..9).map(|i| (0, i, 100)).collect();
        for i in 1..8 {
            edges.push((i, i + 1, 1));
        }
        let nodes = vec![4u64; 9];
        let g = ProcessGraph::from_raw(&nodes, &edges).unwrap();
        let tree_part =
            partition_process_graph(&g, Weight::new(20), ApproxMethod::SpanningTree).unwrap();
        let best = partition_process_graph_best(&g, Weight::new(20)).unwrap();
        assert!(best.cut_weight <= tree_part.cut_weight);
        // The best choice never loses to any single method.
        for method in ApproxMethod::ALL {
            let p = partition_process_graph(&g, Weight::new(20), method).unwrap();
            assert!(best.cut_weight <= p.cut_weight, "{method:?}");
        }
    }

    #[test]
    fn loose_bound_yields_single_part() {
        let g = ring(6, 2, 3);
        let part = partition_process_graph_best(&g, Weight::new(12)).unwrap();
        assert_eq!(part.parts, 1);
        assert_eq!(part.cut_weight, Weight::ZERO);
    }

    #[test]
    fn single_process_graph() {
        let g = ProcessGraph::from_raw(&[5], &[]).unwrap();
        for method in ApproxMethod::ALL {
            let part = partition_process_graph(&g, Weight::new(5), method).unwrap();
            assert_eq!(part.parts, 1);
        }
    }
}
