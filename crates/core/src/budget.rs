//! Cooperative cost-slicing for long solves.
//!
//! A [`Budget`] is handed to a budgeted solver entry point and charged
//! once per unit of work (a processed edge, a probe, a DP cell). Every
//! `stride` units the budget actually looks at the clock and the cancel
//! flag, so the common case costs one counter decrement — cheap enough
//! to sit inside the paper's `O(n + p log q)` hot loops — while a
//! million-node adversarial solve still notices an expired deadline
//! within a bounded number of work units instead of head-of-line
//! blocking a worker until it finishes.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default number of work units between real deadline/cancel checks.
///
/// Chosen so the check amortizes to noise (one `Instant::now()` per
/// ~16k edge visits) while a 50 ms deadline is still observed within a
/// fraction of a millisecond of solver progress.
pub const DEFAULT_STRIDE: u64 = 16 * 1024;

/// Why a [`Budget`] refused further work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cooperative cancel flag was raised.
    Cancelled,
}

impl std::fmt::Display for Exceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exceeded::Deadline => write!(f, "deadline exceeded"),
            Exceeded::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for Exceeded {}

/// A cooperative work budget: an optional wall-clock deadline plus an
/// optional external cancel flag, checked every `stride` work units.
///
/// One budget serves one solve; it is intentionally `!Sync` (interior
/// `Cell` counters) — concurrent batch items each build their own from
/// the same shared cancel flag.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    stride: u64,
    until_check: Cell<u64>,
}

impl Budget {
    /// A budget that never expires and cannot be cancelled. Charges
    /// against it are a single branch.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            cancel: None,
            stride: DEFAULT_STRIDE,
            until_check: Cell::new(DEFAULT_STRIDE),
        }
    }

    /// A budget that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Budget::unlimited()
        }
    }

    /// Attaches a cooperative cancel flag; raising it fails the next
    /// real check with [`Exceeded::Cancelled`].
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Overrides the check stride (work units between real checks).
    /// A stride of 0 checks on every charge.
    #[must_use]
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride;
        self.until_check.set(stride);
        self
    }

    /// Whether this budget can ever refuse work. `false` lets callers
    /// skip building budgeted state entirely.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Milliseconds until the deadline, saturating at zero. `None` when
    /// the budget has no deadline.
    pub fn remaining_ms(&self) -> Option<u64> {
        self.deadline.map(|d| {
            let now = Instant::now();
            if d <= now {
                0
            } else {
                u64::try_from((d - now).as_millis()).unwrap_or(u64::MAX)
            }
        })
    }

    /// Charges `units` of work. Most calls only decrement a counter;
    /// once `stride` units accumulate the clock and the cancel flag are
    /// actually consulted.
    #[inline]
    pub fn charge(&self, units: u64) -> Result<(), Exceeded> {
        if !self.is_limited() {
            return Ok(());
        }
        let left = self.until_check.get();
        if left > units {
            self.until_check.set(left - units);
            return Ok(());
        }
        self.until_check.set(self.stride);
        self.check_now()
    }

    /// Consults the cancel flag and the clock immediately, bypassing
    /// the stride counter.
    pub fn check_now(&self) -> Result<(), Exceeded> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(Exceeded::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Exceeded::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_refuses() {
        let b = Budget::unlimited();
        for _ in 0..1_000 {
            assert_eq!(b.charge(u64::MAX), Ok(()));
        }
        assert!(!b.is_limited());
        assert_eq!(b.remaining_ms(), None);
    }

    #[test]
    fn expired_deadline_fails_within_one_stride() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        // Charges below the stride pass on the fast path...
        assert_eq!(b.charge(1), Ok(()));
        // ...but at most `stride` units later the clock is consulted.
        let mut refused = false;
        for _ in 0..=2 * DEFAULT_STRIDE {
            if b.charge(1).is_err() {
                refused = true;
                break;
            }
        }
        assert!(refused, "expired budget must refuse within one stride");
        assert_eq!(b.check_now(), Err(Exceeded::Deadline));
        assert_eq!(b.remaining_ms(), Some(0));
    }

    #[test]
    fn generous_deadline_passes() {
        let b = Budget::with_deadline(Instant::now() + Duration::from_secs(3600));
        for _ in 0..10 * DEFAULT_STRIDE {
            assert_eq!(b.charge(1), Ok(()));
        }
        assert!(b.remaining_ms().unwrap() > 3_000_000);
    }

    #[test]
    fn cancel_flag_wins_over_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::with_deadline(Instant::now() - Duration::from_millis(1))
            .with_cancel(Arc::clone(&flag));
        assert_eq!(b.check_now(), Err(Exceeded::Deadline));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(b.check_now(), Err(Exceeded::Cancelled));
    }

    #[test]
    fn zero_stride_checks_every_charge() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_millis(1)).with_stride(0);
        assert_eq!(b.charge(1), Err(Exceeded::Deadline));
    }

    #[test]
    fn oversized_charge_triggers_immediate_check() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.charge(DEFAULT_STRIDE + 1), Err(Exceeded::Deadline));
    }
}
