//! Processor minimization for tree task graphs (§2.2, Algorithm 2.2).
//!
//! **Problem.** Given a tree `T` with vertex weights and a load bound `K`,
//! find an edge cut `S` such that every component of `T − S` weighs at most
//! `K` and the number of components (= `|S| + 1`, processors needed) is
//! minimum.
//!
//! Algorithm 2.2 repeatedly takes an internal node `v` adjacent to at most
//! one other internal node, absorbs its adjacent leaves if the combined
//! cluster fits the bound, and otherwise cuts off the *heaviest* leaves
//! until it fits (a generalization of the star-graph case, adapted from
//! Bagga et al.'s edge-integrity algorithm).
//!
//! Two implementations with equal component counts are provided:
//!
//! * [`proc_min`] — an iterative post-order formulation (children are
//!   always processed before their parent, at which point they behave as
//!   the paper's "leaves"); `O(n log n)` from sorting each node's child
//!   weights, robust to million-node trees.
//! * [`proc_min_paper`] — a literal work-list transcription of the paper's
//!   recursion (prune-and-reweigh on an explicitly mutated tree), used for
//!   cross-checking.

use tgp_graph::{CutSet, EdgeId, NodeId, Tree, Weight};

use crate::error::{check_bound, PartitionError};

/// The outcome of processor minimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcMinResult {
    /// The edges cut.
    pub cut: CutSet,
    /// Number of components (`cut.len() + 1`) — the minimum number of
    /// processors needed under the load bound.
    pub component_count: usize,
}

/// Processor minimization — iterative post-order implementation,
/// `O(n log n)`.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`
/// (no feasible partition exists).
///
/// # Examples
///
/// ```
/// use tgp_core::procmin::proc_min;
/// use tgp_graph::{Tree, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A star whose total weight 16 exceeds K = 10: cut the heaviest leaf.
/// let t = Tree::from_raw(&[1, 2, 6, 7], &[(0, 1, 1), (0, 2, 1), (0, 3, 1)])?;
/// let r = proc_min(&t, Weight::new(10))?;
/// assert_eq!(r.component_count, 2);
/// # Ok(())
/// # }
/// ```
pub fn proc_min(tree: &Tree, bound: Weight) -> Result<ProcMinResult, PartitionError> {
    check_bound(tree.node_weights(), bound)?;
    let root = NodeId::new(0);
    let order = tree.post_order(root);
    let parent = tree.parents(root);
    // residual[v] = weight of the cluster rooted at v that is still
    // attached to v's parent after processing v's subtree.
    let mut residual: Vec<u64> = tree.node_weights().iter().map(|w| w.get()).collect();
    let mut cut_edges: Vec<EdgeId> = Vec::new();
    // Child clusters pending absorption, collected per node.
    let mut pending: Vec<Vec<(u64, EdgeId)>> = vec![Vec::new(); tree.len()];
    for &v in &order {
        let mut w: u64 = tree.node_weight(v).get();
        for &(child_w, _) in &pending[v.index()] {
            w += child_w;
        }
        if w > bound.get() {
            // Cut the heaviest child clusters until the rest fits
            // (the paper's step 5; minimal r by taking heaviest first).
            pending[v.index()].sort_unstable_by_key(|&(w, _)| std::cmp::Reverse(w));
            for &(child_w, edge) in &pending[v.index()] {
                if w <= bound.get() {
                    break;
                }
                cut_edges.push(edge);
                w -= child_w;
            }
            debug_assert!(
                w <= bound.get(),
                "cutting every child leaves w = ω(v) <= bound"
            );
        }
        residual[v.index()] = w;
        if let Some((p, e)) = parent[v.index()] {
            pending[p.index()].push((w, e));
        }
    }
    let cut = CutSet::new(cut_edges);
    let component_count = cut.len() + 1;
    debug_assert!(tree
        .components(&cut)
        .expect("cut edges are in range")
        .is_feasible(bound));
    Ok(ProcMinResult {
        cut,
        component_count,
    })
}

/// Processor minimization — literal work-list transcription of the paper's
/// Algorithm 2.2 (prune-and-reweigh).
///
/// Always produces the same *number* of components as [`proc_min`] (both
/// are optimal); the cut edge sets may differ when several optima exist.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if a single vertex outweighs `bound`.
pub fn proc_min_paper(tree: &Tree, bound: Weight) -> Result<ProcMinResult, PartitionError> {
    check_bound(tree.node_weights(), bound)?;
    let n = tree.len();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = (0..n).map(|v| tree.degree(NodeId::new(v))).collect();
    let mut weight: Vec<u64> = tree.node_weights().iter().map(|w| w.get()).collect();
    let is_internal = |degree: &[usize], alive: &[bool], v: usize| alive[v] && degree[v] >= 2;
    // internal_degree[v] = number of internal neighbours of v.
    let internal_count = |v: usize| {
        tree.neighbors(NodeId::new(v))
            .iter()
            .filter(|&&(u, _)| is_internal(&degree, &alive, u.index()))
            .count()
    };
    let mut internal_degree: Vec<usize> = (0..n).map(internal_count).collect();
    // Work list: internal nodes adjacent to at most one internal node
    // (the paper's step 2). Entries are re-validated when popped.
    let mut queue: Vec<usize> = (0..n)
        .filter(|&v| is_internal(&degree, &alive, v) && internal_degree[v] <= 1)
        .collect();
    let mut cut_edges: Vec<EdgeId> = Vec::new();
    let mut alive_count = n;
    while let Some(v) = queue.pop() {
        if !is_internal(&degree, &alive, v) || internal_degree[v] > 1 {
            continue; // stale entry
        }
        // Gather the alive leaf neighbours of v and its (≤1) internal one.
        let mut leaves: Vec<(u64, EdgeId, usize)> = Vec::new();
        let mut internal_neighbor: Option<usize> = None;
        for &(u, e) in tree.neighbors(NodeId::new(v)) {
            if !alive[u.index()] {
                continue;
            }
            if is_internal(&degree, &alive, u.index()) {
                internal_neighbor = Some(u.index());
            } else {
                leaves.push((weight[u.index()], e, u.index()));
            }
        }
        // Step 3: W = weight of v plus all adjacent leaves.
        let mut w: u64 = weight[v] + leaves.iter().map(|&(lw, _, _)| lw).sum::<u64>();
        if w > bound.get() {
            // Step 5: cut the heaviest leaves until the cluster fits.
            leaves.sort_unstable_by_key(|&(w, _, _)| std::cmp::Reverse(w));
            for &(lw, e, _) in &leaves {
                if w <= bound.get() {
                    break;
                }
                cut_edges.push(e);
                w -= lw;
            }
        }
        // Steps 4/5 epilogue: prune all leaves, re-weigh v.
        for &(_, _, leaf) in &leaves {
            alive[leaf] = false;
            alive_count -= 1;
            degree[v] -= 1;
        }
        weight[v] = w;
        // v is now a leaf (degree ≤ 1); its internal neighbour loses an
        // internal contact and may become processable.
        if let Some(u) = internal_neighbor {
            internal_degree[u] -= 1;
            if is_internal(&degree, &alive, u) && internal_degree[u] <= 1 {
                queue.push(u);
            }
        }
    }
    // Remnant: at most two alive nodes (a tree whose nodes are all leaves).
    let remnant: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
    debug_assert!(alive_count == remnant.len() && remnant.len() <= 2);
    if let [a, b] = remnant[..] {
        if weight[a] + weight[b] > bound.get() {
            let &(_, e) = tree
                .neighbors(NodeId::new(a))
                .iter()
                .find(|&&(u, _)| u.index() == b)
                .expect("two-node remnant is connected by an edge");
            cut_edges.push(e);
        }
    }
    let cut = CutSet::new(cut_edges);
    let component_count = cut.len() + 1;
    debug_assert!(tree
        .components(&cut)
        .expect("cut edges are in range")
        .is_feasible(bound));
    Ok(ProcMinResult {
        cut,
        component_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_min_components(tree: &Tree, bound: Weight) -> usize {
        let m = tree.edge_count();
        let mut best = usize::MAX;
        for mask in 0u32..(1 << m) {
            let cut: CutSet = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(EdgeId::new)
                .collect();
            let comps = tree.components(&cut).unwrap();
            if comps.is_feasible(bound) {
                best = best.min(comps.count());
            }
        }
        best
    }

    #[test]
    fn no_cut_when_everything_fits() {
        let t = Tree::from_raw(&[1, 2, 3], &[(0, 1, 1), (1, 2, 1)]).unwrap();
        for f in [proc_min, proc_min_paper] {
            let r = f(&t, Weight::new(6)).unwrap();
            assert!(r.cut.is_empty());
            assert_eq!(r.component_count, 1);
        }
    }

    #[test]
    fn infeasible_bound_errors() {
        let t = Tree::from_raw(&[1, 9], &[(0, 1, 1)]).unwrap();
        for f in [proc_min, proc_min_paper] {
            assert!(matches!(
                f(&t, Weight::new(8)),
                Err(PartitionError::BoundTooSmall { .. })
            ));
        }
    }

    #[test]
    fn single_node_and_two_node_trees() {
        let one = Tree::from_raw(&[5], &[]).unwrap();
        let two = Tree::from_raw(&[5, 6], &[(0, 1, 1)]).unwrap();
        for f in [proc_min, proc_min_paper] {
            assert_eq!(f(&one, Weight::new(5)).unwrap().component_count, 1);
            assert_eq!(f(&two, Weight::new(11)).unwrap().component_count, 1);
            assert_eq!(f(&two, Weight::new(6)).unwrap().component_count, 2);
        }
    }

    #[test]
    fn star_cuts_exactly_the_heaviest_leaves() {
        // Centre 0 (weight 1), leaves 9, 8, 2, 1; K = 12.
        // Total 21: cutting leaf 9 leaves 12 — one cut suffices.
        let t = Tree::from_raw(
            &[1, 9, 8, 2, 1],
            &[(0, 1, 1), (0, 2, 1), (0, 3, 1), (0, 4, 1)],
        )
        .unwrap();
        for f in [proc_min, proc_min_paper] {
            let r = f(&t, Weight::new(12)).unwrap();
            assert_eq!(r.component_count, 2);
            assert!(r.cut.contains(EdgeId::new(0)), "heaviest leaf cut");
        }
    }

    #[test]
    fn figure_1_style_walkthrough() {
        // Mirrors the paper's Figure 1 shape: a spine with leaf clusters
        // that are absorbed bottom-up, cutting only where a cluster bursts.
        // Spine 0-1-2; node 0 has leaves {3,4}, node 2 has leaves {5,6}.
        let t = Tree::from_raw(
            &[2, 3, 2, 4, 5, 6, 7],
            &[
                (0, 1, 1),
                (1, 2, 1),
                (0, 3, 1),
                (0, 4, 1),
                (2, 5, 1),
                (2, 6, 1),
            ],
        )
        .unwrap();
        // Total 29, K = 15: optimum is 2 components.
        for f in [proc_min, proc_min_paper] {
            let r = f(&t, Weight::new(15)).unwrap();
            assert_eq!(r.component_count, brute_min_components(&t, Weight::new(15)));
        }
    }

    #[test]
    fn both_are_optimal_on_random_trees() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(4242);
        for round in 0..200 {
            let n = rng.gen_range(1..12);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 9 },
                WeightDist::Constant(1),
                &mut rng,
            );
            let k = rng.gen_range(9..=40);
            let expect = brute_min_components(&t, Weight::new(k));
            for (name, f) in [
                ("postorder", proc_min as fn(_, _) -> _),
                ("paper", proc_min_paper),
            ] {
                let r = f(&t, Weight::new(k)).unwrap();
                assert!(t.components(&r.cut).unwrap().is_feasible(Weight::new(k)));
                assert_eq!(
                    r.component_count, expect,
                    "round={round} impl={name} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn implementations_agree_on_larger_trees() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{caterpillar, random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = rng.gen_range(50..400);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 20 },
                WeightDist::Constant(1),
                &mut rng,
            );
            let k = rng.gen_range(20..=200);
            let a = proc_min(&t, Weight::new(k)).unwrap();
            let b = proc_min_paper(&t, Weight::new(k)).unwrap();
            assert_eq!(a.component_count, b.component_count, "n={n} k={k}");
        }
        let cat = caterpillar(
            20,
            4,
            WeightDist::Uniform { lo: 1, hi: 10 },
            WeightDist::Constant(1),
            &mut rng,
        );
        let a = proc_min(&cat, Weight::new(25)).unwrap();
        let b = proc_min_paper(&cat, Weight::new(25)).unwrap();
        assert_eq!(a.component_count, b.component_count);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 100_000;
        let nodes = vec![1u64; n];
        let edges: Vec<(usize, usize, u64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        let t = Tree::from_raw(&nodes, &edges).unwrap();
        let r = proc_min(&t, Weight::new(10)).unwrap();
        assert_eq!(r.component_count, n.div_ceil(10));
        let r2 = proc_min_paper(&t, Weight::new(10)).unwrap();
        assert_eq!(r2.component_count, n.div_ceil(10));
    }
}
