//! Theorem 1: NP-completeness of tree bandwidth minimization, shown by a
//! constructive two-way reduction to 0-1 knapsack.
//!
//! The paper proves that deciding whether a star graph admits a cut `S`
//! with `δ(S) ≤ k₁` whose components all weigh at most `k₂` is equivalent
//! to the 0-1 knapsack decision problem: leaves kept with the centre play
//! the role of items packed into the knapsack (their vertex weights must
//! fit capacity `k₂`), and the *kept* edge profits must reach the profit
//! target (equivalently, the *cut* edge weight stays under budget).
//!
//! This module makes the reduction executable in both directions and ships
//! an exact pseudo-polynomial knapsack solver so the equivalence can be
//! property-tested, and so small star instances of the (NP-complete) tree
//! bandwidth problem can actually be solved.

#![allow(clippy::needless_range_loop)] // index-based DP reads clearer here

use tgp_graph::{CutSet, NodeId, Tree, TreeEdge, Weight};

use crate::error::PartitionError;

/// A 0-1 knapsack instance (maximisation form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnapsackInstance {
    /// Item weights `w_i`.
    pub weights: Vec<u64>,
    /// Item profits `p_i`.
    pub profits: Vec<u64>,
    /// Knapsack capacity (the paper's `k₂`).
    pub capacity: u64,
}

impl KnapsackInstance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `weights` and `profits` have different lengths.
    pub fn new(weights: Vec<u64>, profits: Vec<u64>, capacity: u64) -> Self {
        assert_eq!(
            weights.len(),
            profits.len(),
            "weights and profits must pair up"
        );
        KnapsackInstance {
            weights,
            profits,
            capacity,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the instance has no items.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total profit of all items.
    pub fn total_profit(&self) -> u64 {
        self.profits.iter().sum()
    }

    /// Exact DP solution: the chosen item set maximising profit within
    /// capacity. `O(len · capacity)` time and space — intended for the
    /// reduction tests and small instances, as befits an NP-hard problem.
    pub fn solve(&self) -> KnapsackSolution {
        let n = self.len();
        let cap = usize::try_from(self.capacity).expect("capacity fits usize");
        // best[c] = max profit using a prefix of items within capacity c;
        // take[i][c] records the decision for reconstruction.
        let mut best = vec![0u64; cap + 1];
        let mut take = vec![vec![false; cap + 1]; n];
        for i in 0..n {
            let w = usize::try_from(self.weights[i]).unwrap_or(usize::MAX);
            let p = self.profits[i];
            if w > cap {
                continue;
            }
            for c in (w..=cap).rev() {
                let candidate = best[c - w] + p;
                if candidate > best[c] {
                    best[c] = candidate;
                    take[i][c] = true;
                }
            }
        }
        let mut chosen = Vec::new();
        let mut c = cap;
        for i in (0..n).rev() {
            if take[i][c] {
                chosen.push(i);
                c -= usize::try_from(self.weights[i]).expect("taken items fit capacity");
            }
        }
        chosen.reverse();
        KnapsackSolution {
            profit: best[cap],
            items: chosen,
        }
    }
}

/// An optimal knapsack packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnapsackSolution {
    /// Total profit of the chosen items.
    pub profit: u64,
    /// Indices of the chosen items, ascending.
    pub items: Vec<usize>,
}

/// The paper's Theorem 1 construction: a star `T = (V, E)` with centre
/// weight 0, leaf `v_i` of weight `w_i`, and edge `e_i = (u, v_i)` of
/// weight `p_i`.
///
/// A cut `S` with `δ(S) ≤ Σp − k₁` and components `≤ k₂` exists **iff**
/// the knapsack instance has a packing of profit `≥ k₁` (the kept leaves
/// are the packed items).
pub fn knapsack_to_star(instance: &KnapsackInstance) -> Tree {
    let n = instance.len();
    let mut node_weights = Vec::with_capacity(n + 1);
    node_weights.push(Weight::ZERO); // the centre u
    node_weights.extend(instance.weights.iter().map(|&w| Weight::new(w)));
    let edges: Vec<TreeEdge> = (0..n)
        .map(|i| {
            TreeEdge::new(
                NodeId::new(0),
                NodeId::new(i + 1),
                Weight::new(instance.profits[i]),
            )
        })
        .collect();
    Tree::from_edges(node_weights, edges).expect("star construction is always a tree")
}

/// The reverse direction of Theorem 1: reads a star task graph (centre =
/// node 0, as produced by [`knapsack_to_star`]) back into a knapsack
/// instance with capacity `load_bound`.
///
/// # Panics
///
/// Panics if `star` is not a star centred at node 0.
pub fn star_to_knapsack(star: &Tree, load_bound: Weight) -> KnapsackInstance {
    let n = star.len() - 1;
    assert!(
        star.degree(NodeId::new(0)) == n,
        "node 0 must be the centre of a star"
    );
    let mut weights = Vec::with_capacity(n);
    let mut profits = Vec::with_capacity(n);
    for &(leaf, edge) in star.neighbors(NodeId::new(0)) {
        weights.push(star.node_weight(leaf).get());
        profits.push(star.edge_weight(edge).get());
    }
    KnapsackInstance::new(
        weights,
        profits,
        load_bound
            .get()
            .saturating_sub(star.node_weight(NodeId::new(0)).get()),
    )
}

/// Solves the (NP-complete) star bandwidth-minimization problem exactly
/// via the knapsack reduction: the returned cut has minimum `δ(S)` among
/// all cuts whose components weigh at most `load_bound`.
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if some leaf (or the centre) alone
/// outweighs the bound.
///
/// # Panics
///
/// Panics if `star` is not a star centred at node 0.
///
/// # Examples
///
/// ```
/// use tgp_core::knapsack::min_star_bandwidth_cut;
/// use tgp_graph::{Tree, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Centre 0; leaves of weight 6 and 5; edges cost 10 and 3.
/// let star = Tree::from_raw(&[0, 6, 5], &[(0, 1, 10), (0, 2, 3)])?;
/// // Bound 6: keep the weight-6 leaf (expensive edge), cut the cheap one.
/// let cut = min_star_bandwidth_cut(&star, Weight::new(6))?;
/// assert_eq!(star.cut_weight(&cut)?, Weight::new(3));
/// # Ok(())
/// # }
/// ```
pub fn min_star_bandwidth_cut(star: &Tree, load_bound: Weight) -> Result<CutSet, PartitionError> {
    crate::error::check_bound(star.node_weights(), load_bound)?;
    let instance = star_to_knapsack(star, load_bound);
    let solution = instance.solve();
    // Kept leaves = packed items; cut everything else.
    let kept: std::collections::HashSet<usize> = solution.items.iter().copied().collect();
    let neighbors = star.neighbors(NodeId::new(0));
    let cut: CutSet = neighbors
        .iter()
        .enumerate()
        .filter(|(i, _)| !kept.contains(i))
        .map(|(_, &(_, e))| e)
        .collect();
    debug_assert!(star
        .components(&cut)
        .expect("cut edges are in range")
        .is_feasible(load_bound));
    Ok(cut)
}

/// Decision form of the paper's Theorem 1 statement: does `star` admit a
/// cut `S` with `δ(S) ≤ cut_budget` and all components `≤ load_bound`?
///
/// # Errors
///
/// [`PartitionError::BoundTooSmall`] if some vertex alone outweighs the
/// bound (the answer would be "no" for structural reasons the caller
/// should see).
pub fn star_cut_decision(
    star: &Tree,
    cut_budget: Weight,
    load_bound: Weight,
) -> Result<bool, PartitionError> {
    let cut = min_star_bandwidth_cut(star, load_bound)?;
    Ok(star.cut_weight(&cut).expect("cut is valid") <= cut_budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_knapsack(inst: &KnapsackInstance) -> u64 {
        let n = inst.len();
        let mut best = 0u64;
        for mask in 0u32..(1 << n) {
            let (mut w, mut p) = (0u64, 0u64);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    w += inst.weights[i];
                    p += inst.profits[i];
                }
            }
            if w <= inst.capacity {
                best = best.max(p);
            }
        }
        best
    }

    #[test]
    fn dp_matches_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            let n = rng.gen_range(0..10);
            let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..20)).collect();
            let profits: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
            let cap = rng.gen_range(0..60);
            let inst = KnapsackInstance::new(weights, profits, cap);
            let sol = inst.solve();
            assert_eq!(sol.profit, brute_knapsack(&inst));
            // Solution is consistent with itself.
            let w: u64 = sol.items.iter().map(|&i| inst.weights[i]).sum();
            let p: u64 = sol.items.iter().map(|&i| inst.profits[i]).sum();
            assert!(w <= inst.capacity);
            assert_eq!(p, sol.profit);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = KnapsackInstance::new(vec![], vec![], 10);
        assert!(inst.is_empty());
        let sol = inst.solve();
        assert_eq!(sol.profit, 0);
        assert!(sol.items.is_empty());
    }

    #[test]
    fn reduction_round_trips() {
        let inst = KnapsackInstance::new(vec![3, 5, 7], vec![10, 20, 30], 9);
        let star = knapsack_to_star(&inst);
        assert_eq!(star.len(), 4);
        assert_eq!(star.node_weight(NodeId::new(0)), Weight::ZERO);
        let back = star_to_knapsack(&star, Weight::new(9));
        assert_eq!(back, inst);
    }

    #[test]
    fn star_cut_complements_optimal_packing() {
        // Items (w, p): (6, 10), (5, 3); capacity 6. Optimal packing: item
        // 0 (profit 10). Cut = the other edge, weight 3.
        let inst = KnapsackInstance::new(vec![6, 5], vec![10, 3], 6);
        let star = knapsack_to_star(&inst);
        let cut = min_star_bandwidth_cut(&star, Weight::new(6)).unwrap();
        assert_eq!(star.cut_weight(&cut).unwrap(), Weight::new(3));
        assert_eq!(
            star.cut_weight(&cut).unwrap().get(),
            inst.total_profit() - inst.solve().profit
        );
    }

    #[test]
    fn decision_matches_theorem_statement() {
        // δ(S) ≤ Σp − k₁ and components ≤ k₂ ⟺ packing of profit ≥ k₁.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..50 {
            let n = rng.gen_range(1..8);
            let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10)).collect();
            let profits: Vec<u64> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            let k2 = rng.gen_range(*weights.iter().max().unwrap()..40);
            let inst = KnapsackInstance::new(weights, profits, k2);
            let star = knapsack_to_star(&inst);
            let best_profit = inst.solve().profit;
            for k1 in 0..=inst.total_profit() {
                let budget = inst.total_profit() - k1;
                let decision =
                    star_cut_decision(&star, Weight::new(budget), Weight::new(k2)).unwrap();
                assert_eq!(decision, best_profit >= k1, "k1={k1}");
            }
        }
    }

    #[test]
    fn bound_below_leaf_weight_errors() {
        let star = Tree::from_raw(&[0, 9], &[(0, 1, 1)]).unwrap();
        assert!(matches!(
            min_star_bandwidth_cut(&star, Weight::new(8)),
            Err(PartitionError::BoundTooSmall { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "centre of a star")]
    fn non_star_input_panics() {
        let path = Tree::from_raw(&[1, 1, 1], &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let _ = star_to_knapsack(&path, Weight::new(3));
    }

    #[test]
    fn nonzero_centre_weight_reduces_capacity() {
        let star = Tree::from_raw(&[4, 3, 3], &[(0, 1, 5), (0, 2, 7)]).unwrap();
        let inst = star_to_knapsack(&star, Weight::new(7));
        assert_eq!(inst.capacity, 3); // 7 - centre weight 4
        let cut = min_star_bandwidth_cut(&star, Weight::new(7)).unwrap();
        // Only one leaf fits beside the centre; keep the profit-7 one.
        assert_eq!(star.cut_weight(&cut).unwrap(), Weight::new(5));
    }
}
