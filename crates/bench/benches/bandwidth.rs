//! Experiment A4.1 — the paper's headline runtime claim.
//!
//! Benches the four bandwidth-minimization solvers across chain sizes and
//! `K` regimes: the TEMP_S `O(n + p log q)` algorithm must never lose to
//! the Nicol-style `O(n log n)` baseline, with the margin widest at small
//! and large `K` (few/light prime subpaths), matching Figure 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tgp_baselines::nicol::nicol_bandwidth_cut;
use tgp_bench::chain_instance;
use tgp_core::bandwidth::{
    analyze_bandwidth_with, min_bandwidth_cut, min_bandwidth_cut_naive, min_bandwidth_cut_window,
    MergeSearch,
};
use tgp_graph::{PathGraph, Weight};

fn regimes(path: &PathGraph) -> [(&'static str, Weight); 3] {
    let lo = path.max_node_weight().get();
    let hi = path.total_weight().get();
    [
        ("tight", Weight::new(lo + (hi - lo) / 1000)),
        ("medium", Weight::new(lo + (hi - lo) / 20)),
        ("loose", Weight::new(lo + (hi - lo) / 2)),
    ]
}

fn bench_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("bandwidth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for n in [10_000usize, 100_000] {
        let path = chain_instance(n, 1, 100, 0xA41 + n as u64);
        for (regime, k) in regimes(&path) {
            let id = format!("n{n}/{regime}");
            group.bench_function(BenchmarkId::new("temps", &id), |b| {
                b.iter(|| min_bandwidth_cut(black_box(&path), black_box(k)).unwrap())
            });
            group.bench_function(BenchmarkId::new("temps_gallop", &id), |b| {
                // Ablation: the paper's §2.3.2 future-work search policy.
                b.iter(|| {
                    analyze_bandwidth_with(black_box(&path), black_box(k), MergeSearch::Gallop)
                        .unwrap()
                })
            });
            group.bench_function(BenchmarkId::new("nicol", &id), |b| {
                b.iter(|| nicol_bandwidth_cut(black_box(&path), black_box(k)).unwrap())
            });
            group.bench_function(BenchmarkId::new("window", &id), |b| {
                b.iter(|| min_bandwidth_cut_window(black_box(&path), black_box(k)).unwrap())
            });
            group.bench_function(BenchmarkId::new("naive", &id), |b| {
                b.iter(|| min_bandwidth_cut_naive(black_box(&path), black_box(k)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
