//! Experiment COC — the prior-work family the paper builds on.
//!
//! Bokhari's exact layered-graph DP is O(n²m); the probe method reaches
//! the same optimum in O(n·m·log Σw). The crossover illustrates why the
//! literature kept improving this problem between 1988 and 1994.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tgp_baselines::bokhari::bokhari_partition;
use tgp_baselines::hansen_lih::hansen_lih_partition;
use tgp_bench::chain_instance;

fn bench_coc(c: &mut Criterion) {
    let mut group = c.benchmark_group("chains_on_chains");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (n, m) in [(256usize, 8usize), (1_024, 8), (1_024, 32)] {
        let path = chain_instance(n, 1, 100, 0xC0C + n as u64);
        let id = format!("n{n}/m{m}");
        group.bench_function(BenchmarkId::new("bokhari", &id), |b| {
            b.iter(|| bokhari_partition(black_box(&path), black_box(m)).unwrap())
        });
        group.bench_function(BenchmarkId::new("probe", &id), |b| {
            b.iter(|| hansen_lih_partition(black_box(&path), black_box(m)).unwrap())
        });
    }
    // The probe scales to sizes the quadratic DP cannot touch.
    let big = chain_instance(100_000, 1, 100, 0xC0C);
    group.bench_function("probe/n100000/m64", |b| {
        b.iter(|| hansen_lih_partition(black_box(&big), black_box(64)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_coc);
criterion_main!(benches);
