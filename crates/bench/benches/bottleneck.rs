//! Experiment A2.1 — Algorithm 2.1 scaling.
//!
//! The literal paper implementation re-checks all components after every
//! edge insertion (O(n²)); the optimized union-find sweep is O(n log n).
//! Outputs are identical; only the constants and growth rates differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tgp_bench::tree_instance;
use tgp_core::bottleneck::{min_bottleneck_cut, min_bottleneck_cut_paper};
use tgp_graph::Weight;

fn bench_bottleneck(c: &mut Criterion) {
    let mut group = c.benchmark_group("bottleneck");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for n in [1_000usize, 10_000, 100_000] {
        let tree = tree_instance(n, 1, 100, 0xA21 + n as u64);
        let k = Weight::new(tree.total_weight().get() / 10);
        group.bench_function(BenchmarkId::new("optimized", n), |b| {
            b.iter(|| min_bottleneck_cut(black_box(&tree), black_box(k)).unwrap())
        });
        if n <= 1_000 {
            group.bench_function(BenchmarkId::new("paper", n), |b| {
                b.iter(|| min_bottleneck_cut_paper(black_box(&tree), black_box(k)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bottleneck);
criterion_main!(benches);
