//! Experiment A2.2 — Algorithm 2.2 scaling.
//!
//! Both implementations are O(n log n); the bench shows their constants
//! on random trees plus the star and caterpillar shapes that stress the
//! leaf-sorting step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp_bench::tree_instance;
use tgp_core::procmin::{proc_min, proc_min_paper};
use tgp_graph::generators::{caterpillar, star, WeightDist};
use tgp_graph::Weight;

fn bench_procmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("procmin");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for n in [1_000usize, 10_000, 100_000] {
        let tree = tree_instance(n, 1, 100, 0xA22 + n as u64);
        let k = Weight::new(tree.total_weight().get() / 64 + tree.max_node_weight().get());
        group.bench_function(BenchmarkId::new("postorder", n), |b| {
            b.iter(|| proc_min(black_box(&tree), black_box(k)).unwrap())
        });
        group.bench_function(BenchmarkId::new("worklist", n), |b| {
            b.iter(|| proc_min_paper(black_box(&tree), black_box(k)).unwrap())
        });
    }
    // Shape stress: a star (one giant leaf sort) and a caterpillar.
    let dist = WeightDist::Uniform { lo: 1, hi: 100 };
    let mut rng = SmallRng::seed_from_u64(0x5A);
    let star_tree = star(100_000, dist, dist, &mut rng);
    let k = Weight::new(star_tree.total_weight().get() / 32);
    group.bench_function("postorder/star100k", |b| {
        b.iter(|| proc_min(black_box(&star_tree), black_box(k)).unwrap())
    });
    let cat = caterpillar(10_000, 9, dist, dist, &mut rng);
    let k = Weight::new(cat.total_weight().get() / 32);
    group.bench_function("postorder/caterpillar100k", |b| {
        b.iter(|| proc_min(black_box(&cat), black_box(k)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_procmin);
criterion_main!(benches);
