//! Experiments F1/F3/APP — the Section 3 applications end to end.
//!
//! Times the composed tree pipeline (bottleneck → contraction →
//! processor minimization), the Theorem 1 star solver, the DDS circuit
//! partitioner, and the shared-memory pipeline simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp_bench::{chain_instance, tree_instance};
use tgp_core::approx::{partition_process_graph, ApproxMethod};
use tgp_core::knapsack::{knapsack_to_star, min_star_bandwidth_cut, KnapsackInstance};
use tgp_core::pipeline::{partition_chain, partition_tree};
use tgp_core::tree_bandwidth::min_tree_bandwidth_cut;
use tgp_dds::generators::shift_register;
use tgp_dds::partition::partition_circuit;
use tgp_dds::sim::simulate_activity;
use tgp_graph::Weight;
use tgp_shmem::machine::Machine;
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};

fn bench_applications(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    // Composed tree workflow (F1 machinery at scale).
    for n in [10_000usize, 100_000] {
        let tree = tree_instance(n, 1, 100, 0xF1 + n as u64);
        let k = Weight::new(tree.total_weight().get() / 32);
        group.bench_function(BenchmarkId::new("partition_tree", n), |b| {
            b.iter(|| partition_tree(black_box(&tree), black_box(k)).unwrap())
        });
    }

    // Exact pseudo-polynomial tree bandwidth (Theorem 1's counterpart).
    let tbw_tree = tree_instance(500, 1, 20, 0x7B0);
    let tbw_k = Weight::new(tbw_tree.total_weight().get() / 16);
    group.bench_function("tree_bandwidth_exact/500", |b| {
        b.iter(|| min_tree_bandwidth_cut(black_box(&tbw_tree), black_box(tbw_k)).unwrap())
    });

    // General process-graph approximation (the conclusion's proposal).
    let ring = {
        use tgp_graph::generators::{ring_process_graph, WeightDist};
        let mut rng = SmallRng::seed_from_u64(0xA9);
        ring_process_graph(
            512,
            WeightDist::Uniform { lo: 1, hi: 20 },
            WeightDist::Uniform { lo: 1, hi: 50 },
            &mut rng,
        )
    };
    let ring_k = Weight::new(ring.total_weight().get() / 8);
    for method in [ApproxMethod::LinearIdentity, ApproxMethod::SpanningTree] {
        group.bench_function(
            BenchmarkId::new("approx_ring512", format!("{method:?}")),
            |b| {
                b.iter(|| {
                    partition_process_graph(black_box(&ring), black_box(ring_k), method).unwrap()
                })
            },
        );
    }

    // Theorem 1 star solver (pseudo-polynomial knapsack DP).
    let mut rng = SmallRng::seed_from_u64(0x71);
    let inst = {
        use rand::Rng;
        let weights: Vec<u64> = (0..200).map(|_| rng.gen_range(1..50)).collect();
        let profits: Vec<u64> = (0..200).map(|_| rng.gen_range(1..100)).collect();
        KnapsackInstance::new(weights, profits, 2_000)
    };
    let star = knapsack_to_star(&inst);
    group.bench_function("star_bandwidth/200_leaves", |b| {
        b.iter(|| min_star_bandwidth_cut(black_box(&star), black_box(Weight::new(2_000))).unwrap())
    });

    // DDS: partition a measured 2000-stage shift register.
    let circuit = shift_register(2_000).expect("generator is valid");
    let profile = simulate_activity(&circuit, 200, &mut SmallRng::seed_from_u64(2));
    let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
    group.bench_function("dds_partition/shift2000", |b| {
        b.iter(|| {
            partition_circuit(
                black_box(&circuit),
                black_box(&profile),
                Weight::new(total / 8),
            )
            .unwrap()
        })
    });

    // Shared-memory pipeline simulation throughput (F3 at scale).
    let chain = chain_instance(256, 1, 100, 0xF3);
    let k = Weight::new(chain.total_weight().get() / 12);
    let part = partition_chain(&chain, k).expect("feasible bound");
    let spec = PipelineSpec::from_partition(&chain, &part.cut).expect("valid partition");
    let machine = Machine::bus(part.processors.max(16)).expect("valid machine");
    group.bench_function("shmem_pipeline/256x500items", |b| {
        b.iter(|| simulate_pipeline(black_box(&spec), black_box(&machine), 500).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_applications);
criterion_main!(benches);
