//! Shared workload builders and sweep drivers for the benchmark harness.
//!
//! The figure-regeneration binaries (`figure2`, `experiments`) and the
//! Criterion benches all draw their instances from here so results are
//! comparable across entry points. Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp_core::bandwidth::{analyze_bandwidth, BandwidthStats};
use tgp_graph::generators::{random_chain, random_tree, WeightDist};
use tgp_graph::{PathGraph, Tree, Weight};

/// A seeded random chain with vertex weights uniform on `[w_lo, w_hi]`
/// and edge weights uniform on `[1, 1000]` (the Figure 2 workload; the
/// paper's average-case analysis assumes uniform vertex weights).
pub fn chain_instance(n: usize, w_lo: u64, w_hi: u64, seed: u64) -> PathGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_chain(
        n,
        WeightDist::Uniform { lo: w_lo, hi: w_hi },
        WeightDist::Uniform { lo: 1, hi: 1000 },
        &mut rng,
    )
}

/// A seeded random tree with the same weight regime as [`chain_instance`].
pub fn tree_instance(n: usize, w_lo: u64, w_hi: u64, seed: u64) -> Tree {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_tree(
        n,
        WeightDist::Uniform { lo: w_lo, hi: w_hi },
        WeightDist::Uniform { lo: 1, hi: 1000 },
        &mut rng,
    )
}

/// `points` values of `K` swept geometrically from `max α` (the
/// feasibility floor) to the total chain weight (above which the empty cut
/// wins) — covering the paper's "high and low K" regimes.
pub fn k_sweep(path: &PathGraph, points: usize) -> Vec<Weight> {
    assert!(points >= 2, "a sweep needs at least two points");
    let lo = path.max_node_weight().get().max(1);
    let hi = path.total_weight().get().max(lo + 1);
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (points as f64 - 1.0));
    let mut ks: Vec<Weight> = (0..points)
        .map(|i| Weight::new((lo as f64 * ratio.powi(i as i32)).round() as u64))
        .collect();
    ks.dedup();
    ks
}

/// One row of the Figure 2 reproduction: instance statistics for a single
/// `(n, K, weight range)` combination.
#[derive(Debug, Clone, Copy)]
pub struct Figure2Row {
    /// Chain length.
    pub n: usize,
    /// The load bound `K`.
    pub k: u64,
    /// Maximum vertex weight of the weight distribution.
    pub w_max: u64,
    /// Bandwidth statistics of the solved instance.
    pub stats: BandwidthStats,
}

/// Sweeps `K` over a chain, solving each instance with the TEMP_S
/// algorithm and recording the paper's Figure 2 quantities.
pub fn figure2_sweep(
    n: usize,
    w_lo: u64,
    w_hi: u64,
    k_points: usize,
    seed: u64,
) -> Vec<Figure2Row> {
    let path = chain_instance(n, w_lo, w_hi, seed);
    k_sweep(&path, k_points)
        .into_iter()
        .map(|k| {
            let (_, stats) =
                analyze_bandwidth(&path, k).expect("K >= max vertex weight by construction");
            Figure2Row {
                n,
                k: k.get(),
                w_max: w_hi,
                stats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_instances_are_reproducible() {
        let a = chain_instance(100, 1, 50, 7);
        let b = chain_instance(100, 1, 50, 7);
        assert_eq!(a, b);
        let c = chain_instance(100, 1, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn k_sweep_spans_floor_to_total() {
        let p = chain_instance(500, 1, 100, 1);
        let ks = k_sweep(&p, 10);
        assert!(ks.len() >= 2);
        assert_eq!(ks[0], p.max_node_weight());
        assert_eq!(*ks.last().unwrap(), p.total_weight());
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn figure2_rows_cover_the_sweep() {
        let rows = figure2_sweep(1000, 1, 100, 8, 3);
        assert!(rows.len() >= 2);
        // Lowest K: many primes; highest K: none (empty cut).
        assert!(rows.first().unwrap().stats.p > 0);
        assert_eq!(rows.last().unwrap().stats.p, 0);
        // The headline claim on every row: p log q <= n log n.
        for r in &rows {
            assert!(r.stats.p_log_q <= r.stats.n_log_n, "k={}", r.k);
        }
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn tiny_sweep_panics() {
        let p = chain_instance(10, 1, 5, 1);
        k_sweep(&p, 1);
    }
}
