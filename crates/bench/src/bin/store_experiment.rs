//! The §STORE experiments: out-of-core tree partitioning through
//! `tgp-store`'s disk backing, and the flat in-RAM ingest path against
//! the legacy pointer-graph path.
//!
//! Usage:
//!
//! ```text
//! store_experiment oocore <ram|disk> [n]   # default n = 1_000_000
//! store_experiment lex [n]...              # default n = 100_000 1_000_000
//! ```
//!
//! `oocore` builds a deterministic n-node tree *directly* into flat
//! arrays (no JSON anywhere — a JSON body would itself dwarf the memory
//! cap), solves `bottleneck` on it, and prints the graph's byte size,
//! the process's peak RSS (`VmHWM`), and an FNV-1a checksum of the
//! rendered response. Running the mode once with `disk` and once with
//! `ram` in *separate processes* and comparing the printed checksums is
//! the cross-backing correctness check EXPERIMENTS.md records; the
//! disk run is the one executed under a memory cap smaller than the
//! graph.
//!
//! `lex` measures the lexicographic hot path end to end — raw request
//! bytes in, rendered response bytes out — through both stacks on the
//! same body: the legacy path (JSON tree → registry dispatch → pointer
//! graph → solve → render) and the flat path (streaming ingest into
//! RAM-backed flat arrays → solve → render). The responses are
//! asserted byte-identical before any number is reported.

use std::fmt::Write as _;
use std::time::Instant;

use tgp_core::budget::Budget;
use tgp_graph::json::Value;
use tgp_solvers::{ingest_flat, FlatGraph, FlatObjective, FlatRequest, IngestBacking, Registry};
use tgp_store::{DiskBacking, FlatTree, FlatTreeBuilder, MemoryBacking, RamBacking};

/// 64-bit FNV-1a, the same digest the service's journals use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// SplitMix64 — a seeded hash giving each index an independent weight
/// without holding any generator state (the graph is never stored; both
/// processes of the cross-check regenerate it from the same seed).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn node_weight(seed: u64, i: usize) -> u64 {
    1 + mix(seed ^ (i as u64)) % 100
}

fn edge_weight(seed: u64, i: usize) -> u64 {
    1 + mix(seed ^ 0x5EED ^ (i as u64)) % 1000
}

/// Parent of node `i` in the deterministic test tree — a bushy
/// caterpillar (the same shape the loadgen uploads).
fn parent_of(i: usize) -> usize {
    i - 1 - (i % 3).min(i - 1)
}

/// Peak resident set size of this process so far, in bytes, from
/// `/proc/self/status` `VmHWM`. Returns 0 off Linux.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

fn build_tree<B: MemoryBacking>(backing: B, n: usize, seed: u64) -> (FlatTree<B>, u64) {
    let mut builder = FlatTreeBuilder::new(backing, n).expect("allocate tree arrays");
    let mut total = 0u64;
    for i in 0..n {
        let w = node_weight(seed, i);
        total += w;
        builder.push_node(w).expect("push node");
        if i > 0 {
            builder
                .push_edge(parent_of(i), i, edge_weight(seed, i))
                .expect("push edge");
        }
    }
    (builder.finish().expect("valid tree"), total)
}

fn exp_oocore(backing: &str, n: usize) {
    let seed = 0x510_4EED;
    let start = Instant::now();
    let (graph, total) = match backing {
        "ram" => {
            let (tree, total) = build_tree(RamBacking, n, seed);
            (FlatGraph::TreeRam(tree), total)
        }
        "disk" => {
            let dir = std::env::temp_dir();
            let (tree, total) = build_tree(DiskBacking::new(dir), n, seed);
            (FlatGraph::TreeDisk(tree), total)
        }
        other => {
            eprintln!("unknown backing {other:?} (want ram|disk)");
            std::process::exit(2);
        }
    };
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    // A component-weight cap that forces a real multi-way cut but is
    // always feasible (far above the 1..=100 node-weight alphabet).
    let bound = total / 64;
    let request = FlatRequest {
        objective: FlatObjective::Bottleneck,
        bound,
        graph,
    };
    let start = Instant::now();
    let response = request.run().expect("feasible bound");
    let solve_ms = start.elapsed().as_secs_f64() * 1e3;
    let body = response.value.to_string();
    let cut = response
        .value
        .get("cut")
        .and_then(Value::as_array)
        .map_or(0, Vec::len);
    println!("mode:        oocore");
    println!("backing:     {}", request.graph.backing_kind().as_str());
    println!("nodes:       {n}");
    println!("bound:       {bound}");
    println!("graph_bytes: {}", request.graph.byte_len());
    println!("pinned_heap: {}", request.graph.resident_bytes());
    println!("build_ms:    {build_ms:.0}");
    println!("solve_ms:    {solve_ms:.0}");
    println!("cut_edges:   {cut}");
    println!("resp_bytes:  {}", body.len());
    println!("checksum:    {:016x}", fnv1a(body.as_bytes()));
    println!("peak_rss:    {}", peak_rss_bytes());
}

/// The `/v1/partition` body for a deterministic n-node chain — the
/// exact bytes both stacks are fed.
fn chain_body(n: usize, seed: u64, bound: u64) -> String {
    let mut body = String::with_capacity(n * 8);
    let _ = write!(
        body,
        "{{\"objective\": \"lexicographic\", \"bound\": {bound}, \"graph\": {{\"node_weights\": ["
    );
    for i in 0..n {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{}", node_weight(seed, i));
    }
    body.push_str("], \"edge_weights\": [");
    for i in 0..n - 1 {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{}", edge_weight(seed, i));
    }
    body.push_str("]}}");
    body
}

fn exp_lex(sizes: &[usize]) {
    let registry = Registry::with_all();
    let reps = 5;
    println!("## lexicographic end-to-end, bytes -> response (best of {reps})");
    println!();
    println!(
        "{:>9} {:>12} {:>11} {:>9} {:>8}",
        "n", "body_bytes", "legacy_ms", "flat_ms", "speedup"
    );
    for &n in sizes {
        let seed = 0x1E_4EED ^ n as u64;
        let total: u64 = (0..n).map(|i| node_weight(seed, i)).sum();
        let bound = total / 20;
        let body = chain_body(n, seed, bound);

        let mut legacy_best = f64::MAX;
        let mut legacy_out = String::new();
        for _ in 0..reps {
            let start = Instant::now();
            let value = Value::parse(&body).expect("valid body");
            let (_, solver, request) = registry.dispatch(&value).expect("dispatch");
            let response = solver.run(&request).expect("feasible bound");
            legacy_out = solver.to_json(&response).to_string();
            legacy_best = legacy_best.min(start.elapsed().as_secs_f64() * 1e3);
        }

        let mut flat_best = f64::MAX;
        let mut flat_out = String::new();
        for _ in 0..reps {
            let start = Instant::now();
            let request = ingest_flat(body.as_bytes(), &IngestBacking::Ram, &Budget::unlimited())
                .expect("within budget")
                .expect("flat-capable body");
            let response = request.run().expect("feasible bound");
            flat_out = response.value.to_string();
            flat_best = flat_best.min(start.elapsed().as_secs_f64() * 1e3);
        }

        assert_eq!(legacy_out, flat_out, "paths diverged at n = {n}");
        println!(
            "{:>9} {:>12} {:>11.1} {:>9.1} {:>7.2}x",
            n,
            body.len(),
            legacy_best,
            flat_best,
            legacy_best / flat_best
        );
    }
    println!();
    println!("responses byte-identical across both paths at every n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("oocore") => {
            let backing = args.get(1).map_or("disk", String::as_str);
            let n = args
                .get(2)
                .map_or(1_000_000, |s| s.parse().expect("n must be a number"));
            exp_oocore(backing, n);
        }
        Some("lex") => {
            let sizes: Vec<usize> = if args.len() > 1 {
                args[1..]
                    .iter()
                    .map(|s| s.parse().expect("n must be a number"))
                    .collect()
            } else {
                vec![100_000, 1_000_000]
            };
            exp_lex(&sizes);
        }
        _ => {
            eprintln!("usage: store_experiment oocore <ram|disk> [n] | lex [n]...");
            std::process::exit(2);
        }
    }
}
