//! Runs every experiment of the reproduction and prints the tables that
//! EXPERIMENTS.md records: algorithm runtimes (wall clock), output
//! cross-checks, and application-level quality numbers.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tgp-bench --bin experiments
//! ```

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tgp_baselines::block::block_partition;
use tgp_baselines::bokhari::bokhari_partition;
use tgp_baselines::hansen_lih::hansen_lih_partition;
use tgp_baselines::nicol::nicol_bandwidth_cut;
use tgp_bench::{chain_instance, tree_instance};
use tgp_core::bandwidth::{analyze_bandwidth, min_bandwidth_cut_naive, min_bandwidth_cut_window};
use tgp_core::bottleneck::{min_bottleneck_cut, min_bottleneck_cut_paper};
use tgp_core::knapsack::{knapsack_to_star, min_star_bandwidth_cut, KnapsackInstance};
use tgp_core::procmin::{proc_min, proc_min_paper};
use tgp_dds::generators::{johnson_counter, random_layered, shift_register};
use tgp_dds::partition::{partition_circuit, partition_circuit_block};
use tgp_dds::sim::simulate_activity;
use tgp_graph::{PathGraph, Weight};
use tgp_realtime::{admit, RealTimeTask, Strategy};
use tgp_shmem::machine::Machine;
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// K values for the three regimes of a chain: tight (many primes), medium,
/// loose (few primes).
fn regimes(path: &PathGraph) -> [(&'static str, Weight); 3] {
    let lo = path.max_node_weight().get();
    let hi = path.total_weight().get();
    [
        ("tight", Weight::new(lo + (hi - lo) / 1000)),
        ("medium", Weight::new(lo + (hi - lo) / 20)),
        ("loose", Weight::new(lo + (hi - lo) / 2)),
    ]
}

fn exp_bandwidth_runtime() {
    println!("## A4.1 — bandwidth minimization runtime (ms), chains with α ~ U[1,100]");
    println!();
    println!(
        "{:>8} {:>8} {:>8} {:>8.8} {:>10} {:>10} {:>10} {:>10}",
        "n", "regime", "p", "q", "temps", "nicol", "window", "naive"
    );
    for n in [10_000usize, 100_000, 1_000_000] {
        let path = chain_instance(n, 1, 100, 0xA41 + n as u64);
        for (name, k) in regimes(&path) {
            let ((cut_t, stats), t_temps) = time(|| analyze_bandwidth(&path, k).unwrap());
            let (cut_n, t_nicol) = time(|| nicol_bandwidth_cut(&path, k).unwrap());
            let (cut_w, t_window) = time(|| min_bandwidth_cut_window(&path, k).unwrap());
            let w = |c: &tgp_graph::CutSet| path.cut_weight(c).unwrap();
            assert_eq!(w(&cut_t), w(&cut_n));
            assert_eq!(w(&cut_t), w(&cut_w));
            // The naive O(np) recurrence becomes impractical at n = 10⁶
            // with loose K (q ~ 16 000): cap it, that cliff is the point.
            let t_naive = if n <= 100_000 || name == "tight" {
                let (cut_v, t) = time(|| min_bandwidth_cut_naive(&path, k).unwrap());
                assert_eq!(w(&cut_t), w(&cut_v));
                format!("{t:.2}")
            } else {
                "(skipped)".to_string()
            };
            println!(
                "{:>8} {:>8} {:>8} {:>8.2} {:>10.2} {:>10.2} {:>10.2} {:>10}",
                n, name, stats.p, stats.q_bar, t_temps, t_nicol, t_window, t_naive
            );
        }
    }
    println!();
}

fn exp_bottleneck_runtime() {
    println!("## A2.1 — bottleneck minimization (trees): optimized vs paper O(n²) (ms)");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "n", "optimized", "paper", "equal?"
    );
    for n in [500usize, 1_000, 2_000, 4_000] {
        let t = tree_instance(n, 1, 100, 0xA21 + n as u64);
        let k = Weight::new(t.total_weight().get() / 10);
        let (fast, t_fast) = time(|| min_bottleneck_cut(&t, k).unwrap());
        let (paper, t_paper) = time(|| min_bottleneck_cut_paper(&t, k).unwrap());
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>10}",
            n,
            t_fast,
            t_paper,
            fast == paper
        );
    }
    for n in [100_000usize, 1_000_000] {
        let t = tree_instance(n, 1, 100, 0xA21 + n as u64);
        let k = Weight::new(t.total_weight().get() / 10);
        let (_, t_fast) = time(|| min_bottleneck_cut(&t, k).unwrap());
        println!("{:>8} {:>12.2} {:>12} {:>10}", n, t_fast, "-", "-");
    }
    println!();
}

fn exp_procmin_runtime() {
    println!("## A2.2 — processor minimization (trees): post-order vs paper work-list (ms)");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "n", "postorder", "worklist", "components", "equal?"
    );
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let t = tree_instance(n, 1, 100, 0xA22 + n as u64);
        let k = Weight::new(t.total_weight().get() / 64 + t.max_node_weight().get());
        let (a, t_a) = time(|| proc_min(&t, k).unwrap());
        let (b, t_b) = time(|| proc_min_paper(&t, k).unwrap());
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12} {:>10}",
            n,
            t_a,
            t_b,
            a.component_count,
            a.component_count == b.component_count
        );
    }
    println!();
}

fn exp_coc_runtime() {
    println!("## COC — chains-on-chains bottleneck: Bokhari O(n²m) vs probe (ms)");
    println!();
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "n", "m", "bokhari", "probe", "bottleneck", "equal?"
    );
    for (n, m) in [(256usize, 8usize), (1_024, 8), (1_024, 32), (4_096, 16)] {
        let path = chain_instance(n, 1, 100, 0xC0C + n as u64);
        let (a, t_a) = time(|| bokhari_partition(&path, m).unwrap());
        let (b, t_b) = time(|| hansen_lih_partition(&path, m).unwrap());
        println!(
            "{:>8} {:>6} {:>12.2} {:>12.2} {:>12} {:>10}",
            n,
            m,
            t_a,
            t_b,
            a.bottleneck,
            a.bottleneck == b.bottleneck
        );
    }
    println!();
}

fn exp_host_satellite() {
    println!("## HS — Bokhari's host-satellite tree partitioning (cited in §1 as the polynomial tree case)");
    println!();
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12}",
        "n", "m", "bottleneck", "satellites", "time (ms)"
    );
    use tgp_baselines::host_satellite::host_satellite_partition;
    use tgp_graph::NodeId;
    for (n, m) in [
        (200usize, 2usize),
        (200, 4),
        (200, 8),
        (2_000, 8),
        (2_000, 16),
    ] {
        let tree = tree_instance(n, 1, 100, 0x405 + n as u64);
        let (r, ms) = time(|| host_satellite_partition(&tree, NodeId::new(0), m).unwrap());
        println!(
            "{:>8} {:>6} {:>12} {:>12} {:>12.2}",
            n, m, r.bottleneck, r.satellites, ms
        );
    }
    println!();
}

fn exp_hetero() {
    println!("## HET — Bokhari's non-homogeneous processors (chain onto a mixed-speed array)");
    println!();
    use tgp_baselines::hetero::{hetero_partition, HeteroArray};
    let path = chain_instance(512, 1, 100, 0x4E7);
    println!("{:>24} {:>12} {:>12}", "speeds", "bottleneck", "time (ms)");
    for speeds in [
        vec![1u64; 8],
        vec![4, 4, 1, 1, 1, 1, 1, 1],
        vec![8, 1, 1, 1, 1, 1, 1, 1],
    ] {
        let array = HeteroArray::new(speeds.clone());
        let (r, ms) = time(|| hetero_partition(&path, &array).unwrap());
        println!(
            "{:>24} {:>12} {:>12.2}",
            format!("{speeds:?}"),
            r.bottleneck,
            ms
        );
    }
    println!();
}

fn exp_theorem1() {
    println!("## T1 — Theorem 1 reduction round-trip (knapsack ⟷ star cut)");
    println!();
    let inst = KnapsackInstance::new(vec![6, 5, 9, 3, 4], vec![10, 3, 14, 2, 7], 12);
    let star = knapsack_to_star(&inst);
    let packing = inst.solve();
    let cut = min_star_bandwidth_cut(&star, Weight::new(12)).unwrap();
    let cut_weight = star.cut_weight(&cut).unwrap().get();
    println!("items (w, p): (6,10) (5,3) (9,14) (3,2) (4,7); capacity 12");
    println!("optimal packing profit      : {}", packing.profit);
    println!(
        "total profit − cut weight   : {}",
        inst.total_profit() - cut_weight
    );
    assert_eq!(packing.profit, inst.total_profit() - cut_weight);
    println!("round-trip identity holds   : true");
    println!();
}

fn exp_figure1() {
    println!("## F1 — Algorithm 2.2 walkthrough (Figure 1 style tree)");
    println!();
    // A spine with leaf clusters, as in the paper's worked example.
    let t = tgp_graph::Tree::from_raw(
        &[2, 3, 2, 4, 5, 6, 7],
        &[
            (0, 1, 1),
            (1, 2, 1),
            (0, 3, 1),
            (0, 4, 1),
            (2, 5, 1),
            (2, 6, 1),
        ],
    )
    .unwrap();
    for k in [29u64, 15, 9] {
        let r = proc_min(&t, Weight::new(k)).unwrap();
        println!(
            "K = {k:>2}: {} component(s), cut = {:?}",
            r.component_count,
            r.cut.as_slice()
        );
    }
    println!();
}

fn exp_tree_bandwidth_gap() {
    println!("## TBW — exact pseudo-polynomial tree bandwidth vs the heuristic pipeline");
    println!();
    use tgp_core::pipeline::partition_tree;
    use tgp_core::tree_bandwidth::min_tree_bandwidth_cut;
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>8} {:>12}",
        "n", "K", "exact β(S)", "pipeline", "gap", "exact ms"
    );
    for (n, kdiv) in [(200usize, 8u64), (200, 16), (1_000, 16), (1_000, 32)] {
        let t = tree_instance(n, 1, 20, 0x7B + n as u64);
        let k = Weight::new(t.total_weight().get() / kdiv + t.max_node_weight().get());
        let (exact, ms) = time(|| min_tree_bandwidth_cut(&t, k).unwrap());
        let heuristic = partition_tree(&t, k).unwrap();
        let ew = t.cut_weight(&exact).unwrap().get();
        let hw = heuristic.bandwidth.get();
        println!(
            "{:>8} {:>8} {:>12} {:>12} {:>7.2}x {:>12.2}",
            n,
            k,
            ew,
            hw,
            hw as f64 / ew.max(1) as f64,
            ms
        );
    }
    println!();
}

fn exp_approx_methods() {
    println!("## APX — general process graphs: linear vs tree super-graph approximations");
    println!();
    use tgp_core::approx::{partition_process_graph, ApproxMethod};
    use tgp_graph::generators::{ring_process_graph, WeightDist};
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "graph", "linear-id", "linear-bfs", "span-tree"
    );
    let mut rng = SmallRng::seed_from_u64(0xA9C);
    let dist = WeightDist::Uniform { lo: 1, hi: 20 };
    let ring = ring_process_graph(64, dist, WeightDist::Uniform { lo: 1, hi: 50 }, &mut rng);
    let k = Weight::new(ring.total_weight().get() / 6);
    let row = |name: &str, g: &tgp_graph::ProcessGraph, k: Weight| {
        let costs: Vec<String> = ApproxMethod::ALL
            .iter()
            .map(|&m| {
                partition_process_graph(g, k, m)
                    .map(|p| format!("{} ({}p)", p.cut_weight.get(), p.parts))
                    .unwrap_or_else(|_| "-".into())
            })
            .collect();
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            name, costs[0], costs[1], costs[2]
        );
    };
    row("ring(64)", &ring, k);
    // A heavy random tree plus light chords: the spanning tree recovers
    // the underlying tree exactly, so the tree route should win.
    use rand::Rng;
    let n = 48usize;
    let mut edges: Vec<(usize, usize, u64)> = (1..n)
        .map(|i| (rng.gen_range(0..i), i, rng.gen_range(50..100)))
        .collect();
    for _ in 0..24 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push((a, b, 1));
        }
    }
    let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10)).collect();
    let tree_plus = tgp_graph::ProcessGraph::from_raw(&nodes, &edges).unwrap();
    let k2 = Weight::new(tree_plus.total_weight().get() / 5);
    row("heavy-tree+chords(48)", &tree_plus, k2);
    println!();
}

fn exp_dds_quality() {
    println!("## APP-DDS — circuit partition quality: paper algorithm vs naive block split");
    println!();
    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>10} {:>10}",
        "circuit", "procs", "inter(alg)", "inter(blk)", "loc(alg)", "loc(blk)"
    );
    let mut rng = SmallRng::seed_from_u64(0xDD5);
    let circuits: Vec<(&str, tgp_dds::Circuit)> = vec![
        ("shift_register(200)", shift_register(200).unwrap()),
        ("johnson_counter(100)", johnson_counter(100).unwrap()),
        (
            "random_layered(16x12)",
            random_layered(16, 12, &mut rng).unwrap(),
        ),
    ];
    for (name, c) in circuits {
        let profile = simulate_activity(&c, 400, &mut SmallRng::seed_from_u64(1));
        let total: u64 = profile.evaluations.iter().map(|e| e + 1).sum();
        let bound = total / 4 + total / 16;
        let smart = partition_circuit(&c, &profile, Weight::new(bound)).unwrap();
        let block = partition_circuit_block(&c, &profile, smart.processors);
        println!(
            "{:<24} {:>6} {:>12} {:>12} {:>10.3} {:>10.3}",
            name,
            smart.processors,
            smart.inter_messages,
            block.inter_messages,
            smart.locality(),
            block.locality()
        );
    }
    println!();
}

fn exp_realtime_and_shmem() {
    println!("## F3/APP-RT — real-time pipeline on a bus machine: algorithm vs block split");
    println!();
    let n = 64;
    let path = chain_instance(n, 1, 100, 0xF3);
    let durations: Vec<u64> = path.node_weights().iter().map(|w| w.get()).collect();
    let deps: Vec<u64> = path.edge_weights().iter().map(|w| w.get()).collect();
    let deadline = Weight::new(path.total_weight().get() / 6);
    let task = RealTimeTask::new(&durations, &deps, deadline).unwrap();
    let part = task.partition(Strategy::MinBandwidth).unwrap();
    let machine = Machine::bus(part.processors.max(8)).unwrap();
    let report = admit(&task, &part, &machine, 200).unwrap();
    let block_cut = block_partition(task.chain(), part.processors);
    let block_spec = PipelineSpec::from_partition(task.chain(), &block_cut).unwrap();
    let block_report = simulate_pipeline(&block_spec, &machine, 200).unwrap();
    println!("deadline K                  : {}", deadline);
    println!("processors (algorithm)      : {}", part.processors);
    println!(
        "cut weight alg vs block     : {} vs {}",
        part.bandwidth,
        task.chain().cut_weight(&block_cut).unwrap()
    );
    println!(
        "bus makespan alg vs block   : {} vs {}",
        report.makespan, block_report.makespan
    );
    println!(
        "bus utilization alg vs block: {:.3} vs {:.3}",
        report.interconnect_utilization(),
        block_report.interconnect_utilization()
    );
    println!("{}", part.render());
}

fn main() {
    println!("# tgp experiments — all figures and claims");
    println!();
    exp_bandwidth_runtime();
    exp_bottleneck_runtime();
    exp_procmin_runtime();
    exp_coc_runtime();
    exp_host_satellite();
    exp_hetero();
    exp_theorem1();
    exp_tree_bandwidth_gap();
    exp_approx_methods();
    exp_figure1();
    exp_dds_quality();
    exp_realtime_and_shmem();
}
