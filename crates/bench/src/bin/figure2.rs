//! Regenerates the paper's Figure 2: the relation between `n`, `p`, `q`,
//! `K`, `p log q` and the maximum vertex weight, plus the Appendix B
//! TEMP_S-occupancy study.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tgp-bench --bin figure2 [-- --points N] [--appendix-b]
//! ```

use tgp_bench::{chain_instance, figure2_sweep, k_sweep};
use tgp_core::bandwidth::analyze_bandwidth;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let appendix_b = args.iter().any(|a| a == "--appendix-b");
    let points = args
        .iter()
        .position(|a| a == "--points")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);

    println!("# Figure 2 reproduction — vertex weights uniform on [1, 100], seeds fixed");
    println!();
    println!("## F2a-c: p, q and p·log q versus K, for several n");
    println!();
    println!(
        "{:>8} {:>12} {:>8} {:>8} {:>12} {:>14} {:>9}",
        "n", "K", "p", "q", "p·log2 q", "n·log2 n", "ratio"
    );
    for n in [1_000usize, 10_000, 100_000] {
        for row in figure2_sweep(n, 1, 100, points, 0xF162 + n as u64) {
            let s = row.stats;
            println!(
                "{:>8} {:>12} {:>8} {:>8.2} {:>12.1} {:>14.1} {:>9.4}",
                row.n,
                row.k,
                s.p,
                s.q_bar,
                s.p_log_q,
                s.n_log_n,
                s.advantage_ratio()
            );
        }
        println!();
    }

    println!("## F2d: effect of the maximum vertex weight (n = 10 000)");
    println!();
    println!(
        "{:>8} {:>12} {:>8} {:>8} {:>14} {:>18}",
        "w_max", "K", "p", "q", "avg prime len", "2K/(w1+w2) bound"
    );
    for w_max in [2u64, 10, 100, 1000] {
        for row in figure2_sweep(10_000, 1, w_max, points, 0xF16D + w_max) {
            let s = row.stats;
            let bound = 2.0 * row.k as f64 / (1.0 + w_max as f64);
            println!(
                "{:>8} {:>12} {:>8} {:>8.2} {:>14.2} {:>18.2}",
                w_max, row.k, s.p, s.q_bar, s.avg_prime_edge_len, bound
            );
        }
        println!();
    }

    if appendix_b {
        println!("## Appendix B: TEMP_S occupancy (n = 100 000)");
        println!();
        println!(
            "{:>12} {:>8} {:>8} {:>12} {:>12} {:>12}",
            "K", "p", "q", "avg TEMP_S", "max TEMP_S", "log2 q"
        );
        let path = chain_instance(100_000, 1, 100, 0xB);
        for k in k_sweep(&path, points) {
            let (_, s) = analyze_bandwidth(&path, k).expect("swept K is feasible");
            println!(
                "{:>12} {:>8} {:>8.2} {:>12.2} {:>12} {:>12.2}",
                k.get(),
                s.p,
                s.q_bar,
                s.avg_deque_len,
                s.max_deque_len,
                s.q_bar.max(1.0).log2()
            );
        }
    }
}
