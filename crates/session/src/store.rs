//! The resident-graph store: versioned graphs, edit batches, warm-start
//! memory and the byte budget.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use tgp_graph::json::{FromJson, Value};
use tgp_graph::{json, PathGraph, Tree};

use crate::journal::{self, Journal};

/// Default resident-byte budget: enough for a few hundred 100k-node
/// chains, small enough that a misbehaving client cannot pin the heap.
pub const DEFAULT_SESSION_BUDGET: u64 = 256 << 20;

/// Slack value meaning "the edits since the last solve invalidated the
/// warm window entirely; go cold".
const SLACK_COLD: u64 = u64::MAX;

/// A session-layer failure, mapped onto the service's error envelope.
#[derive(Debug)]
pub enum SessionError {
    /// No resident graph under that id (never registered, or deleted).
    NotFound { id: String },
    /// The edit batch named a version that is no longer current.
    VersionConflict {
        id: String,
        expected: u64,
        actual: u64,
    },
    /// Registering or growing the graph would exceed the byte budget.
    BudgetExceeded { requested: u64, budget: u64 },
    /// The registered graph body is not a valid chain or tree.
    InvalidGraph { message: String },
    /// An edit in the batch is malformed or names a nonexistent target.
    InvalidEdit { message: String },
}

impl SessionError {
    /// The stable error code for the `{"error", "code"}` envelope.
    pub fn code(&self) -> &'static str {
        match self {
            SessionError::NotFound { .. } => "session_not_found",
            SessionError::VersionConflict { .. } => "version_conflict",
            SessionError::BudgetExceeded { .. } => "session_budget_exceeded",
            SessionError::InvalidGraph { .. } => "invalid_graph",
            SessionError::InvalidEdit { .. } => "invalid_edit",
        }
    }

    /// The HTTP status the service maps this error to.
    pub fn status(&self) -> u16 {
        match self {
            SessionError::NotFound { .. } => 404,
            SessionError::VersionConflict { .. } => 409,
            SessionError::BudgetExceeded { .. } => 413,
            SessionError::InvalidGraph { .. } | SessionError::InvalidEdit { .. } => 422,
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NotFound { id } => write!(f, "no session graph with id {id:?}"),
            SessionError::VersionConflict {
                id,
                expected,
                actual,
            } => write!(
                f,
                "version conflict on {id:?}: batch targets version {expected}, \
                 graph is at version {actual}"
            ),
            SessionError::BudgetExceeded { requested, budget } => write!(
                f,
                "resident graphs would occupy {requested} bytes, exceeding the \
                 session budget of {budget}"
            ),
            SessionError::InvalidGraph { message } => write!(f, "invalid graph: {message}"),
            SessionError::InvalidEdit { message } => write!(f, "invalid edit: {message}"),
        }
    }
}

impl std::error::Error for SessionError {}

fn invalid_edit(message: impl Into<String>) -> SessionError {
    SessionError::InvalidEdit {
        message: message.into(),
    }
}

/// The graph class a resident graph was registered as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// `{"node_weights", "edge_weights"}` — a linear task graph.
    Chain,
    /// `{"node_weights", "edges"}` — a tree task graph.
    Tree,
}

impl GraphKind {
    /// The kind's wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            GraphKind::Chain => "chain",
            GraphKind::Tree => "tree",
        }
    }
}

/// One edit in a `PATCH` batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Set node `index`'s weight.
    VertexWeight { index: usize, weight: u64 },
    /// Set edge `index`'s weight (chain: position in `edge_weights`;
    /// tree: position in `edges`).
    EdgeWeight { index: usize, weight: u64 },
    /// Append a new leaf node. Chains extend at the tail; trees attach
    /// the new node to `attach`.
    AddLeaf {
        attach: Option<usize>,
        node_weight: u64,
        edge_weight: u64,
    },
    /// Remove the highest-indexed node, which must be a leaf, along
    /// with its incident edge.
    RemoveLeaf,
}

impl Edit {
    /// Parses one edit object; rejects unknown ops and undeclared fields.
    pub fn from_json(value: &Value) -> Result<Edit, SessionError> {
        let Some(entries) = value.as_object() else {
            return Err(invalid_edit("each edit must be an object"));
        };
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid_edit("edit is missing the \"op\" string"))?;
        let allowed: &[&str] = match op {
            "vertex_weight" | "edge_weight" => &["op", "index", "weight"],
            "add_leaf" => &["op", "attach", "node_weight", "edge_weight"],
            "remove_leaf" => &["op"],
            other => {
                return Err(invalid_edit(format!(
                    "unknown op {other:?}; expected vertex_weight, edge_weight, \
                     add_leaf or remove_leaf"
                )))
            }
        };
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(invalid_edit(format!("op {op:?} has no field {key:?}")));
            }
        }
        let u64_field = |field: &str| {
            value.get(field).and_then(Value::as_u64).ok_or_else(|| {
                invalid_edit(format!(
                    "op {op:?} needs {field:?} as a non-negative integer"
                ))
            })
        };
        let index_field = |field: &str| {
            u64_field(field).and_then(|v| {
                usize::try_from(v)
                    .map_err(|_| invalid_edit(format!("{field:?} {v} is out of range")))
            })
        };
        match op {
            "vertex_weight" => Ok(Edit::VertexWeight {
                index: index_field("index")?,
                weight: u64_field("weight")?,
            }),
            "edge_weight" => Ok(Edit::EdgeWeight {
                index: index_field("index")?,
                weight: u64_field("weight")?,
            }),
            "add_leaf" => Ok(Edit::AddLeaf {
                attach: match value.get("attach") {
                    None => None,
                    Some(_) => Some(index_field("attach")?),
                },
                node_weight: u64_field("node_weight")?,
                edge_weight: u64_field("edge_weight")?,
            }),
            "remove_leaf" => Ok(Edit::RemoveLeaf),
            _ => unreachable!("op checked above"),
        }
    }

    /// Parses a `PATCH` batch's `"edits"` array.
    pub fn batch_from_json(value: &Value) -> Result<Vec<Edit>, SessionError> {
        let Some(items) = value.as_array() else {
            return Err(invalid_edit("\"edits\" must be an array of edit objects"));
        };
        items.iter().map(Edit::from_json).collect()
    }

    /// The edit's canonical wire form (what the journal records).
    pub fn to_json(&self) -> Value {
        match self {
            Edit::VertexWeight { index, weight } => json!({
                "op": "vertex_weight", "index": *index as u64, "weight": *weight,
            }),
            Edit::EdgeWeight { index, weight } => json!({
                "op": "edge_weight", "index": *index as u64, "weight": *weight,
            }),
            Edit::AddLeaf {
                attach,
                node_weight,
                edge_weight,
            } => match attach {
                Some(a) => json!({
                    "op": "add_leaf", "attach": *a as u64,
                    "node_weight": *node_weight, "edge_weight": *edge_weight,
                }),
                None => json!({
                    "op": "add_leaf",
                    "node_weight": *node_weight, "edge_weight": *edge_weight,
                }),
            },
            Edit::RemoveLeaf => json!({ "op": "remove_leaf" }),
        }
    }
}

/// Warm-start memory for one `(objective, params)` key.
#[derive(Debug, Clone, Copy)]
struct WarmEntry {
    /// The optimal bottleneck of the last solve under this key.
    bottleneck: u64,
    /// Accumulated bound on how far the optimum may have drifted since:
    /// the sum of `|Δweight|` over edge-weight edits, [`SLACK_COLD`]
    /// once a structural or vertex-weight edit breaks the bound.
    slack: u64,
}

/// One resident graph: the mutable JSON body, its version, and the
/// per-objective warm-start memory.
#[derive(Debug)]
pub struct Resident {
    /// The graph's kind, fixed at registration.
    pub kind: GraphKind,
    /// The graph object (`node_weights` + `edge_weights`/`edges`),
    /// mutated in place by edit batches. Public so the service can move
    /// it into a dispatch request without cloning; callers that take it
    /// must put it back before releasing the lock.
    pub graph: Value,
    /// Monotonic version: 1 at registration, +1 per applied batch.
    pub version: u64,
    /// Current node count.
    pub nodes: usize,
    /// Current edge count.
    pub edges: usize,
    warm: Vec<(Vec<u8>, WarmEntry)>,
}

impl Resident {
    /// The graph's deterministic resident-size estimate — the figure
    /// the store's byte budget charges for it. The service compares
    /// this against `--graph-spill-bytes` to decide whether a solve on
    /// this graph should run out-of-core (disk-backed flat arrays).
    pub fn resident_bytes(&self) -> u64 {
        resident_cost(self.kind, self.nodes, self.edges)
    }

    /// The warm bottleneck window for a solve keyed by `key`:
    /// `[prev − Δ, prev + Δ]`, or `None` when no prior solve exists or
    /// the edits since it invalidated the bound (the caller then solves
    /// cold).
    pub fn warm_window(&self, key: &[u8]) -> Option<(u64, u64)> {
        let entry = self.warm.iter().find(|(k, _)| k == key).map(|(_, e)| *e)?;
        if entry.slack == SLACK_COLD {
            return None;
        }
        Some((
            entry.bottleneck.saturating_sub(entry.slack),
            entry.bottleneck.saturating_add(entry.slack),
        ))
    }

    /// Records a completed solve: the optimum under `key` is
    /// `bottleneck` as of the current version, with zero drift.
    pub fn note_solve(&mut self, key: &[u8], bottleneck: u64) {
        let entry = WarmEntry {
            bottleneck,
            slack: 0,
        };
        match self.warm.iter_mut().find(|(k, _)| k == key) {
            Some((_, e)) => *e = entry,
            None => self.warm.push((key.to_vec(), entry)),
        }
    }

    /// Widens every warm entry by one applied batch's drift bound.
    fn widen(&mut self, batch_slack: u64) {
        for (_, entry) in &mut self.warm {
            entry.slack = entry.slack.saturating_add(batch_slack);
        }
    }

    /// The `GET /v1/graphs/<id>` metadata body.
    fn info(&self, id: &str) -> Value {
        json!({
            "id": id,
            "version": self.version,
            "kind": self.kind.as_str(),
            "nodes": self.nodes as u64,
            "edges": self.edges as u64,
            "bytes": resident_cost(self.kind, self.nodes, self.edges),
        })
    }
}

/// Deterministic resident-size estimate: eight bytes per stored scalar
/// (chain edges are one scalar, tree edges are three). The budget is an
/// admission bound on heap growth, not an exact allocator measurement.
fn resident_cost(kind: GraphKind, nodes: usize, edges: usize) -> u64 {
    let scalars = match kind {
        GraphKind::Chain => nodes as u64 + edges as u64,
        GraphKind::Tree => nodes as u64 + 3 * edges as u64,
    };
    8 * scalars
}

#[derive(Debug, Default)]
struct Inner {
    graphs: HashMap<String, Arc<Mutex<Resident>>>,
    next_id: u64,
}

/// The store: id-keyed resident graphs behind a byte budget, plus the
/// optional journal that makes them survive restarts.
///
/// Lock order (deadlock freedom): `inner` → any `Resident` → `journal`.
/// No method acquires an earlier lock while holding a later one.
#[derive(Debug)]
pub struct SessionStore {
    inner: Mutex<Inner>,
    journal: Mutex<Option<Journal>>,
    budget: u64,
    resident_bytes: AtomicU64,
    edits_total: AtomicU64,
    warm_solves: AtomicU64,
    cold_solves: AtomicU64,
    journal_records: AtomicU64,
}

impl SessionStore {
    /// An in-memory store (no journal) with the given byte budget.
    pub fn new(budget: u64) -> Self {
        SessionStore {
            inner: Mutex::new(Inner::default()),
            journal: Mutex::new(None),
            budget,
            resident_bytes: AtomicU64::new(0),
            edits_total: AtomicU64::new(0),
            warm_solves: AtomicU64::new(0),
            cold_solves: AtomicU64::new(0),
            journal_records: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a journal-backed store: replays every intact
    /// record in `path`, truncates any torn tail, and appends new
    /// operations to the same file.
    ///
    /// # Errors
    ///
    /// I/O failures, a foreign or future-versioned file, or a journal
    /// whose replay violates the budget or its own version sequence.
    /// The file is left untouched on error so nothing is destroyed by a
    /// misconfigured restart.
    pub fn with_journal(path: &Path, budget: u64) -> std::io::Result<SessionStore> {
        let store = SessionStore::new(budget);
        let keep_len = match journal::read(path)? {
            None => {
                *store.journal.lock().expect("journal lock poisoned") =
                    Some(Journal::create(path)?);
                return Ok(store);
            }
            Some(replay) => {
                for record in &replay.records {
                    store.apply_record(record).map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("journal replay failed: {e}"),
                        )
                    })?;
                    store.journal_records.fetch_add(1, Ordering::Relaxed);
                }
                replay.keep_len
            }
        };
        *store.journal.lock().expect("journal lock poisoned") =
            Some(Journal::open_for_append(path, keep_len)?);
        Ok(store)
    }

    /// Read-only journal inspection: replays `path` into a throwaway
    /// in-memory store — the file is never opened for writing, and a
    /// torn tail is reported rather than truncated — and returns the
    /// graph listing plus journal health fields.
    pub fn inspect(path: &Path) -> std::io::Result<Value> {
        let replay = journal::read(path)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no such session journal")
        })?;
        let store = SessionStore::new(u64::MAX);
        for record in &replay.records {
            store.apply_record(record).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("journal replay failed: {e}"),
                )
            })?;
        }
        let mut value = store.list();
        if let Value::Object(entries) = &mut value {
            entries.push((
                "journal_records".to_string(),
                json!(replay.records.len() as u64),
            ));
            entries.push(("truncated_tail".to_string(), json!(replay.truncated)));
            entries.push((
                "resident_bytes".to_string(),
                json!(store.resident_bytes.load(Ordering::Relaxed)),
            ));
        }
        Ok(value)
    }

    /// Replays one journal record into the store (no journal writes).
    fn apply_record(&self, record: &Value) -> Result<(), SessionError> {
        let op = record
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid_edit("journal record has no op"))?;
        let id = || {
            record
                .get("id")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid_edit(format!("journal {op} record has no id")))
        };
        match op {
            "register" => {
                let graph = record
                    .get("graph")
                    .ok_or_else(|| invalid_edit("journal register record has no graph"))?;
                self.insert_graph(id()?, graph.clone(), 1)?;
            }
            "patch" => {
                let id = id()?;
                let version = record
                    .get("version")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| invalid_edit("journal patch record has no version"))?;
                let edits = record
                    .get("edits")
                    .map(Edit::batch_from_json)
                    .transpose()?
                    .ok_or_else(|| invalid_edit("journal patch record has no edits"))?;
                self.apply_parsed(&id, version.saturating_sub(1), &edits, false)?;
            }
            "delete" => {
                self.delete_inner(&id()?, false)?;
            }
            "snapshot" => {
                let graphs = record
                    .get("graphs")
                    .and_then(Value::as_array)
                    .ok_or_else(|| invalid_edit("journal snapshot record has no graphs"))?;
                for entry in graphs {
                    let id = entry
                        .get("id")
                        .and_then(Value::as_str)
                        .ok_or_else(|| invalid_edit("snapshot entry has no id"))?;
                    let version = entry
                        .get("version")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| invalid_edit("snapshot entry has no version"))?;
                    let graph = entry
                        .get("graph")
                        .ok_or_else(|| invalid_edit("snapshot entry has no graph"))?;
                    self.insert_graph(id.to_string(), graph.clone(), version)?;
                }
                if let Some(next) = record.get("next_id").and_then(Value::as_u64) {
                    let mut inner = self.inner.lock().expect("session store poisoned");
                    inner.next_id = inner.next_id.max(next);
                }
            }
            other => return Err(invalid_edit(format!("unknown journal op {other:?}"))),
        }
        Ok(())
    }

    /// Validates a graph body and returns its kind and shape.
    fn validate_graph(graph: &Value) -> Result<(GraphKind, usize, usize), SessionError> {
        let fail = |message: String| SessionError::InvalidGraph { message };
        if graph.get("edges").is_some() {
            let tree =
                Tree::from_json(graph).map_err(|e| fail(format!("not a valid tree: {e}")))?;
            Ok((GraphKind::Tree, tree.len(), tree.len().saturating_sub(1)))
        } else if graph.get("edge_weights").is_some() {
            let chain =
                PathGraph::from_json(graph).map_err(|e| fail(format!("not a valid chain: {e}")))?;
            Ok((GraphKind::Chain, chain.len(), chain.edge_count()))
        } else {
            Err(fail(
                "expected a chain ({\"node_weights\", \"edge_weights\"}) or a tree \
                 ({\"node_weights\", \"edges\"})"
                    .to_string(),
            ))
        }
    }

    /// Claims `delta` bytes of budget, or fails without changing it.
    fn claim_bytes(&self, delta: u64) -> Result<(), SessionError> {
        self.resident_bytes
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |current| {
                let next = current.saturating_add(delta);
                (next <= self.budget).then_some(next)
            })
            .map(|_| ())
            .map_err(|current| SessionError::BudgetExceeded {
                requested: current.saturating_add(delta),
                budget: self.budget,
            })
    }

    fn release_bytes(&self, delta: u64) {
        let mut current = self.resident_bytes.load(Ordering::SeqCst);
        loop {
            let next = current.saturating_sub(delta);
            match self.resident_bytes.compare_exchange(
                current,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Validates and inserts a graph under an explicit id and version
    /// (registration and replay share this path).
    fn insert_graph(
        &self,
        id: String,
        graph: Value,
        version: u64,
    ) -> Result<(GraphKind, usize, usize), SessionError> {
        let (kind, nodes, edges) = Self::validate_graph(&graph)?;
        self.claim_bytes(resident_cost(kind, nodes, edges))?;
        let resident = Resident {
            kind,
            graph,
            version,
            nodes,
            edges,
            warm: Vec::new(),
        };
        let mut inner = self.inner.lock().expect("session store poisoned");
        if let Some(num) = id.strip_prefix('g').and_then(|n| n.parse::<u64>().ok()) {
            inner.next_id = inner.next_id.max(num);
        }
        inner.graphs.insert(id, Arc::new(Mutex::new(resident)));
        Ok((kind, nodes, edges))
    }

    /// Registers a graph: validates it, claims budget, journals the
    /// registration, and returns `(id, version 1)`.
    pub fn register(&self, graph: Value) -> Result<(String, u64), SessionError> {
        let (kind, nodes, edges) = Self::validate_graph(&graph)?;
        self.claim_bytes(resident_cost(kind, nodes, edges))?;
        let mut inner = self.inner.lock().expect("session store poisoned");
        inner.next_id += 1;
        let id = format!("g{}", inner.next_id);
        // Write-ahead: the record must be durable in the journal before
        // the registration is acknowledged.
        if let Err(e) = self.journal_append(&format!(
            "{{\"op\":\"register\",\"id\":\"{id}\",\"graph\":{graph}}}"
        )) {
            self.release_bytes(resident_cost(kind, nodes, edges));
            return Err(e);
        }
        let resident = Resident {
            kind,
            graph,
            version: 1,
            nodes,
            edges,
            warm: Vec::new(),
        };
        inner
            .graphs
            .insert(id.clone(), Arc::new(Mutex::new(resident)));
        Ok((id, 1))
    }

    /// The resident graph under `id`, for callers that need to hold it
    /// across a solve. Lock it *after* releasing any store-level
    /// borrow, and never call back into the store while holding it.
    pub fn resident(&self, id: &str) -> Result<Arc<Mutex<Resident>>, SessionError> {
        self.inner
            .lock()
            .expect("session store poisoned")
            .graphs
            .get(id)
            .cloned()
            .ok_or_else(|| SessionError::NotFound { id: id.to_string() })
    }

    /// Graph metadata for `GET /v1/graphs/<id>`.
    pub fn info(&self, id: &str) -> Result<Value, SessionError> {
        let arc = self.resident(id)?;
        let resident = arc.lock().expect("resident graph poisoned");
        Ok(resident.info(id))
    }

    /// Metadata for every resident graph, id-sorted.
    pub fn list(&self) -> Value {
        let mut entries: Vec<(String, Arc<Mutex<Resident>>)> = {
            let inner = self.inner.lock().expect("session store poisoned");
            inner
                .graphs
                .iter()
                .map(|(id, arc)| (id.clone(), Arc::clone(arc)))
                .collect()
        };
        entries.sort_by(|(a, _), (b, _)| {
            let num = |s: &str| s.trim_start_matches('g').parse::<u64>().unwrap_or(u64::MAX);
            num(a).cmp(&num(b)).then_with(|| a.cmp(b))
        });
        let graphs: Vec<Value> = entries
            .iter()
            .map(|(id, arc)| arc.lock().expect("resident graph poisoned").info(id))
            .collect();
        json!({ "graphs": graphs })
    }

    /// Deletes a graph, releasing its budget and journaling the delete.
    pub fn delete(&self, id: &str) -> Result<(), SessionError> {
        self.delete_inner(id, true)
    }

    fn delete_inner(&self, id: &str, journal: bool) -> Result<(), SessionError> {
        let mut inner = self.inner.lock().expect("session store poisoned");
        let arc = inner
            .graphs
            .remove(id)
            .ok_or_else(|| SessionError::NotFound { id: id.to_string() })?;
        if journal {
            if let Err(e) = self.journal_append(&format!("{{\"op\":\"delete\",\"id\":\"{id}\"}}")) {
                inner.graphs.insert(id.to_string(), arc);
                return Err(e);
            }
        }
        let resident = arc.lock().expect("resident graph poisoned");
        self.release_bytes(resident_cost(resident.kind, resident.nodes, resident.edges));
        Ok(())
    }

    /// Applies one edit batch under an optimistic version check and
    /// returns the new version. The batch is atomic: it is validated in
    /// full against the current graph before any edit is applied, so a
    /// failing batch changes nothing.
    pub fn apply(
        &self,
        id: &str,
        expected_version: u64,
        edits: &[Edit],
    ) -> Result<u64, SessionError> {
        self.apply_parsed(id, expected_version, edits, true)
    }

    fn apply_parsed(
        &self,
        id: &str,
        expected_version: u64,
        edits: &[Edit],
        journal: bool,
    ) -> Result<u64, SessionError> {
        let arc = self.resident(id)?;
        let mut resident = arc.lock().expect("resident graph poisoned");
        if resident.version != expected_version {
            return Err(SessionError::VersionConflict {
                id: id.to_string(),
                expected: expected_version,
                actual: resident.version,
            });
        }
        let plan = validate_batch(&resident, edits)?;
        if plan.byte_delta > 0 {
            self.claim_bytes(plan.byte_delta as u64)?;
        }
        if journal {
            let rendered: Vec<String> = edits.iter().map(|e| e.to_json().to_string()).collect();
            let record = format!(
                "{{\"op\":\"patch\",\"id\":\"{id}\",\"version\":{},\"edits\":[{}]}}",
                resident.version + 1,
                rendered.join(",")
            );
            if let Err(e) = self.journal_append(&record) {
                if plan.byte_delta > 0 {
                    self.release_bytes(plan.byte_delta as u64);
                }
                return Err(e);
            }
        }
        apply_batch(&mut resident, edits);
        if plan.byte_delta < 0 {
            self.release_bytes(plan.byte_delta.unsigned_abs());
        }
        resident.version += 1;
        resident.widen(plan.slack);
        self.edits_total
            .fetch_add(edits.len() as u64, Ordering::Relaxed);
        Ok(resident.version)
    }

    fn journal_append(&self, payload: &str) -> Result<(), SessionError> {
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        if let Some(journal) = journal.as_mut() {
            journal
                .append(payload)
                .map_err(|e| SessionError::InvalidEdit {
                    message: format!("journal write failed: {e}"),
                })?;
            self.journal_records.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Rewrites the journal as one snapshot of the current state.
    /// Intended for graceful shutdown (the server calls it after the
    /// workers have drained); it takes every resident lock, so it must
    /// not race in-flight solves for liveness reasons alone —
    /// correctness is protected by the locks.
    pub fn compact(&self) -> std::io::Result<()> {
        let inner = self.inner.lock().expect("session store poisoned");
        let mut ids: Vec<&String> = inner.graphs.keys().collect();
        ids.sort();
        let guards: Vec<(&String, MutexGuard<'_, Resident>)> = ids
            .iter()
            .map(|id| {
                (
                    *id,
                    inner.graphs[*id].lock().expect("resident graph poisoned"),
                )
            })
            .collect();
        let entries: Vec<String> = guards
            .iter()
            .map(|(id, r)| {
                format!(
                    "{{\"id\":\"{id}\",\"version\":{},\"graph\":{}}}",
                    r.version, r.graph
                )
            })
            .collect();
        let payload = format!(
            "{{\"op\":\"snapshot\",\"next_id\":{},\"graphs\":[{}]}}",
            inner.next_id,
            entries.join(",")
        );
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        if let Some(journal) = journal.as_mut() {
            journal.rewrite(&payload)?;
            self.journal_records.store(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Number of resident graphs.
    pub fn open_count(&self) -> usize {
        self.inner
            .lock()
            .expect("session store poisoned")
            .graphs
            .len()
    }

    /// Total edits applied since start (replay included).
    pub fn edits_total(&self) -> u64 {
        self.edits_total.load(Ordering::Relaxed)
    }

    /// Counts a session solve as warm or cold.
    pub fn record_solve(&self, warm: bool) {
        let counter = if warm {
            &self.warm_solves
        } else {
            &self.cold_solves
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Warm session solves so far.
    pub fn warm_solves(&self) -> u64 {
        self.warm_solves.load(Ordering::Relaxed)
    }

    /// Cold session solves so far.
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves.load(Ordering::Relaxed)
    }

    /// Appends the store's Prometheus series to a `/metrics` body.
    pub fn render_metrics(&self, out: &mut String) {
        out.push_str("# HELP tgp_sessions_open Resident session graphs.\n");
        out.push_str("# TYPE tgp_sessions_open gauge\n");
        out.push_str(&format!("tgp_sessions_open {}\n", self.open_count()));
        out.push_str(
            "# HELP tgp_session_resident_bytes Estimated bytes held by resident graphs.\n",
        );
        out.push_str("# TYPE tgp_session_resident_bytes gauge\n");
        out.push_str(&format!(
            "tgp_session_resident_bytes {}\n",
            self.resident_bytes.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP tgp_session_edits_total Edits applied to session graphs.\n");
        out.push_str("# TYPE tgp_session_edits_total counter\n");
        out.push_str(&format!("tgp_session_edits_total {}\n", self.edits_total()));
        out.push_str("# HELP tgp_session_solves_total Session partition solves by start mode.\n");
        out.push_str("# TYPE tgp_session_solves_total counter\n");
        out.push_str(&format!(
            "tgp_session_solves_total{{mode=\"warm\"}} {}\n",
            self.warm_solves()
        ));
        out.push_str(&format!(
            "tgp_session_solves_total{{mode=\"cold\"}} {}\n",
            self.cold_solves()
        ));
        out.push_str("# HELP tgp_session_journal_records_total Records in the session journal.\n");
        out.push_str("# TYPE tgp_session_journal_records_total counter\n");
        out.push_str(&format!(
            "tgp_session_journal_records_total {}\n",
            self.journal_records.load(Ordering::Relaxed)
        ));
    }

    /// The journal path, if this store persists.
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.journal
            .lock()
            .expect("journal lock poisoned")
            .as_ref()
            .map(Journal::path)
    }
}

/// What applying a batch will do, computed during validation so a
/// failing batch leaves the graph untouched.
struct BatchPlan {
    /// Resident-byte change (leaf adds grow, removes shrink).
    byte_delta: i64,
    /// Drift bound for the warm windows: summed `|Δweight|` of
    /// edge-weight edits, [`SLACK_COLD`] if any edit breaks the bound.
    slack: u64,
}

/// Looks up the mutable array under `key` in a validated graph object.
fn array_mut<'v>(graph: &'v mut Value, key: &str) -> &'v mut Vec<Value> {
    let Value::Object(entries) = graph else {
        unreachable!("validated graph is an object")
    };
    // Duplicate keys resolve to the last occurrence, matching
    // `Value::get`.
    let slot = entries
        .iter_mut()
        .rev()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .expect("validated graph has the field");
    let Value::Array(items) = slot else {
        unreachable!("validated graph field is an array")
    };
    items
}

fn edge_weight_of(graph: &Value, kind: GraphKind, index: usize) -> Option<u64> {
    match kind {
        GraphKind::Chain => graph.get("edge_weights")?.as_array()?.get(index)?.as_u64(),
        GraphKind::Tree => graph
            .get("edges")?
            .as_array()?
            .get(index)?
            .get("weight")?
            .as_u64(),
    }
}

/// The edge array endpoints `(a, b)` of tree edge `index`.
fn tree_edge_nodes(graph: &Value, index: usize) -> Option<(u64, u64)> {
    let edge = graph.get("edges")?.as_array()?.get(index)?;
    Some((edge.get("a")?.as_u64()?, edge.get("b")?.as_u64()?))
}

/// Validates a batch against the resident graph, simulating node/edge
/// counts so later edits see earlier ones. Read-only.
fn validate_batch(resident: &Resident, edits: &[Edit]) -> Result<BatchPlan, SessionError> {
    let mut nodes = resident.nodes;
    let mut edges = resident.edges;
    let mut byte_delta = 0i64;
    let mut slack = 0u64;
    let mut grew = false;
    let per_leaf =
        resident_cost(resident.kind, 2, 1) as i64 - resident_cost(resident.kind, 1, 0) as i64;
    for (position, edit) in edits.iter().enumerate() {
        let fail = |message: String| Err(invalid_edit(format!("edit {position}: {message}")));
        match edit {
            Edit::VertexWeight { index, .. } => {
                if *index >= nodes {
                    return fail(format!("vertex index {index} out of range (n = {nodes})"));
                }
                slack = SLACK_COLD;
            }
            Edit::EdgeWeight { index, weight } => {
                if *index >= edges {
                    return fail(format!("edge index {index} out of range (m = {edges})"));
                }
                // A weight moving from w to w' shifts any optimum by at
                // most |w − w'| (only one term of any cut's max/sum
                // changed). Edits to edges added earlier in this batch
                // already went cold via the add_leaf arm.
                if slack != SLACK_COLD {
                    let delta = match edge_weight_of(&resident.graph, resident.kind, *index) {
                        Some(old) => old.abs_diff(*weight),
                        None => SLACK_COLD,
                    };
                    slack = slack.saturating_add(delta);
                }
            }
            Edit::AddLeaf { attach, .. } => {
                match resident.kind {
                    GraphKind::Chain => {
                        if attach.is_some() {
                            return fail(
                                "chains grow at the tail; \"attach\" is not accepted".to_string(),
                            );
                        }
                    }
                    GraphKind::Tree => {
                        let Some(attach) = attach else {
                            return fail("tree add_leaf needs \"attach\"".to_string());
                        };
                        if *attach >= nodes {
                            return fail(format!(
                                "attach node {attach} out of range (n = {nodes})"
                            ));
                        }
                    }
                }
                nodes += 1;
                edges += 1;
                grew = true;
                byte_delta += per_leaf;
                slack = SLACK_COLD;
            }
            Edit::RemoveLeaf => {
                if nodes <= 1 {
                    return fail("cannot remove the last node".to_string());
                }
                if resident.kind == GraphKind::Tree {
                    // The removed node is always the highest-indexed
                    // one; it must be a leaf *now*. Nodes added earlier
                    // in this batch are invisible to the resident graph,
                    // so their degrees cannot be checked read-only and
                    // add-then-remove mixes are refused. Earlier removes
                    // are fine: they only ever drop the tail, so the
                    // surviving edges are exactly those with both
                    // endpoints below the simulated node count.
                    if grew {
                        return fail("remove_leaf cannot follow add_leaf in one batch".to_string());
                    }
                    let last = (nodes - 1) as u64;
                    let degree = (0..resident.edges)
                        .filter_map(|i| tree_edge_nodes(&resident.graph, i))
                        .filter(|(a, b)| *a < nodes as u64 && *b < nodes as u64)
                        .filter(|(a, b)| *a == last || *b == last)
                        .count();
                    if degree != 1 {
                        return fail(format!(
                            "node {last} has degree {degree}; only leaves can be removed"
                        ));
                    }
                }
                nodes -= 1;
                edges -= 1;
                byte_delta -= per_leaf;
                slack = SLACK_COLD;
            }
        }
    }
    Ok(BatchPlan { byte_delta, slack })
}

/// Applies a validated batch in place.
fn apply_batch(resident: &mut Resident, edits: &[Edit]) {
    for edit in edits {
        match edit {
            Edit::VertexWeight { index, weight } => {
                array_mut(&mut resident.graph, "node_weights")[*index] = Value::from(*weight);
            }
            Edit::EdgeWeight { index, weight } => match resident.kind {
                GraphKind::Chain => {
                    array_mut(&mut resident.graph, "edge_weights")[*index] = Value::from(*weight);
                }
                GraphKind::Tree => {
                    let edge = &mut array_mut(&mut resident.graph, "edges")[*index];
                    let Value::Object(fields) = edge else {
                        unreachable!("validated tree edge is an object")
                    };
                    let slot = fields
                        .iter_mut()
                        .rev()
                        .find(|(k, _)| k == "weight")
                        .map(|(_, v)| v)
                        .expect("validated tree edge has a weight");
                    *slot = Value::from(*weight);
                }
            },
            Edit::AddLeaf {
                attach,
                node_weight,
                edge_weight,
            } => {
                let new_index = resident.nodes as u64;
                array_mut(&mut resident.graph, "node_weights").push(Value::from(*node_weight));
                match resident.kind {
                    GraphKind::Chain => {
                        array_mut(&mut resident.graph, "edge_weights")
                            .push(Value::from(*edge_weight));
                    }
                    GraphKind::Tree => {
                        let attach = attach.expect("validated tree add_leaf has attach") as u64;
                        array_mut(&mut resident.graph, "edges").push(json!({
                            "a": attach, "b": new_index, "weight": *edge_weight,
                        }));
                    }
                }
                resident.nodes += 1;
                resident.edges += 1;
            }
            Edit::RemoveLeaf => {
                let last = (resident.nodes - 1) as u64;
                array_mut(&mut resident.graph, "node_weights").pop();
                match resident.kind {
                    GraphKind::Chain => {
                        array_mut(&mut resident.graph, "edge_weights").pop();
                    }
                    GraphKind::Tree => {
                        let edges = array_mut(&mut resident.graph, "edges");
                        let position = edges
                            .iter()
                            .position(|e| {
                                let a = e.get("a").and_then(Value::as_u64);
                                let b = e.get("b").and_then(Value::as_u64);
                                a == Some(last) || b == Some(last)
                            })
                            .expect("validated leaf has one incident edge");
                        edges.remove(position);
                    }
                }
                resident.nodes -= 1;
                resident.edges -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> Value {
        Value::parse(r#"{"node_weights": [2, 3, 5, 7], "edge_weights": [10, 1, 10]}"#).unwrap()
    }

    fn tree_graph() -> Value {
        Value::parse(
            r#"{"node_weights": [1, 2, 3, 4],
                "edges": [{"a": 0, "b": 1, "weight": 10},
                          {"a": 0, "b": 2, "weight": 20},
                          {"a": 2, "b": 3, "weight": 30}]}"#,
        )
        .unwrap()
    }

    fn edits(text: &str) -> Vec<Edit> {
        Edit::batch_from_json(&Value::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn register_get_delete_round_trip() {
        let store = SessionStore::new(1 << 20);
        let (id, version) = store.register(chain_graph()).unwrap();
        assert_eq!((id.as_str(), version), ("g1", 1));
        let info = store.info(&id).unwrap();
        assert_eq!(info["kind"].as_str(), Some("chain"));
        assert_eq!(info["nodes"].as_u64(), Some(4));
        assert_eq!(info["edges"].as_u64(), Some(3));
        assert_eq!(info["version"].as_u64(), Some(1));
        let (id2, _) = store.register(tree_graph()).unwrap();
        assert_eq!(id2, "g2");
        assert_eq!(store.open_count(), 2);
        let list = store.list();
        let ids: Vec<&str> = list["graphs"]
            .as_array()
            .unwrap()
            .iter()
            .map(|g| g["id"].as_str().unwrap())
            .collect();
        assert_eq!(ids, ["g1", "g2"]);
        store.delete(&id).unwrap();
        assert!(matches!(
            store.info(&id),
            Err(SessionError::NotFound { .. })
        ));
        assert!(matches!(
            store.delete(&id),
            Err(SessionError::NotFound { .. })
        ));
        assert_eq!(store.open_count(), 1);
        // Deleted ids are never reused.
        let (id3, _) = store.register(chain_graph()).unwrap();
        assert_eq!(id3, "g3");
    }

    #[test]
    fn rejects_unregisterable_bodies() {
        let store = SessionStore::new(1 << 20);
        for bad in [
            "{}",
            r#"{"node_weights": [1]}"#,
            r#"{"node_weights": [1, 2], "edge_weights": [1, 2]}"#,
            r#"{"node_weights": [1, 2], "edges": []}"#,
        ] {
            let err = store.register(Value::parse(bad).unwrap()).unwrap_err();
            assert!(
                matches!(err, SessionError::InvalidGraph { .. }),
                "{bad} gave {err}"
            );
            assert_eq!(err.status(), 422);
        }
        assert_eq!(store.open_count(), 0);
    }

    #[test]
    fn budget_refuses_oversized_registrations_and_recovers_on_delete() {
        // Chain cost = 8 * (4 + 3) = 56 bytes.
        let store = SessionStore::new(100);
        let (id, _) = store.register(chain_graph()).unwrap();
        let err = store.register(chain_graph()).unwrap_err();
        assert!(matches!(err, SessionError::BudgetExceeded { .. }), "{err}");
        assert_eq!(err.status(), 413);
        assert_eq!(err.code(), "session_budget_exceeded");
        store.delete(&id).unwrap();
        store.register(chain_graph()).unwrap();
    }

    #[test]
    fn version_conflicts_are_detected_and_atomic() {
        let store = SessionStore::new(1 << 20);
        let (id, v1) = store.register(chain_graph()).unwrap();
        let batch = edits(r#"[{"op": "edge_weight", "index": 0, "weight": 4}]"#);
        let v2 = store.apply(&id, v1, &batch).unwrap();
        assert_eq!(v2, 2);
        let err = store.apply(&id, v1, &batch).unwrap_err();
        assert!(matches!(err, SessionError::VersionConflict { .. }), "{err}");
        assert_eq!(err.status(), 409);
        assert_eq!(err.code(), "version_conflict");
    }

    #[test]
    fn chain_edits_apply_in_place() {
        let store = SessionStore::new(1 << 20);
        let (id, v) = store.register(chain_graph()).unwrap();
        let batch = edits(
            r#"[{"op": "vertex_weight", "index": 1, "weight": 9},
                {"op": "edge_weight", "index": 2, "weight": 6},
                {"op": "add_leaf", "node_weight": 8, "edge_weight": 2},
                {"op": "edge_weight", "index": 3, "weight": 5}]"#,
        );
        store.apply(&id, v, &batch).unwrap();
        let arc = store.resident(&id).unwrap();
        let resident = arc.lock().unwrap();
        assert_eq!(
            resident.graph.to_string(),
            r#"{"node_weights":[2,9,5,7,8],"edge_weights":[10,1,6,5]}"#
        );
        assert_eq!((resident.nodes, resident.edges), (5, 4));
        drop(resident);
        let batch = edits(r#"[{"op": "remove_leaf"}, {"op": "remove_leaf"}]"#);
        store.apply(&id, 2, &batch).unwrap();
        let resident = arc.lock().unwrap();
        assert_eq!(
            resident.graph.to_string(),
            r#"{"node_weights":[2,9,5],"edge_weights":[10,1]}"#
        );
    }

    #[test]
    fn tree_edits_apply_in_place() {
        let store = SessionStore::new(1 << 20);
        let (id, v) = store.register(tree_graph()).unwrap();
        let batch = edits(
            r#"[{"op": "edge_weight", "index": 1, "weight": 7},
                {"op": "add_leaf", "attach": 1, "node_weight": 2, "edge_weight": 5}]"#,
        );
        store.apply(&id, v, &batch).unwrap();
        let arc = store.resident(&id).unwrap();
        {
            let resident = arc.lock().unwrap();
            assert_eq!((resident.nodes, resident.edges), (5, 4));
            let edges = resident.graph.get("edges").unwrap().as_array().unwrap();
            assert_eq!(edges[1]["weight"].as_u64(), Some(7));
            assert_eq!(edges[3]["a"].as_u64(), Some(1));
            assert_eq!(edges[3]["b"].as_u64(), Some(4));
            // The edited body still parses as a tree.
            Tree::from_json(&resident.graph).unwrap();
        }
        // Node 4 is a leaf; removing it restores the old shape.
        store
            .apply(&id, 2, &edits(r#"[{"op": "remove_leaf"}]"#))
            .unwrap();
        let resident = arc.lock().unwrap();
        assert_eq!((resident.nodes, resident.edges), (4, 3));
        Tree::from_json(&resident.graph).unwrap();
    }

    #[test]
    fn invalid_edits_fail_whole_batch_without_side_effects() {
        let store = SessionStore::new(1 << 20);
        let (id, v) = store.register(tree_graph()).unwrap();
        let before = store
            .resident(&id)
            .unwrap()
            .lock()
            .unwrap()
            .graph
            .to_string();
        for bad in [
            r#"[{"op": "vertex_weight", "index": 99, "weight": 1}]"#,
            r#"[{"op": "edge_weight", "index": 0, "weight": 1},
                {"op": "edge_weight", "index": 99, "weight": 1}]"#,
            r#"[{"op": "add_leaf", "node_weight": 1, "edge_weight": 1}]"#,
            r#"[{"op": "add_leaf", "attach": 99, "node_weight": 1, "edge_weight": 1}]"#,
            r#"[{"op": "add_leaf", "attach": 0, "node_weight": 1, "edge_weight": 1},
                {"op": "remove_leaf"}]"#,
        ] {
            let err = store.apply(&id, v, &edits(bad)).unwrap_err();
            assert!(
                matches!(err, SessionError::InvalidEdit { .. }),
                "{bad}: {err}"
            );
        }
        let after = store
            .resident(&id)
            .unwrap()
            .lock()
            .unwrap()
            .graph
            .to_string();
        assert_eq!(before, after, "failed batches must not mutate the graph");
        assert_eq!(store.edits_total(), 0);
        // Repeated removes in one batch are legal when each tail node
        // is a leaf at the moment it goes: node 4 first, then node 3
        // (its degree drops to 1 once 4 is gone).
        let batch =
            edits(r#"[{"op": "add_leaf", "attach": 3, "node_weight": 1, "edge_weight": 1}]"#);
        store.apply(&id, v, &batch).unwrap();
        store
            .apply(
                &id,
                v + 1,
                &edits(r#"[{"op": "remove_leaf"}, {"op": "remove_leaf"}]"#),
            )
            .unwrap();
        let resident = store.resident(&id).unwrap();
        assert_eq!(resident.lock().unwrap().nodes, 3);

        // But a tail that is still internal after the first remove is
        // refused, and the batch stays atomic: node 4 is a leaf of the
        // star below, while node 3 keeps degree 3 without it.
        let star = Value::parse(
            r#"{"node_weights": [1, 1, 1, 1, 1],
                "edges": [{"a": 0, "b": 3, "weight": 1},
                          {"a": 1, "b": 3, "weight": 1},
                          {"a": 2, "b": 3, "weight": 1},
                          {"a": 3, "b": 4, "weight": 1}]}"#,
        )
        .unwrap();
        let (id, v) = store.register(star).unwrap();
        let err = store
            .apply(
                &id,
                v,
                &edits(r#"[{"op": "remove_leaf"}, {"op": "remove_leaf"}]"#),
            )
            .unwrap_err();
        assert!(matches!(err, SessionError::InvalidEdit { .. }), "{err}");
        assert_eq!(
            store.resident(&id).unwrap().lock().unwrap().nodes,
            5,
            "refused batches must not mutate the graph"
        );
    }

    #[test]
    fn malformed_edit_objects_are_rejected() {
        for bad in [
            r#"[7]"#,
            r#"[{"index": 0, "weight": 1}]"#,
            r#"[{"op": "frobnicate"}]"#,
            r#"[{"op": "remove_leaf", "index": 0}]"#,
            r#"[{"op": "edge_weight", "index": 0}]"#,
            r#"[{"op": "edge_weight", "index": -1, "weight": 2}]"#,
        ] {
            let err = Edit::batch_from_json(&Value::parse(bad).unwrap()).unwrap_err();
            assert!(
                matches!(err, SessionError::InvalidEdit { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn warm_windows_track_edge_slack_and_go_cold_on_structure() {
        let store = SessionStore::new(1 << 20);
        let (id, v) = store.register(chain_graph()).unwrap();
        let arc = store.resident(&id).unwrap();
        let key = b"lexicographic/10";
        assert_eq!(arc.lock().unwrap().warm_window(key), None);
        arc.lock().unwrap().note_solve(key, 10);
        assert_eq!(arc.lock().unwrap().warm_window(key), Some((10, 10)));
        // Edge 0: 10 → 7 is a drift bound of 3.
        let v = store
            .apply(
                &id,
                v,
                &edits(r#"[{"op": "edge_weight", "index": 0, "weight": 7}]"#),
            )
            .unwrap();
        assert_eq!(arc.lock().unwrap().warm_window(key), Some((7, 13)));
        // Another ±2 widens to ±5.
        let v = store
            .apply(
                &id,
                v,
                &edits(r#"[{"op": "edge_weight", "index": 1, "weight": 3}]"#),
            )
            .unwrap();
        assert_eq!(arc.lock().unwrap().warm_window(key), Some((5, 15)));
        // A solve snaps the window shut at the new optimum.
        arc.lock().unwrap().note_solve(key, 7);
        assert_eq!(arc.lock().unwrap().warm_window(key), Some((7, 7)));
        // Vertex edits invalidate the bound entirely.
        store
            .apply(
                &id,
                v,
                &edits(r#"[{"op": "vertex_weight", "index": 0, "weight": 1}]"#),
            )
            .unwrap();
        assert_eq!(arc.lock().unwrap().warm_window(key), None);
        // Until the next solve re-establishes it.
        arc.lock().unwrap().note_solve(key, 7);
        assert_eq!(arc.lock().unwrap().warm_window(key), Some((7, 7)));
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "tgp-session-store-{tag}-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn state_of(store: &SessionStore) -> Vec<(String, u64, String)> {
        let list = store.list();
        list["graphs"]
            .as_array()
            .unwrap()
            .iter()
            .map(|g| {
                let id = g["id"].as_str().unwrap().to_string();
                let arc = store.resident(&id).unwrap();
                let resident = arc.lock().unwrap();
                (id.clone(), resident.version, resident.graph.to_string())
            })
            .collect()
    }

    #[test]
    fn journal_replay_restores_exact_versions_and_graphs() {
        let path = temp_journal("replay");
        {
            let store = SessionStore::with_journal(&path, 1 << 20).unwrap();
            let (a, v) = store.register(chain_graph()).unwrap();
            store
                .apply(
                    &a,
                    v,
                    &edits(r#"[{"op": "edge_weight", "index": 0, "weight": 4}]"#),
                )
                .unwrap();
            store
                .apply(
                    &a,
                    v + 1,
                    &edits(r#"[{"op": "add_leaf", "node_weight": 6, "edge_weight": 2}]"#),
                )
                .unwrap();
            let (b, _) = store.register(tree_graph()).unwrap();
            store.delete(&b).unwrap();
            store.register(tree_graph()).unwrap();
            // No compaction, no graceful anything: the reopen sees the
            // raw log, exactly what a kill -9 leaves behind.
            let expected = state_of(&store);
            drop(store);
            let reopened = SessionStore::with_journal(&path, 1 << 20).unwrap();
            assert_eq!(state_of(&reopened), expected);
            // Ids keep advancing past deleted ones after replay.
            let (next, _) = reopened.register(chain_graph()).unwrap();
            assert_eq!(next, "g4");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_snapshots_and_log_replays_on_top() {
        let path = temp_journal("compact");
        {
            let store = SessionStore::with_journal(&path, 1 << 20).unwrap();
            let (a, v) = store.register(chain_graph()).unwrap();
            store
                .apply(
                    &a,
                    v,
                    &edits(r#"[{"op": "edge_weight", "index": 1, "weight": 9}]"#),
                )
                .unwrap();
            store.compact().unwrap();
            // Post-compaction appends replay on top of the snapshot.
            store
                .apply(
                    &a,
                    v + 1,
                    &edits(r#"[{"op": "vertex_weight", "index": 0, "weight": 3}]"#),
                )
                .unwrap();
            let expected = state_of(&store);
            drop(store);
            let replay = journal::read(&path).unwrap().unwrap();
            assert_eq!(replay.records.len(), 2, "snapshot + one patch");
            assert_eq!(replay.records[0]["op"].as_str(), Some("snapshot"));
            let reopened = SessionStore::with_journal(&path, 1 << 20).unwrap();
            assert_eq!(state_of(&reopened), expected);
            let arc = reopened.resident(&a).unwrap();
            assert_eq!(arc.lock().unwrap().version, 3);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_that_exceeds_the_budget_refuses_to_open() {
        let path = temp_journal("overbudget");
        {
            let store = SessionStore::with_journal(&path, 1 << 20).unwrap();
            store.register(chain_graph()).unwrap();
        }
        let err = SessionStore::with_journal(&path, 10).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The file is untouched: reopening with a sane budget works.
        let store = SessionStore::with_journal(&path, 1 << 20).unwrap();
        assert_eq!(store.open_count(), 1);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metrics_render_counts() {
        let store = SessionStore::new(1 << 20);
        let (id, v) = store.register(chain_graph()).unwrap();
        store
            .apply(
                &id,
                v,
                &edits(r#"[{"op": "edge_weight", "index": 0, "weight": 7}]"#),
            )
            .unwrap();
        store.record_solve(true);
        store.record_solve(false);
        store.record_solve(true);
        let mut out = String::new();
        store.render_metrics(&mut out);
        assert!(out.contains("tgp_sessions_open 1"), "{out}");
        assert!(out.contains("tgp_session_edits_total 1"), "{out}");
        assert!(
            out.contains("tgp_session_solves_total{mode=\"warm\"} 2"),
            "{out}"
        );
        assert!(
            out.contains("tgp_session_solves_total{mode=\"cold\"} 1"),
            "{out}"
        );
        assert!(out.contains("tgp_session_resident_bytes 56"), "{out}");
    }
}
