//! Stateful partition sessions: resident graphs, edit batches, and the
//! warm-start memory that lets re-solves skip the stateless parse+solve
//! path.
//!
//! The stateless `POST /v1/partition` endpoint pays full JSON parse plus
//! a from-scratch solve on every request, even when a client
//! re-partitions the *same* graph after a handful of weight edits. This
//! crate keeps the graph resident instead:
//!
//! * [`SessionStore`] — a byte-budgeted map of versioned resident
//!   graphs. Clients register a graph once, then send *edit batches*
//!   (vertex-weight and edge-weight updates, leaf add/remove) that are
//!   applied atomically under an optimistic version check.
//! * Warm-start memory — after each solve the store remembers the
//!   optimal bottleneck per `(objective, params)` key, and each edit
//!   batch widens a slack interval around it. The next solve seeds the
//!   bottleneck binary search with `[prev − Δ, prev + Δ]`; the warm
//!   solvers in `tgp-core` *certify* the window before trusting it, so
//!   the result is byte-identical to a cold solve whether or not the
//!   hint was any good.
//! * [`journal`] — an append-only edit journal (snapshot + log,
//!   versioned and checksummed like the service's cache dumps) that is
//!   replayed on restart, restoring every graph to its exact last
//!   acknowledged version even after `kill -9`.
//!
//! The crate is std-only and transport-agnostic: the HTTP surface
//! (`/v1/graphs`) lives in `tgp-service`, the CLI inspection in `tgp`.

pub mod journal;
pub mod store;

pub use store::{Edit, GraphKind, Resident, SessionError, SessionStore, DEFAULT_SESSION_BUDGET};
