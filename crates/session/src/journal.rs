//! The append-only session journal: snapshot + log persistence for the
//! resident-graph store.
//!
//! # File format
//!
//! ```text
//! [8]  magic  b"TGPSESSJ"
//! [8]  format version (little-endian u64, currently 1)
//! then zero or more records:
//! [8]  payload length in bytes
//! [8]  FNV-1a checksum of the payload
//! [..] payload — one compact JSON operation object
//! ```
//!
//! Operations are `register`, `patch`, `delete` (appended live, *before*
//! the mutation is acknowledged) and `snapshot` (written whole at
//! compaction). Appends go straight to the OS page cache, which survives
//! a `kill -9` of the process — only the machine losing power can drop
//! an acknowledged record, the same durability class as the service's
//! cache dumps.
//!
//! # Replay
//!
//! [`read`] validates the header strictly (a foreign or future-versioned
//! file is an error, never partially loaded) and then accepts the
//! longest intact prefix of records: the first record with a short
//! header, an over-long length, a checksum mismatch or an unparsable
//! payload ends replay, and the store truncates the file there — a torn
//! tail from a mid-write crash costs the unacknowledged record, nothing
//! else.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tgp_graph::json::Value;

const MAGIC: &[u8; 8] = b"TGPSESSJ";
const FORMAT_VERSION: u64 = 1;
const HEADER_LEN: u64 = 16;

/// Largest single record accepted on replay: a length field beyond this
/// is treated as a torn write, not an allocation request.
const MAX_RECORD_LEN: u64 = 1 << 32;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

fn corrupt(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// The intact prefix of a journal file.
#[derive(Debug)]
pub struct Replay {
    /// Every fully-validated operation, in append order.
    pub records: Vec<Value>,
    /// Byte offset of the end of the last intact record; the file is
    /// truncated here before appending resumes.
    pub keep_len: u64,
    /// Whether a torn tail was discarded.
    pub truncated: bool,
}

/// Reads and validates a journal file. `Ok(None)` when the file does
/// not exist (first boot); an error when it exists but is not a session
/// journal at a known version — the caller must not overwrite it.
pub fn read(path: &Path) -> io::Result<Option<Replay>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < HEADER_LEN as usize {
        return Err(corrupt("session journal is shorter than its header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("not a session journal (bad magic)"));
    }
    let version = read_u64(&bytes, 8);
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "session journal format {version} is not supported (expected {FORMAT_VERSION})"
        )));
    }
    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    loop {
        if bytes.len() - offset < 16 {
            break;
        }
        let len = read_u64(&bytes, offset);
        let checksum = read_u64(&bytes, offset + 8);
        if len > MAX_RECORD_LEN {
            break;
        }
        let Some(end) = (offset + 16).checked_add(len as usize) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[offset + 16..end];
        if fnv1a(payload) != checksum {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(value) = Value::parse(text) else {
            break;
        };
        records.push(value);
        offset = end;
    }
    Ok(Some(Replay {
        records,
        keep_len: offset as u64,
        truncated: offset < bytes.len(),
    }))
}

/// An open journal file, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Creates a fresh journal (header only), replacing nothing: the
    /// caller has already established the file does not exist.
    pub fn create(path: &Path) -> io::Result<Journal> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.write_all(&header)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Opens an existing journal for appending, first truncating any
    /// torn tail past `keep_len` (as reported by [`read`]).
    pub fn open_for_append(path: &Path, keep_len: u64) -> io::Result<Journal> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(keep_len)?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file,
        };
        journal.file.seek(SeekFrom::End(0))?;
        Ok(journal)
    }

    /// Appends one operation record. The record is written with a
    /// single `write_all`, so a crash mid-call leaves at most one torn
    /// tail for [`read`] to discard.
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        let bytes = payload.as_bytes();
        let mut record = Vec::with_capacity(16 + bytes.len());
        record.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        record.extend_from_slice(&fnv1a(bytes).to_le_bytes());
        record.extend_from_slice(bytes);
        self.file.write_all(&record)
    }

    /// Compaction: atomically replaces the whole journal with a header
    /// plus the given single (snapshot) record, via a temp sibling and
    /// rename.
    pub fn rewrite(&mut self, payload: &str) -> io::Result<()> {
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut journal = Journal::create(&tmp)?;
            journal.append(payload)?;
            journal.file.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old handle points at the unlinked inode; reopen.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> PathBuf {
        self.path.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "tgp-session-journal-{tag}-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_path("round-trip");
        {
            let mut journal = Journal::create(&path).unwrap();
            journal.append(r#"{"op":"register","id":"g1"}"#).unwrap();
            journal.append(r#"{"op":"delete","id":"g1"}"#).unwrap();
        }
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.truncated);
        assert_eq!(replay.records[0]["op"].as_str(), Some("register"));
        assert_eq!(replay.records[1]["op"].as_str(), Some("delete"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_first_boot() {
        let path = temp_path("missing");
        assert!(read(&path).unwrap().is_none());
    }

    #[test]
    fn torn_tails_are_discarded_not_fatal() {
        let path = temp_path("torn");
        {
            let mut journal = Journal::create(&path).unwrap();
            journal.append(r#"{"op":"register","id":"g1"}"#).unwrap();
            journal.append(r#"{"op":"delete","id":"g1"}"#).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut the second record in half, as a crash mid-write would.
        let cut = full.len() - 10;
        std::fs::write(&path, &full[..cut]).unwrap();
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.truncated);
        // Re-opening truncates the tail and appends cleanly after it.
        {
            let mut journal = Journal::open_for_append(&path, replay.keep_len).unwrap();
            journal.append(r#"{"op":"delete","id":"g1"}"#).unwrap();
        }
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.truncated);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_modes_stop_at_the_last_good_record() {
        let path = temp_path("corrupt");
        {
            let mut journal = Journal::create(&path).unwrap();
            journal.append(r#"{"op":"register","id":"g1"}"#).unwrap();
            journal.append(r#"{"op":"delete","id":"g1"}"#).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let second_record_at = {
            let len = read_u64(&full, HEADER_LEN as usize) as usize;
            HEADER_LEN as usize + 16 + len
        };
        // Flip a payload byte in the second record: checksum mismatch.
        let mut flipped = full.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.truncated);
        assert_eq!(replay.keep_len as usize, second_record_at);
        // An absurd length field is a torn write, not an allocation.
        let mut hostile = full[..second_record_at].to_vec();
        hostile.extend_from_slice(&u64::MAX.to_le_bytes());
        hostile.extend_from_slice(&[0u8; 8]);
        std::fs::write(&path, &hostile).unwrap();
        assert_eq!(read(&path).unwrap().unwrap().records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_and_future_files_are_errors_not_overwrites() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(read(&path).is_err());
        let mut future = Vec::new();
        future.extend_from_slice(MAGIC);
        future.extend_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(read(&path).is_err());
        std::fs::write(&path, b"short").unwrap();
        assert!(read(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_compacts_to_a_single_record() {
        let path = temp_path("rewrite");
        {
            let mut journal = Journal::create(&path).unwrap();
            for i in 0..10 {
                journal
                    .append(&format!(r#"{{"op":"register","id":"g{i}"}}"#))
                    .unwrap();
            }
            journal.rewrite(r#"{"op":"snapshot","graphs":[]}"#).unwrap();
            // Appends after a rewrite land in the new file.
            journal.append(r#"{"op":"register","id":"g11"}"#).unwrap();
        }
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0]["op"].as_str(), Some("snapshot"));
        assert_eq!(replay.records[1]["op"].as_str(), Some("register"));
        std::fs::remove_file(&path).unwrap();
    }
}
