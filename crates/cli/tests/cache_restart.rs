//! Crash-recovery test for the result-cache journal against the real
//! `tgp serve` binary: solves populate the cache (each insert is
//! journaled on ack), the server is killed with SIGKILL (no graceful
//! shutdown, no compaction), and a restart on the same `--cache-file`
//! must replay every acked entry — proven by the warm-load counter and
//! by re-requests hitting the cache instead of re-solving.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

struct ServeChild {
    child: Child,
    addr: String,
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `tgp serve --cache-file` on an ephemeral port and waits for
/// the listening banner.
fn spawn_serve(io: &str, cache_file: &std::path::Path) -> ServeChild {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tgp"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--io",
            io,
            "--workers",
            "2",
            "--cache-file",
            cache_file.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tgp serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let line = rx
            .recv_timeout(remaining)
            .expect("server banner before timeout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after banner")
                .to_string();
        }
    };
    ServeChild { child, addr }
}

/// One exchange on a fresh connection; returns status and body.
fn roundtrip(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// `tgp_<name> <value>` from a `/metrics` body.
fn gauge(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from metrics:\n{metrics}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an integer"))
}

fn modes() -> Vec<&'static str> {
    if cfg!(target_os = "linux") {
        vec!["threads", "epoll"]
    } else {
        vec!["threads"]
    }
}

#[test]
fn sigkill_and_restart_replay_every_acked_cache_entry() {
    for io in modes() {
        let path = std::env::temp_dir().join(format!(
            "tgp-cache-restart-{}-{io}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let first = spawn_serve(io, &path);

        // Five distinct solves, each inserted (and journaled) on ack.
        let requests: Vec<String> = (0..5u64)
            .map(|i| {
                format!(
                    r#"{{"objective":"lexicographic","bound":{},"graph":{{"node_weights":[2,3,5,7,2,8],"edge_weights":[10,1,10,2,6]}}}}"#,
                    12 + i
                )
            })
            .collect();
        let mut bodies = Vec::new();
        for request in &requests {
            let (status, body) = roundtrip(&first.addr, "POST", "/v1/partition", request);
            assert_eq!(status, 200, "{body}");
            bodies.push(body);
        }
        let (_, metrics) = roundtrip(&first.addr, "GET", "/metrics", "");
        assert_eq!(gauge(&metrics, "tgp_cache_entries"), 5, "{metrics}");
        assert!(
            gauge(&metrics, "tgp_cache_journal_bytes") > 0,
            "journal must have grown:\n{metrics}"
        );

        // SIGKILL (`Child::kill` on unix): no shutdown dump, no
        // compaction — append-on-ack is all that survives.
        drop(first);

        let second = spawn_serve(io, &path);

        // Every acked entry replayed.
        let (_, metrics) = roundtrip(&second.addr, "GET", "/metrics", "");
        assert_eq!(gauge(&metrics, "tgp_cache_entries"), 5, "{metrics}");
        assert_eq!(
            gauge(&metrics, "tgp_cache_warm_loaded_total"),
            5,
            "{metrics}"
        );
        let hits_before = gauge(&metrics, "tgp_cache_hits_total");

        // Re-requests are served from the replayed cache, byte-identical
        // to the pre-crash responses.
        for (request, expected) in requests.iter().zip(&bodies) {
            let (status, body) = roundtrip(&second.addr, "POST", "/v1/partition", request);
            assert_eq!(status, 200, "{body}");
            assert_eq!(&body, expected, "replayed entry diverged");
        }
        let (_, metrics) = roundtrip(&second.addr, "GET", "/metrics", "");
        assert_eq!(
            gauge(&metrics, "tgp_cache_hits_total"),
            hits_before + 5,
            "all five re-requests must hit the replayed cache:\n{metrics}"
        );

        drop(second);
        let _ = std::fs::remove_file(&path);
    }
}
