//! Registry conformance: the CLI and the HTTP service are two thin
//! front ends over the same solver registry, so for every registered
//! objective the bytes `tgp partition <objective> …` prints must be
//! exactly the body `POST /v1/partition` returns for the equivalent
//! request (plus the CLI's trailing newline). The golden table below is
//! checked against the registry itself, so adding a solver without
//! extending it fails the suite.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

use tgp_service::{IoMode, Server, ServerConfig};
use tgp_solvers::Registry;

/// One golden request per objective: the CLI flags and the JSON params
/// they translate to, plus which graph fixture the objective expects.
struct Golden {
    objective: &'static str,
    cli_flags: &'static [&'static str],
    /// Comma-joined `"key":value` fragments, in schema order.
    params_json: &'static str,
    graph: &'static str,
}

const CHAIN: &str = r#"{"node_weights":[9,7,5,8,6,4],"edge_weights":[3,9,2,7,4]}"#;
const TREE: &str = r#"{"node_weights":[5,4,3,6,2,7],"edges":[{"a":0,"b":1,"weight":4},{"a":0,"b":2,"weight":2},{"a":1,"b":3,"weight":5},{"a":1,"b":4,"weight":3},{"a":2,"b":5,"weight":6}]}"#;
const PROCESS: &str = r#"{"node_weights":[5,4,3,6,2,7],"edges":[{"a":0,"b":1,"weight":4},{"a":0,"b":2,"weight":2},{"a":1,"b":3,"weight":5},{"a":1,"b":4,"weight":3},{"a":2,"b":5,"weight":6},{"a":3,"b":5,"weight":2}]}"#;

const GOLDEN: &[Golden] = &[
    Golden {
        objective: "bandwidth",
        cli_flags: &["--bound", "20"],
        params_json: r#""bound":20"#,
        graph: CHAIN,
    },
    Golden {
        objective: "bottleneck",
        cli_flags: &["--bound", "15"],
        params_json: r#""bound":15"#,
        graph: TREE,
    },
    Golden {
        objective: "procmin",
        cli_flags: &["--bound", "15"],
        params_json: r#""bound":15"#,
        graph: TREE,
    },
    Golden {
        objective: "compose",
        cli_flags: &["--bound", "15"],
        params_json: r#""bound":15"#,
        graph: TREE,
    },
    Golden {
        objective: "lexicographic",
        cli_flags: &["--bound", "20"],
        params_json: r#""bound":20"#,
        graph: CHAIN,
    },
    Golden {
        objective: "tree-bandwidth",
        cli_flags: &["--bound", "15"],
        params_json: r#""bound":15"#,
        graph: TREE,
    },
    Golden {
        objective: "approx",
        cli_flags: &["--bound", "20"],
        params_json: r#""bound":20"#,
        graph: PROCESS,
    },
    Golden {
        objective: "nicol",
        cli_flags: &["--bound", "20"],
        params_json: r#""bound":20"#,
        graph: CHAIN,
    },
    Golden {
        objective: "coc",
        cli_flags: &["--processors", "3", "--algorithm", "probe"],
        params_json: r#""processors":3,"algorithm":"probe""#,
        graph: CHAIN,
    },
    Golden {
        objective: "bokhari",
        cli_flags: &["--processors", "3"],
        params_json: r#""processors":3"#,
        graph: CHAIN,
    },
    Golden {
        objective: "hansen-lih",
        cli_flags: &["--processors", "3"],
        params_json: r#""processors":3"#,
        graph: CHAIN,
    },
    Golden {
        objective: "hetero",
        cli_flags: &["--speeds", "4,2,1"],
        params_json: r#""speeds":[4,2,1]"#,
        graph: CHAIN,
    },
    Golden {
        objective: "host-satellite",
        cli_flags: &["--satellites", "2", "--root", "0"],
        params_json: r#""satellites":2,"root":0"#,
        graph: TREE,
    },
];

fn http_body(golden: &Golden) -> String {
    format!(
        r#"{{"objective":"{}",{},"graph":{}}}"#,
        golden.objective, golden.params_json, golden.graph
    )
}

/// Runs `tgp partition <objective> <flags…>` with `graph` on stdin and
/// returns the raw stdout bytes.
fn cli_bytes(golden: &Golden) -> Vec<u8> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tgp"))
        .arg("partition")
        .arg(golden.objective)
        .args(golden.cli_flags)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(golden.graph.as_bytes())
        .expect("stdin writable");
    let out = child.wait_with_output().expect("binary finishes");
    assert!(
        out.status.success(),
        "tgp partition {} failed: {}",
        golden.objective,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// POSTs `body` to the live server and returns (status, raw body bytes).
fn post(server: &Server, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let head_end = reply
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = String::from_utf8_lossy(&reply[..head_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line parses");
    (status, reply[head_end + 4..].to_vec())
}

/// The io modes this target can run: conformance must hold under both
/// front-ends, since they frame request bytes differently.
fn modes() -> Vec<IoMode> {
    if cfg!(target_os = "linux") {
        vec![IoMode::Threads, IoMode::Epoll]
    } else {
        vec![IoMode::Threads]
    }
}

fn start_server(io: IoMode) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

#[test]
fn golden_table_covers_the_whole_registry() {
    let mut covered: Vec<&str> = GOLDEN.iter().map(|g| g.objective).collect();
    covered.sort_unstable();
    let mut registered: Vec<&str> = Registry::shared().names().to_vec();
    registered.sort_unstable();
    assert_eq!(
        covered, registered,
        "the golden table must name exactly the registered objectives"
    );
}

#[test]
fn cli_and_http_agree_byte_for_byte_on_every_objective() {
    for io in modes() {
        let mut server = start_server(io);
        for golden in GOLDEN {
            let (status, http) = post(&server, "/v1/partition", &http_body(golden));
            assert_eq!(
                status,
                200,
                "[{io:?}] {}: {}",
                golden.objective,
                String::from_utf8_lossy(&http)
            );
            // The service terminates bodies with `\n`, the CLI's
            // `println` does the same — the byte streams must match
            // exactly, in either io mode.
            let cli = cli_bytes(golden);
            assert_eq!(
                cli,
                http,
                "[{io:?}] {}: CLI bytes differ from HTTP body\nCLI:  {}\nHTTP: {}",
                golden.objective,
                String::from_utf8_lossy(&cli),
                String::from_utf8_lossy(&http)
            );
        }
        server.shutdown();
    }
}

/// GETs `path` and returns the body text.
fn get_text(server: &Server, path: &str) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let head_end = reply
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    String::from_utf8_lossy(&reply[head_end + 4..]).into_owned()
}

/// The out-of-core path: with `--graph-spill-bytes 0` every flat-capable
/// request (bandwidth, bottleneck, lexicographic) ingests into
/// *disk-backed* flat arrays and solves there; the rest falls through to
/// the registry. Either way the response bytes must still match the CLI
/// exactly, and `/metrics` must attribute the three flat solves to the
/// disk backing.
#[test]
fn flat_disk_backing_agrees_byte_for_byte_with_the_cli() {
    for io in modes() {
        let mut server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            io,
            graph_spill_bytes: 0,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        for golden in GOLDEN {
            let (status, http) = post(&server, "/v1/partition", &http_body(golden));
            assert_eq!(
                status,
                200,
                "[{io:?}] {}: {}",
                golden.objective,
                String::from_utf8_lossy(&http)
            );
            let cli = cli_bytes(golden);
            assert_eq!(
                cli,
                http,
                "[{io:?}] {}: disk-backed flat solve differs from CLI\nCLI:  {}\nHTTP: {}",
                golden.objective,
                String::from_utf8_lossy(&cli),
                String::from_utf8_lossy(&http)
            );
        }
        let metrics = get_text(&server, "/metrics");
        assert!(
            metrics.contains("tgp_store_backing{kind=\"disk\"} 3"),
            "[{io:?}] expected 3 disk-backed ingests (bandwidth, bottleneck, \
             lexicographic):\n{metrics}"
        );
        assert!(
            metrics.contains("tgp_graph_spilled_total 3"),
            "[{io:?}] {metrics}"
        );
        server.shutdown();
    }
}

#[test]
fn undeclared_fields_are_422_unknown_field_for_every_objective() {
    for io in modes() {
        let mut server = start_server(io);
        for golden in GOLDEN {
            let body = format!(
                r#"{{"objective":"{}",{},"zzz_not_a_field":1,"graph":{}}}"#,
                golden.objective, golden.params_json, golden.graph
            );
            let (status, reply) = post(&server, "/v1/partition", &body);
            let text = String::from_utf8_lossy(&reply);
            assert_eq!(status, 422, "[{io:?}] {}: {text}", golden.objective);
            assert!(
                text.contains(r#""code":"unknown_field""#),
                "[{io:?}] {}: {text}",
                golden.objective
            );
        }
        server.shutdown();
    }
}

#[test]
fn wrong_graph_shape_is_422_wrong_graph_kind_for_every_objective() {
    for io in modes() {
        let mut server = start_server(io);
        for golden in GOLDEN {
            // Feed each objective the opposite shape: trees/process
            // graphs get a chain, chain objectives get a tree.
            let wrong = if golden.graph == CHAIN { TREE } else { CHAIN };
            let body = format!(
                r#"{{"objective":"{}",{},"graph":{}}}"#,
                golden.objective, golden.params_json, wrong
            );
            let (status, reply) = post(&server, "/v1/partition", &body);
            let text = String::from_utf8_lossy(&reply);
            assert_eq!(status, 422, "[{io:?}] {}: {text}", golden.objective);
            assert!(
                text.contains(r#""code":"wrong_graph_kind""#),
                "[{io:?}] {}: {text}",
                golden.objective
            );
        }
        server.shutdown();
    }
}

/// The sharded runtime must be invisible in the bytes: under two
/// `SO_REUSEPORT` event loops every objective still answers exactly
/// the CLI's output, on every connection (each golden gets a fresh
/// connection so the kernel is free to spread them across loops), and
/// every request gets a globally unique trace id even though two loops
/// mint them concurrently.
#[test]
#[cfg(target_os = "linux")]
fn two_loop_server_stays_byte_identical_with_unique_traces() {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io: IoMode::Epoll,
        loops: 2,
        debug_endpoints: true,
        cache: tgp_service::CacheConfig::with_budget(0), // every request solves
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    assert_eq!(server.net_loops(), 2, "server did not start two loops");
    // Three passes over the golden set: 39 fresh connections, hashed
    // across the two accept queues by the kernel.
    for _ in 0..3 {
        for golden in GOLDEN {
            let (status, http) = post(&server, "/v1/partition", &http_body(golden));
            assert_eq!(
                status,
                200,
                "[2 loops] {}: {}",
                golden.objective,
                String::from_utf8_lossy(&http)
            );
            let cli = cli_bytes(golden);
            assert_eq!(
                cli,
                http,
                "[2 loops] {}: CLI bytes differ from HTTP body\nCLI:  {}\nHTTP: {}",
                golden.objective,
                String::from_utf8_lossy(&cli),
                String::from_utf8_lossy(&http)
            );
        }
    }
    // Both loops' counters must account for every accepted connection
    // (the unlabeled family is the render-time sum of the two).
    let metrics = get_text(&server, "/metrics");
    let accepted: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("tgp_accepted_connections_total "))
        .expect("unlabeled accepted sum rendered")
        .trim()
        .parse()
        .expect("numeric accepted sum");
    let per_loop: u64 = (0..2)
        .map(|i| {
            metrics
                .lines()
                .find_map(|l| {
                    l.strip_prefix(&format!("tgp_accepted_connections_total{{loop=\"{i}\"}} "))
                })
                .unwrap_or_else(|| panic!("loop {i} accepted series rendered\n{metrics}"))
                .trim()
                .parse::<u64>()
                .expect("numeric per-loop accepted")
        })
        .sum();
    assert_eq!(accepted, per_loop, "unlabeled sum != sum of loop series");
    // 39 goldens + the scrape itself have been accepted by now.
    assert!(accepted >= 39, "accepted {accepted} < 39 exchanges");
    // Every retained trace id is unique: the mint counter is global,
    // not per-loop, so two loops can never stamp the same id.
    let slow = get_text(&server, "/debug/slow?n=64");
    let parsed = tgp_graph::json::Value::parse(slow.trim()).expect("debug/slow JSON");
    let mut ids: Vec<String> = match &parsed["traces"] {
        tgp_graph::json::Value::Array(traces) => traces
            .iter()
            .map(|t| {
                t["trace"]
                    .as_str()
                    .expect("trace id is a string")
                    .to_string()
            })
            .collect(),
        other => panic!("traces is not an array: {other:?}"),
    };
    let total = ids.len();
    assert!(total >= 39, "only {total} traces retained");
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), total, "duplicate trace ids across loops");
    server.shutdown();
}

#[test]
fn cli_rejects_flags_outside_the_schema() {
    let out = Command::new(env!("CARGO_BIN_EXE_tgp"))
        .args(["partition", "bandwidth", "--bound", "20", "--speeds", "1"])
        .stdin(Stdio::null())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("does not accept --speeds"), "{err}");
}

#[test]
fn canonical_keys_survive_key_reordering_but_not_value_changes() {
    use tgp_graph::json::Value;
    let registry = Registry::shared();
    for golden in GOLDEN {
        let forward = Value::parse(&http_body(golden)).unwrap();
        // Reverse the top-level field order; content is untouched.
        let Value::Object(fields) = forward.clone() else {
            panic!("request is an object")
        };
        let reversed = Value::Object(fields.into_iter().rev().collect());

        let (_, solver, request) = registry.dispatch(&forward).expect(golden.objective);
        let key = solver.canonical_key(&request);
        let (_, _, reordered) = registry.dispatch(&reversed).expect(golden.objective);
        assert_eq!(
            key,
            solver.canonical_key(&reordered),
            "{}: canonical key must ignore field order",
            golden.objective
        );
    }
    // Same shape, one weight changed: the keys must differ.
    let a = Value::parse(&http_body(&GOLDEN[0])).unwrap();
    let b = Value::parse(&http_body(&GOLDEN[0]).replace("[9,7", "[8,7")).unwrap();
    let (_, solver, req_a) = registry.dispatch(&a).unwrap();
    let (_, _, req_b) = registry.dispatch(&b).unwrap();
    assert_ne!(solver.canonical_key(&req_a), solver.canonical_key(&req_b));
}

/// The objectives table in `docs/SERVICE.md` is generated
/// (`tgp objectives --markdown`) rather than hand-mirrored; `--check`
/// diffs the marker-delimited block against the live registry, so a new
/// solver fails this test until the docs are regenerated.
#[test]
fn service_docs_objectives_table_matches_registry() {
    let docs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVICE.md");
    let out = Command::new(env!("CARGO_BIN_EXE_tgp"))
        .args(["objectives", "--check", docs])
        .stdin(Stdio::null())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "`tgp objectives --check docs/SERVICE.md` failed; regenerate the table with \
         `tgp objectives --markdown`:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Same gate for the endpoint table (`tgp endpoints --markdown` /
/// `--check`): a new route — session, debug or otherwise — fails this
/// test until docs/SERVICE.md is regenerated.
#[test]
fn service_docs_endpoints_table_matches_router() {
    let docs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVICE.md");
    let out = Command::new(env!("CARGO_BIN_EXE_tgp"))
        .args(["endpoints", "--check", docs])
        .stdin(Stdio::null())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "`tgp endpoints --check docs/SERVICE.md` failed; regenerate the table with \
         `tgp endpoints --markdown`:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
