//! Crash-recovery test for stateful sessions against the real `tgp
//! serve` binary: graphs are registered and edited over HTTP, the
//! server is killed with SIGKILL mid-stream (no graceful shutdown, no
//! journal compaction), and a restart on the same `--session-file`
//! must replay the journal back to exactly the last acked version of
//! every resident graph — proven by byte-comparing a session re-solve
//! against a scratch solve of a client-side mirror.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use tgp_graph::json::Value;

struct ServeChild {
    child: Child,
    addr: String,
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `tgp serve --session-file` on an ephemeral port and waits
/// for the listening banner.
fn spawn_serve(io: &str, session_file: &std::path::Path) -> ServeChild {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tgp"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--io",
            io,
            "--workers",
            "2",
            "--session-file",
            session_file.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tgp serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let line = rx
            .recv_timeout(remaining)
            .expect("server banner before timeout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after banner")
                .to_string();
        }
    };
    ServeChild { child, addr }
}

/// One exchange on a fresh connection; returns status and body.
fn roundtrip(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn modes() -> Vec<&'static str> {
    if cfg!(target_os = "linux") {
        vec!["threads", "epoll"]
    } else {
        vec!["threads"]
    }
}

#[test]
fn sigkill_and_restart_replay_every_graph_to_its_last_acked_version() {
    for io in modes() {
        let path = std::env::temp_dir().join(format!(
            "tgp-session-restart-{}-{io}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let first = spawn_serve(io, &path);

        // A chain session: register, then a stream of edit batches. The
        // mirror tracks what the resident graph must contain afterward.
        let mut chain_edges: Vec<u64> = vec![10, 1, 10, 2, 6];
        let chain_nodes: Vec<u64> = vec![2, 3, 5, 7, 2, 8];
        let register = r#"{"graph":{"node_weights":[2,3,5,7,2,8],"edge_weights":[10,1,10,2,6]}}"#;
        let (status, body) = roundtrip(&first.addr, "POST", "/v1/graphs", register);
        assert_eq!(status, 200, "{body}");
        let v = Value::parse(&body).unwrap();
        let chain_id = v["id"].as_str().unwrap().to_string();
        let mut chain_version = v["version"].as_u64().unwrap();

        // A tree session alongside, to prove multi-graph replay.
        let tree = r#"{"graph":{"node_weights":[1,2,3,4,5],"edges":[{"a":0,"b":1,"weight":10},{"a":0,"b":2,"weight":20},{"a":2,"b":3,"weight":30},{"a":2,"b":4,"weight":5}]}}"#;
        let (status, body) = roundtrip(&first.addr, "POST", "/v1/graphs", tree);
        assert_eq!(status, 200, "{body}");
        let v = Value::parse(&body).unwrap();
        let tree_id = v["id"].as_str().unwrap().to_string();
        let tree_version = v["version"].as_u64().unwrap();

        for round in 0..6u64 {
            let index = (round as usize * 3 + 1) % chain_edges.len();
            let weight = round * 5 + 3;
            chain_edges[index] = weight;
            let patch = format!(
                r#"{{"version":{chain_version},"edits":[{{"op":"edge_weight","index":{index},"weight":{weight}}}]}}"#
            );
            let (status, body) = roundtrip(
                &first.addr,
                "PATCH",
                &format!("/v1/graphs/{chain_id}"),
                &patch,
            );
            assert_eq!(status, 200, "{body}");
            chain_version = Value::parse(&body).unwrap()["version"].as_u64().unwrap();
        }
        assert_eq!(chain_version, 7, "six acked batches on top of v1");

        // SIGKILL (`Child::kill` on unix): no graceful shutdown, no
        // compaction — the journal's append-on-ack discipline is all
        // that survives.
        drop(first);

        let second = spawn_serve(io, &path);

        // Every graph is back at exactly its last acked version.
        let (status, body) = roundtrip(&second.addr, "GET", "/v1/graphs", "");
        assert_eq!(status, 200, "{body}");
        let listing = Value::parse(&body).unwrap();
        let graphs = listing["graphs"].as_array().unwrap();
        assert_eq!(graphs.len(), 2, "{body}");
        for graph in graphs {
            let id = graph["id"].as_str().unwrap();
            let version = graph["version"].as_u64().unwrap();
            if id == chain_id {
                assert_eq!(version, chain_version, "{body}");
            } else {
                assert_eq!(id, tree_id, "{body}");
                assert_eq!(version, tree_version, "{body}");
            }
        }

        // And the replayed chain *content* matches the mirror: a session
        // re-solve equals a scratch solve of the mirrored graph, byte
        // for byte.
        let (status, session_body) = roundtrip(
            &second.addr,
            "POST",
            &format!("/v1/graphs/{chain_id}/partition"),
            r#"{"objective":"lexicographic","bound":12}"#,
        );
        assert_eq!(status, 200, "{session_body}");
        let edges: Vec<String> = chain_edges.iter().map(u64::to_string).collect();
        let nodes: Vec<String> = chain_nodes.iter().map(u64::to_string).collect();
        let scratch_request = format!(
            r#"{{"objective":"lexicographic","bound":12,"graph":{{"node_weights":[{}],"edge_weights":[{}]}}}}"#,
            nodes.join(","),
            edges.join(",")
        );
        let (status, scratch_body) =
            roundtrip(&second.addr, "POST", "/v1/partition", &scratch_request);
        assert_eq!(status, 200, "{scratch_body}");
        assert_eq!(
            session_body, scratch_body,
            "replayed graph diverged from mirror"
        );

        // A stale-version PATCH against the replayed graph still 409s —
        // the version check survived the crash too.
        let (status, body) = roundtrip(
            &second.addr,
            "PATCH",
            &format!("/v1/graphs/{chain_id}"),
            r#"{"version":1,"edits":[{"op":"edge_weight","index":0,"weight":2}]}"#,
        );
        assert_eq!(status, 409, "{body}");

        drop(second);
        let _ = std::fs::remove_file(&path);
    }
}
