//! End-to-end tests that spawn the actual `tgp` binary.

use std::io::Write;
use std::process::{Command, Stdio};

use tgp_graph::json::Value;

fn tgp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgp"))
}

fn parse_stdout(stdout: &[u8]) -> Value {
    let text = std::str::from_utf8(stdout).expect("stdout is UTF-8");
    Value::parse(text).expect("stdout is JSON")
}

fn run_ok(args: &[&str]) -> Value {
    let out = tgp().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "tgp {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    parse_stdout(&out.stdout)
}

fn run_with_stdin(args: &[&str], stdin: &str) -> Value {
    let mut child = tgp()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writable");
    let out = child.wait_with_output().expect("binary finishes");
    assert!(
        out.status.success(),
        "tgp {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    parse_stdout(&out.stdout)
}

#[test]
fn generate_partition_roundtrip_via_stdin() {
    let chain = run_ok(&["generate", "chain", "--n", "40", "--seed", "5"]);
    let chain_text = chain.to_string();
    let part = run_with_stdin(&["partition", "bandwidth", "--bound", "400"], &chain_text);
    assert_eq!(part["objective"], "bandwidth");
    assert!(part["processors"].as_u64().unwrap() >= 1);
    let segments = part["segments"].as_array().unwrap();
    assert_eq!(segments.len() as u64, part["processors"].as_u64().unwrap());
    for seg in segments {
        assert!(seg["weight"].as_u64().unwrap() <= 400);
    }
}

#[test]
fn tree_workflows_via_stdin() {
    let tree = run_ok(&["generate", "tree", "--n", "30", "--seed", "9"]).to_string();
    let bn = run_with_stdin(&["partition", "bottleneck", "--bound", "800"], &tree);
    assert_eq!(bn["objective"], "bottleneck");
    let pm = run_with_stdin(&["partition", "procmin", "--bound", "800"], &tree);
    let comp = run_with_stdin(&["partition", "compose", "--bound", "800"], &tree);
    // The composed workflow never uses more processors than procmin
    // found necessary for the bottleneck-cut family... both must at least
    // be feasible and self-consistent.
    assert!(pm["processors"].as_u64().unwrap() >= 1);
    assert!(comp["processors"].as_u64().unwrap() >= 1);
}

#[test]
fn analyze_reports_figure2_quantities() {
    let chain = run_ok(&["generate", "chain", "--n", "200", "--seed", "3"]).to_string();
    let stats = run_with_stdin(&["analyze", "--bound", "500"], &chain);
    assert_eq!(stats["n"], 200);
    let p = stats["p"].as_u64().unwrap();
    assert!(p > 0);
    assert!(stats["p_log_q"].as_f64().unwrap() <= stats["n_log_n"].as_f64().unwrap());
    assert!(stats["advantage_ratio"].as_f64().unwrap() < 1.0);
}

#[test]
fn coc_agrees_between_algorithms() {
    let chain = run_ok(&["generate", "chain", "--n", "60", "--seed", "2"]).to_string();
    let a = run_with_stdin(
        &["coc", "--processors", "4", "--algorithm", "bokhari"],
        &chain,
    );
    let b = run_with_stdin(
        &["coc", "--processors", "4", "--algorithm", "probe"],
        &chain,
    );
    assert_eq!(a["bottleneck"], b["bottleneck"]);
}

#[test]
fn simulate_produces_throughput() {
    let chain = run_ok(&["generate", "chain", "--n", "30", "--seed", "4"]).to_string();
    let sim = run_with_stdin(&["simulate", "--bound", "600", "--items", "20"], &chain);
    assert_eq!(sim["items"], 20);
    assert!(sim["makespan"].as_u64().unwrap() > 0);
    assert!(sim["throughput"].as_f64().unwrap() > 0.0);
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let out = tgp().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"), "stderr should include usage: {err}");
}

#[test]
fn infeasible_bound_is_a_clean_error() {
    let chain = run_ok(&["generate", "chain", "--n", "10", "--seed", "1"]).to_string();
    let mut child = tgp()
        .args(["partition", "bandwidth", "--bound", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(chain.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("load bound"), "got: {err}");
}

#[test]
fn hetero_command_partitions_mixed_speeds() {
    let chain = run_ok(&["generate", "chain", "--n", "24", "--seed", "8"]).to_string();
    let r = run_with_stdin(&["hetero", "--speeds", "4,1,1"], &chain);
    assert_eq!(r["speeds"], tgp_graph::json!([4, 1, 1]));
    assert!(r["bottleneck"].as_u64().unwrap() > 0);
    assert_eq!(r["boundaries"].as_array().unwrap().len(), 2);
}

#[test]
fn host_satellite_command_offloads_subtrees() {
    let tree = run_ok(&["generate", "tree", "--n", "25", "--seed", "6"]).to_string();
    let r = run_with_stdin(&["host-satellite", "--satellites", "3"], &tree);
    assert!(r["satellites_used"].as_u64().unwrap() <= 3);
    assert!(r["bottleneck"].as_u64().unwrap() > 0);
}

#[test]
fn approx_command_handles_process_graphs() {
    // Hand-written ring process graph JSON.
    let ring = r#"{
        "node_weights": [3, 3, 3, 3, 3, 3],
        "edges": [
            {"a": 0, "b": 1, "weight": 5}, {"a": 1, "b": 2, "weight": 5},
            {"a": 2, "b": 3, "weight": 5}, {"a": 3, "b": 4, "weight": 5},
            {"a": 4, "b": 5, "weight": 5}, {"a": 5, "b": 0, "weight": 5}
        ]
    }"#
    .to_string();
    let r = run_with_stdin(&["approx", "--bound", "9"], &ring);
    assert!(r["parts"].as_u64().unwrap() >= 2);
    let weights = r["part_weights"].as_array().unwrap();
    assert!(weights.iter().all(|w| w.as_u64().unwrap() <= 9));
    assert!(r["method"].as_str().is_some());
}

#[test]
fn lexicographic_and_tree_bandwidth_objectives() {
    let chain = run_ok(&["generate", "chain", "--n", "30", "--seed", "11"]).to_string();
    let lex = run_with_stdin(&["partition", "lexicographic", "--bound", "600"], &chain);
    assert_eq!(lex["objective"], "lexicographic");
    // Lexicographic: its bottleneck never exceeds the plain bandwidth
    // solution's bottleneck.
    let bw = run_with_stdin(&["partition", "bandwidth", "--bound", "600"], &chain);
    assert!(lex["bottleneck"].as_u64().unwrap() <= bw["bottleneck"].as_u64().unwrap());

    let tree = run_ok(&[
        "generate",
        "tree",
        "--n",
        "40",
        "--seed",
        "12",
        "--node-hi",
        "20",
        "--edge-hi",
        "30",
    ])
    .to_string();
    let exact = run_with_stdin(&["partition", "tree-bandwidth", "--bound", "200"], &tree);
    let compose = run_with_stdin(&["partition", "compose", "--bound", "200"], &tree);
    assert!(
        exact["bandwidth"].as_u64().unwrap() <= compose["bandwidth"].as_u64().unwrap(),
        "exact DP lower-bounds the heuristic pipeline"
    );
}
