//! End-to-end trace test against the real `tgp serve` binary: a
//! client-supplied `x-trace-id` must show up (a) in the access-log
//! line on stderr, with the new `queue_us`/`total_us` fields, and
//! (b) in `GET /debug/trace/<id>`, under both `--io` modes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use tgp_graph::json::Value;

const TRACE_ID: &str = "00c0ffee0ddf00d1";
const CHAIN: &str = r#"{"node_weights":[2,3,5,7,2,8],"edge_weights":[10,1,10,2,6]}"#;

struct ServeChild {
    child: Child,
    addr: String,
    stderr_lines: mpsc::Receiver<String>,
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `tgp serve` on an ephemeral port and waits for the
/// "listening on" banner; stderr keeps streaming into a channel so
/// the test can await access-log lines without blocking forever.
fn spawn_serve(io: &str) -> ServeChild {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tgp"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--io",
            io,
            "--workers",
            "2",
            "--log-requests",
            "--debug-endpoints",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tgp serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let line = rx
            .recv_timeout(remaining)
            .expect("server banner before timeout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after banner")
                .to_string();
        }
    };
    ServeChild {
        child,
        addr,
        stderr_lines: rx,
    }
}

fn roundtrip(addr: &str, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn serve_mode_roundtrips_trace(io: &str) {
    let server = spawn_serve(io);

    let body = format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#);
    let request = format!(
        "POST /v1/partition HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nx-trace-id: {TRACE_ID}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, _) = roundtrip(&server.addr, &request);
    assert_eq!(status, 200);

    // The access log line carries the adopted trace id and the new
    // queue/total fields.
    let deadline = Instant::now() + Duration::from_secs(10);
    let access = loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let line = server
            .stderr_lines
            .recv_timeout(remaining)
            .expect("access-log line before timeout");
        if line.starts_with("tgp-access") && line.contains("path=/v1/partition") {
            break line;
        }
    };
    for field in [
        "method=POST",
        "objective=bandwidth",
        "status=200",
        "queue_us=",
        "total_us=",
        &format!("trace={TRACE_ID}"),
    ] {
        assert!(access.contains(field), "{io}: {field} missing in {access}");
    }

    // The same id resolves through the debug surface.
    let (status, body) = roundtrip(
        &server.addr,
        &format!("GET /debug/trace/{TRACE_ID} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    );
    assert_eq!(status, 200, "{io}: {body}");
    let trace = Value::parse(&body).expect("trace JSON");
    assert_eq!(trace["trace"].as_str(), Some(TRACE_ID));
    assert_eq!(trace["endpoint"].as_str(), Some("partition"));
    assert!(
        !trace["spans"].as_array().expect("spans").is_empty(),
        "{io}: no spans in {body}"
    );
}

#[test]
fn threads_mode_roundtrips_client_trace_id() {
    serve_mode_roundtrips_trace("threads");
}

#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "epoll io is Linux-only")]
fn epoll_mode_roundtrips_client_trace_id() {
    serve_mode_roundtrips_trace("epoll");
}
