//! `tgp` — command-line front end for the task-graph partitioning
//! workspace.
//!
//! ```text
//! tgp generate chain --n 1000 --seed 7 > chain.json
//! tgp partition bandwidth --bound 500 --input chain.json
//! tgp analyze --bound 500 --input chain.json
//! tgp generate tree --n 1000 | tgp partition compose --bound 800
//! tgp coc --processors 8 --input chain.json
//! tgp simulate --bound 500 --items 100 --input chain.json
//! ```
//!
//! Graphs are exchanged as JSON: chains as
//! `{"node_weights": [...], "edge_weights": [...]}` and trees as
//! `{"node_weights": [...], "edges": [{"a": 0, "b": 1, "weight": 5}, ...]}`
//! (the `tgp_graph::json` encodings of `tgp_graph::PathGraph` /
//! `tgp_graph::Tree`).

use std::error::Error;
use std::io::Read;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgp_graph::json;
use tgp_graph::json::{FromJson, JsonError, ToJson, Value};

use tgp_core::bandwidth::analyze_bandwidth;
use tgp_core::pipeline::partition_chain;
use tgp_graph::generators::{random_chain, random_tree, WeightDist};
use tgp_graph::{EdgeId, PathGraph, Weight};
use tgp_service::{CacheConfig, Server, ServerConfig};
use tgp_shmem::machine::{Interconnect, Machine};
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};
use tgp_solvers::{ParamKind, Registry};

type CliResult<T> = Result<T, Box<dyn Error>>;

/// Parsed `--key value` options (flags after the positional words).
#[derive(Debug, Default)]
struct Options {
    pairs: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> CliResult<Self> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {:?}", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Options { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> CliResult<Option<T>>
    where
        T::Err: Error + Send + Sync + 'static,
    {
        match self.get(key) {
            None => Ok(None),
            Some(v) => Ok(Some(v.parse::<T>().map_err(|e| format!("--{key}: {e}"))?)),
        }
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> CliResult<T>
    where
        T::Err: Error + Send + Sync + 'static,
    {
        self.num::<T>(key)?
            .ok_or_else(|| format!("missing required option --{key}").into())
    }
}

/// Usage text, with the objective table generated from the solver
/// registry so it can never drift from what `tgp partition` accepts.
fn usage() -> String {
    let mut text = String::from(
        "\
tgp — tree and linear task graph partitioning for shared-memory machines
(reproduction of Ray & Jiang, ICDCS 1994)

USAGE:
  tgp generate chain --n N [--seed S] [--node-lo 1] [--node-hi 100]
                          [--edge-lo 1] [--edge-hi 1000]
  tgp generate tree  --n N [same options]
  tgp partition <objective> [options] [--input FILE]
  tgp analyze --bound K [--input FILE]                # Figure 2 statistics
  tgp coc --processors M [--algorithm bokhari|probe] [--input FILE]
  tgp hetero --speeds 4,2,1,1 [--input FILE]          # mixed-speed array
  tgp host-satellite --satellites M [--root 0] [--input FILE]  # trees
  tgp approx --bound K [--input FILE]                 # general graphs
  tgp simulate --bound K --items N [--processors P]
               [--interconnect bus|crossbar] [--input FILE]
  tgp serve [--addr 127.0.0.1:7070] [--io threads|epoll] [--workers 4]
            [--loops N|auto]  # epoll event loops, one per core by default
            [--cache-bytes 33554432] [--cache-ttl SECS] [--cache-file PATH]
            [--queue-depth 64] [--max-connections 1024] [--shed-cost UNITS]
            [--shed-remaining MS] [--max-body-bytes N]
            [--graph-spill-bytes N] [--graph-spill-dir PATH]
            [--read-timeout SECS] [--write-timeout SECS] [--idle-timeout SECS]
            [--write-min-bytes N]  # write-deadline progress floor (0 = total)
            [--session-file PATH] [--session-budget BYTES]
            [--log-requests] [--debug-endpoints]  # HTTP partition service
  tgp sessions [--addr HOST:PORT | --file PATH]   # resident session graphs
  tgp objectives [--markdown | --check FILE]      # registry listing / docs table
  tgp endpoints [--markdown | --check FILE]       # service endpoint table

OBJECTIVES (shared with POST /v1/partition; identical JSON responses):
",
    );
    for solver in Registry::shared().iter() {
        let params: Vec<String> = solver
            .params()
            .iter()
            .map(|p| {
                if p.required {
                    format!("--{} <{}>", p.name, param_hint(p.kind))
                } else {
                    format!("[--{} <{}>]", p.name, param_hint(p.kind))
                }
            })
            .collect();
        text.push_str(&format!(
            "  {:<16} {:<8} {:<34} {}\n",
            solver.name(),
            solver.graph_kind().as_str(),
            params.join(" "),
            solver.summary()
        ));
    }
    text.push_str("\nGraphs are read from --input or stdin as JSON; results go to stdout as JSON.");
    text
}

fn param_hint(kind: ParamKind) -> &'static str {
    match kind {
        ParamKind::U64 => "N",
        ParamKind::U64List => "N,N,...",
        ParamKind::Str => "S",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(text) => {
            use std::io::Write;
            // Tolerate a closed pipe (e.g. `tgp analyze ... | head`).
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{text}");
        }
        Err(e) => {
            // `help` travels the Err channel carrying the usage text
            // itself; don't prefix or repeat it.
            let msg = e.to_string();
            if msg == usage() {
                eprintln!("{msg}");
            } else {
                eprintln!("error: {msg}");
                eprintln!();
                eprintln!("{}", usage());
            }
            std::process::exit(1);
        }
    }
}

/// Runs one command and returns the rendered stdout text (without the
/// trailing newline `main` appends).
///
/// Registry-backed commands (`partition` and the objective aliases)
/// render their response *compactly*, exactly as the HTTP service does:
/// the printed line plus the newline is byte-for-byte the body of the
/// equivalent `POST /v1/partition`. The other commands pretty-print.
fn run(args: &[String]) -> CliResult<String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "generate" => {
            let kind = args.get(1).map(String::as_str).unwrap_or("");
            let opts = Options::parse(&args[2..])?;
            Ok(generate(kind, &opts)?.pretty())
        }
        "partition" => {
            let objective = args.get(1).map(String::as_str).unwrap_or("");
            let opts = Options::parse(&args[2..])?;
            Ok(partition(objective, &opts)?.to_string())
        }
        // Top-level aliases into the same registry dispatch, kept from
        // the pre-registry CLI.
        "coc" | "hetero" | "host-satellite" | "approx" => {
            let opts = Options::parse(&args[1..])?;
            Ok(partition(command, &opts)?.to_string())
        }
        "analyze" => {
            let opts = Options::parse(&args[1..])?;
            Ok(analyze(&opts)?.pretty())
        }
        "simulate" => {
            let opts = Options::parse(&args[1..])?;
            Ok(simulate(&opts)?.pretty())
        }
        "serve" => {
            // `--log-requests` and `--debug-endpoints` are bare flags,
            // unlike every other `--key value` option; strip them
            // before pair parsing.
            let mut rest = Vec::new();
            let mut log_requests = false;
            let mut debug_endpoints = false;
            for arg in &args[1..] {
                if arg == "--log-requests" {
                    log_requests = true;
                } else if arg == "--debug-endpoints" {
                    debug_endpoints = true;
                } else {
                    rest.push(arg.clone());
                }
            }
            let opts = Options::parse(&rest)?;
            Ok(serve(&opts, log_requests, debug_endpoints)?.pretty())
        }
        "objectives" => match args.get(1).map(String::as_str) {
            None => Ok(objectives_table().to_string()),
            Some("--markdown") => Ok(objectives_markdown().trim_end().to_string()),
            Some("--check") => {
                let path = args
                    .get(2)
                    .ok_or("--check needs a file path (e.g. docs/SERVICE.md)")?;
                objectives_check(path)
            }
            Some(other) => {
                Err(format!("objectives takes --markdown or --check <file>, got {other:?}").into())
            }
        },
        "endpoints" => match args.get(1).map(String::as_str) {
            None | Some("--markdown") => Ok(endpoints_markdown().trim_end().to_string()),
            Some("--check") => {
                let path = args
                    .get(2)
                    .ok_or("--check needs a file path (e.g. docs/SERVICE.md)")?;
                endpoints_check(path)
            }
            Some(other) => {
                Err(format!("endpoints takes --markdown or --check <file>, got {other:?}").into())
            }
        },
        "sessions" => {
            let opts = Options::parse(&args[1..])?;
            Ok(sessions(&opts)?.pretty())
        }
        "help" | "--help" | "-h" => Err(usage().into()),
        other => Err(format!("unknown command {other:?}").into()),
    }
}

/// `tgp objectives` — machine-readable registry listing, for tooling
/// and doc generation.
fn objectives_table() -> Value {
    let solvers: Vec<Value> = Registry::shared()
        .iter()
        .map(|solver| {
            let params: Vec<Value> = solver
                .params()
                .iter()
                .map(|p| {
                    json!({
                        "name": p.name,
                        "kind": param_hint(p.kind),
                        "required": p.required,
                    })
                })
                .collect();
            json!({
                "name": solver.name(),
                "graph": solver.graph_kind().as_str(),
                "params": params,
                "summary": solver.summary(),
            })
        })
        .collect();
    json!({ "objectives": solvers })
}

/// `tgp objectives --markdown` — the registry rendered as a GitHub
/// markdown table, the canonical content between the
/// `<!-- objectives:begin -->` / `<!-- objectives:end -->` markers in
/// `docs/SERVICE.md`. Optional parameters carry a `?` suffix.
fn objectives_markdown() -> String {
    let mut table =
        String::from("| objective | graph | parameters | summary |\n|---|---|---|---|\n");
    for solver in Registry::shared().iter() {
        let params: Vec<String> = solver
            .params()
            .iter()
            .map(|p| {
                if p.required {
                    format!("`{}`", p.name)
                } else {
                    format!("`{}?`", p.name)
                }
            })
            .collect();
        let params = if params.is_empty() {
            "—".to_string()
        } else {
            params.join(", ")
        };
        table.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            solver.name(),
            solver.graph_kind().as_str(),
            params,
            solver.summary().replace('|', "\\|") // keep `|` out of table cells
        ));
    }
    table
}

/// Shared marker-gated docs check: fails (exit 1) when the text between
/// `<!-- {tag}:begin -->` / `<!-- {tag}:end -->` in FILE differs from
/// `expected`, so docs can't drift from the generator.
fn marker_check(path: &str, tag: &str, expected: &str, ok_note: String) -> CliResult<String> {
    let begin = format!("<!-- {tag}:begin -->");
    let end_marker = format!("<!-- {tag}:end -->");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{tag} --check {path}: {e}"))?;
    let start = text
        .find(&begin)
        .ok_or_else(|| format!("{path}: missing {begin:?} marker"))?;
    let end = text
        .find(&end_marker)
        .ok_or_else(|| format!("{path}: missing {end_marker:?} marker"))?;
    if end < start {
        return Err(format!("{path}: {end_marker:?} appears before {begin:?}").into());
    }
    let found = text[start + begin.len()..end].trim();
    let expected = expected.trim();
    if found == expected {
        Ok(ok_note)
    } else {
        Err(format!(
            "{path}: {tag} table is stale; regenerate with `tgp {tag} --markdown` \
             and paste it between the markers\n--- expected ---\n{expected}\n--- found ---\n{found}"
        )
        .into())
    }
}

/// `tgp objectives --check FILE` — fails (exit 1) when the table
/// between the objectives markers in FILE differs from what
/// `--markdown` generates, so docs can't drift from the registry.
fn objectives_check(path: &str) -> CliResult<String> {
    marker_check(
        path,
        "objectives",
        &objectives_markdown(),
        format!(
            "{path}: objectives table is up to date ({} objectives)",
            Registry::shared().names().len()
        ),
    )
}

/// `tgp endpoints --markdown` — the service's endpoint surface as a
/// markdown table, the canonical content between the
/// `<!-- endpoints:begin -->` / `<!-- endpoints:end -->` markers in
/// `docs/SERVICE.md`. Rendered from the service's own endpoint
/// registry ([`tgp_service::envelope::ENDPOINTS`]), so the table, the
/// router, and the error-code audit can never drift apart; the final
/// column lists each endpoint's stable error codes beyond the
/// transport-level set (`bad_request`, `body_too_large`, `overloaded`,
/// `method_not_allowed`, `not_found`, `shed_deadline`,
/// `deadline_exceeded`).
fn endpoints_markdown() -> String {
    let mut table =
        String::from("| method | path | description | error codes |\n|---|---|---|---|\n");
    for (method, path, summary, codes) in tgp_service::envelope::ENDPOINTS {
        let path = path.replace('<', "&lt;").replace('>', "&gt;");
        let codes = if *codes == "-" {
            "-".to_string()
        } else {
            codes
                .split(',')
                .map(|c| format!("`{}`", c.trim()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        table.push_str(&format!("| {method} | `{path}` | {summary} | {codes} |\n"));
    }
    table
}

/// `tgp endpoints --check FILE` — docs gate for the endpoint table,
/// same contract as `tgp objectives --check`.
fn endpoints_check(path: &str) -> CliResult<String> {
    marker_check(
        path,
        "endpoints",
        &endpoints_markdown(),
        format!("{path}: endpoints table is up to date"),
    )
}

/// Minimal HTTP/1.1 GET for `tgp sessions --addr`: one request,
/// `connection: close`, JSON body expected.
fn http_get_json(addr: &str, path: &str) -> CliResult<Value> {
    use std::io::Write;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status = head.split_whitespace().nth(1).unwrap_or("<none>");
    if status != "200" {
        return Err(format!("server answered {status}: {}", body.trim()).into());
    }
    Ok(Value::parse(body.trim()).map_err(|e| format!("invalid JSON from server: {e}"))?)
}

/// `tgp sessions` — inspect resident session graphs, either live over
/// HTTP (`--addr HOST:PORT` → `GET /v1/graphs`) or offline from a
/// session journal (`--file PATH`, read-only: torn tails are reported,
/// never truncated).
fn sessions(opts: &Options) -> CliResult<Value> {
    match (opts.get("addr"), opts.get("file")) {
        (Some(addr), None) => http_get_json(addr, "/v1/graphs"),
        (None, Some(path)) => Ok(tgp_session::SessionStore::inspect(std::path::Path::new(
            path,
        ))?),
        (Some(_), Some(_)) => Err("sessions takes --addr or --file, not both".into()),
        (None, None) => Err("sessions needs --addr HOST:PORT or --file PATH".into()),
    }
}

fn dists(opts: &Options) -> CliResult<(WeightDist, WeightDist)> {
    let node = WeightDist::Uniform {
        lo: opts.num("node-lo")?.unwrap_or(1),
        hi: opts.num("node-hi")?.unwrap_or(100),
    };
    let edge = WeightDist::Uniform {
        lo: opts.num("edge-lo")?.unwrap_or(1),
        hi: opts.num("edge-hi")?.unwrap_or(1000),
    };
    Ok((node, edge))
}

fn generate(kind: &str, opts: &Options) -> CliResult<Value> {
    let n: usize = opts.required("n")?;
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let seed: u64 = opts.num("seed")?.unwrap_or(0);
    let (node, edge) = dists(opts)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind {
        "chain" => Ok(random_chain(n, node, edge, &mut rng).to_json()),
        "tree" => Ok(random_tree(n, node, edge, &mut rng).to_json()),
        other => Err(format!("generate expects 'chain' or 'tree', got {other:?}").into()),
    }
}

fn read_input(opts: &Options) -> CliResult<Value> {
    let text = match opts.get("input") {
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(Value::parse(&text).map_err(|e: JsonError| format!("invalid JSON input: {e}"))?)
}

fn load_chain(opts: &Options) -> CliResult<PathGraph> {
    let value = read_input(opts)?;
    Ok(PathGraph::from_json(&value)
        .map_err(|e| format!("input is not a chain (expected node_weights + edge_weights): {e}"))?)
}

fn cut_to_json(cut: impl Iterator<Item = EdgeId>) -> Value {
    Value::Array(cut.map(|e| json!(e.index())).collect())
}

/// Runs any registered objective through the shared solver registry:
/// flags become the request's parameter fields, the graph comes from
/// `--input`/stdin, and the returned value is the solver's response —
/// the same `Value` the HTTP service renders for the same request.
fn partition(objective: &str, opts: &Options) -> CliResult<Value> {
    let registry = Registry::shared();
    let (_, solver) = registry.get(objective).ok_or_else(|| {
        format!(
            "unknown objective {objective:?}; known: {}",
            registry.names().join(", ")
        )
    })?;

    // Reject flags outside the solver's schema, mirroring the strict
    // field check HTTP requests get (typo protection).
    for (key, _) in &opts.pairs {
        let known = key == "input" || solver.params().iter().any(|p| p.name == key);
        if !known {
            return Err(format!(
                "objective {objective:?} does not accept --{key}; it takes {}",
                if solver.params().is_empty() {
                    "no options".to_string()
                } else {
                    solver
                        .params()
                        .iter()
                        .map(|p| format!("--{}", p.name))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            )
            .into());
        }
    }

    let mut fields: Vec<(String, Value)> =
        vec![("objective".to_string(), Value::from(solver.name()))];
    for spec in solver.params() {
        let Some(raw) = opts.get(spec.name) else {
            if spec.required {
                return Err(format!("missing required option --{}", spec.name).into());
            }
            continue;
        };
        let value = match spec.kind {
            ParamKind::U64 => Value::from(
                raw.parse::<u64>()
                    .map_err(|e| format!("--{}: {e}", spec.name))?,
            ),
            ParamKind::U64List => Value::Array(
                raw.split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map(Value::from)
                            .map_err(|e| format!("--{}: {e}", spec.name))
                    })
                    .collect::<Result<_, _>>()?,
            ),
            ParamKind::Str => Value::from(raw),
        };
        fields.push((spec.name.to_string(), value));
    }
    fields.push(("graph".to_string(), read_input(opts)?));

    let request = solver.parse(&Value::Object(fields))?;
    let response = solver.run(&request)?;
    Ok(solver.to_json(&response))
}

fn analyze(opts: &Options) -> CliResult<Value> {
    let bound = Weight::new(opts.required("bound")?);
    let chain = load_chain(opts)?;
    let (cut, stats) = analyze_bandwidth(&chain, bound)?;
    Ok(json!({
        "bound": bound.get(),
        "n": stats.n,
        "p": stats.p,
        "r": stats.r,
        "q": stats.q_bar,
        "p_log_q": stats.p_log_q,
        "n_log_n": stats.n_log_n,
        "advantage_ratio": stats.advantage_ratio(),
        "avg_prime_edge_len": stats.avg_prime_edge_len,
        "max_temps_occupancy": stats.max_deque_len,
        "avg_temps_occupancy": stats.avg_deque_len,
        "cut": cut_to_json(cut.iter()),
        "cut_weight": stats.cut_weight,
    }))
}

fn simulate(opts: &Options) -> CliResult<Value> {
    let bound = Weight::new(opts.required("bound")?);
    let items: usize = opts.required("items")?;
    let chain = load_chain(opts)?;
    let part = partition_chain(&chain, bound)?;
    let processors = opts.num("processors")?.unwrap_or(part.processors);
    let interconnect = match opts.get("interconnect").unwrap_or("bus") {
        "bus" => Interconnect::Bus,
        "crossbar" => Interconnect::Crossbar,
        other => {
            return Err(format!("--interconnect must be bus or crossbar, got {other:?}").into())
        }
    };
    let machine = Machine::new(processors, 1, 1, 0, interconnect)?;
    let spec = PipelineSpec::from_partition(&chain, &part.cut)?;
    let report = simulate_pipeline(&spec, &machine, items)?;
    Ok(json!({
        "bound": bound.get(),
        "processors": processors,
        "items": items,
        "makespan": report.makespan,
        "throughput": report.throughput(),
        "mean_utilization": report.mean_utilization(),
        "interconnect_utilization": report.interconnect_utilization(),
        "total_traffic": report.total_traffic,
    }))
}

fn serve(opts: &Options, log_requests: bool, debug_endpoints: bool) -> CliResult<Value> {
    if opts.get("cache-capacity").is_some() {
        return Err(
            "--cache-capacity was replaced in this release: the cache now budgets \
                    bytes, not entries. Use --cache-bytes (default 33554432 = 32 MiB), and \
                    see docs/SERVICE.md for --cache-ttl / --cache-file."
                .into(),
        );
    }
    let mut cache = CacheConfig::with_budget(opts.num("cache-bytes")?.unwrap_or(32 << 20));
    let ttl_secs: u64 = opts.num("cache-ttl")?.unwrap_or(0);
    if ttl_secs > 0 {
        cache.ttl = Some(std::time::Duration::from_secs(ttl_secs));
    }
    let defaults = ServerConfig::default();
    let secs = |key: &str, fallback: std::time::Duration| -> CliResult<std::time::Duration> {
        Ok(match opts.num::<u64>(key)? {
            Some(s) => std::time::Duration::from_secs(s.max(1)),
            None => fallback,
        })
    };
    let config = ServerConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:7070").to_string(),
        io: match opts.get("io") {
            Some(raw) => raw.parse().map_err(|e: String| format!("--io: {e}"))?,
            None => defaults.io,
        },
        workers: opts.num("workers")?.unwrap_or(4),
        // The CLI defaults to auto (0 = one loop per core); the library
        // default stays 1 so embedders opt in explicitly.
        loops: match opts.get("loops") {
            None | Some("auto") => 0,
            Some(raw) => raw
                .parse::<usize>()
                .map_err(|_| format!("--loops: expected a count or \"auto\", got {raw:?}"))?,
        },
        cache,
        cache_file: opts.get("cache-file").map(std::path::PathBuf::from),
        queue_depth: opts.num("queue-depth")?.unwrap_or(64),
        max_connections: opts.num("max-connections")?.unwrap_or(1024),
        read_timeout: secs("read-timeout", defaults.read_timeout)?,
        write_timeout: secs("write-timeout", defaults.write_timeout)?,
        write_min_bytes: opts
            .num("write-min-bytes")?
            .unwrap_or(defaults.write_min_bytes),
        idle_timeout: secs("idle-timeout", defaults.idle_timeout)?,
        shed_cost: opts.num("shed-cost")?,
        shed_remaining: opts.num("shed-remaining")?,
        max_body_bytes: opts
            .num("max-body-bytes")?
            .unwrap_or(defaults.max_body_bytes),
        graph_spill_bytes: opts
            .num("graph-spill-bytes")?
            .unwrap_or(defaults.graph_spill_bytes),
        graph_spill_dir: opts.get("graph-spill-dir").map(std::path::PathBuf::from),
        log_requests,
        debug_endpoints,
        session_file: opts.get("session-file").map(std::path::PathBuf::from),
        session_budget: opts
            .num("session-budget")?
            .unwrap_or(defaults.session_budget),
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let io = config.io;
    let mut server = Server::start(config)?;
    let loops = match server.net_loops() {
        0 => String::new(),
        n => format!(", {n} loops"),
    };
    let debug_note = if debug_endpoints {
        ", GET /debug/*"
    } else {
        ""
    };
    eprintln!(
        "tgp serve: listening on http://{} ({workers} workers, {io:?} io{loops}); \
         endpoints: POST /v1/partition, POST /v1/simulate, /v1/graphs sessions, \
         GET /healthz, GET /metrics{debug_note}",
        server.local_addr()
    );
    // Blocks until the acceptor exits (it never does on its own; kill
    // the process to stop serving).
    server.wait();
    Ok(json!({ "status": "stopped" }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgp_graph::Tree;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_key_value_pairs() {
        let opts = Options::parse(&strs(&["--n", "10", "--seed", "7"])).unwrap();
        assert_eq!(opts.get("n"), Some("10"));
        assert_eq!(opts.num::<u64>("seed").unwrap(), Some(7));
        assert_eq!(opts.num::<u64>("missing").unwrap(), None);
        assert_eq!(opts.required::<usize>("n").unwrap(), 10);
    }

    #[test]
    fn options_reject_malformed_input() {
        assert!(Options::parse(&strs(&["n", "10"])).is_err());
        assert!(Options::parse(&strs(&["--n"])).is_err());
        let opts = Options::parse(&strs(&["--n", "ten"])).unwrap();
        assert!(opts.num::<u64>("n").is_err());
        assert!(opts.required::<u64>("x").is_err());
    }

    #[test]
    fn last_option_wins() {
        let opts = Options::parse(&strs(&["--n", "1", "--n", "2"])).unwrap();
        assert_eq!(opts.get("n"), Some("2"));
    }

    #[test]
    fn generate_chain_is_valid_json_roundtrip() {
        let opts = Options::parse(&strs(&["--n", "25", "--seed", "3"])).unwrap();
        let value = generate("chain", &opts).unwrap();
        let chain = PathGraph::from_json(&value).unwrap();
        assert_eq!(chain.len(), 25);
        assert_eq!(chain.edge_count(), 24);
    }

    #[test]
    fn generate_tree_is_valid_json_roundtrip() {
        let opts = Options::parse(&strs(&["--n", "25", "--seed", "3"])).unwrap();
        let value = generate("tree", &opts).unwrap();
        let tree = Tree::from_json(&value).unwrap();
        assert_eq!(tree.len(), 25);
    }

    #[test]
    fn generate_rejects_bad_kind_and_n() {
        let opts = Options::parse(&strs(&["--n", "5"])).unwrap();
        assert!(generate("pentagon", &opts).is_err());
        let zero = Options::parse(&strs(&["--n", "0"])).unwrap();
        assert!(generate("chain", &zero).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&strs(&["help"])).is_err()); // usage via Err channel
    }

    #[test]
    fn objectives_markdown_lists_every_objective() {
        let table = objectives_markdown();
        for name in Registry::shared().names() {
            assert!(
                table.contains(&format!("| `{name}` |")),
                "objectives table is missing {name}"
            );
        }
    }

    #[test]
    fn objectives_check_accepts_fresh_and_rejects_stale_tables() {
        let path = std::env::temp_dir().join(format!("tgp-objcheck-{}.md", std::process::id()));
        let fresh = format!(
            "# Docs\n\n<!-- objectives:begin -->\n{}<!-- objectives:end -->\ntail\n",
            objectives_markdown()
        );
        std::fs::write(&path, &fresh).unwrap();
        assert!(objectives_check(path.to_str().unwrap()).is_ok());

        let stale = fresh.replace("| `bandwidth` |", "| `bandwidht` |");
        std::fs::write(&path, &stale).unwrap();
        let err = objectives_check(path.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("stale"));

        std::fs::write(&path, "no markers here\n").unwrap();
        let err = objectives_check(path.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("missing"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn endpoints_check_accepts_fresh_and_rejects_stale_tables() {
        let path = std::env::temp_dir().join(format!("tgp-endcheck-{}.md", std::process::id()));
        let fresh = format!(
            "# Docs\n\n<!-- endpoints:begin -->\n{}<!-- endpoints:end -->\ntail\n",
            endpoints_markdown()
        );
        std::fs::write(&path, &fresh).unwrap();
        assert!(endpoints_check(path.to_str().unwrap()).is_ok());

        let stale = fresh.replace("| `/v1/graphs` |", "| `/v1/grphs` |");
        std::fs::write(&path, &stale).unwrap();
        let err = endpoints_check(path.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("stale"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn endpoints_table_covers_the_session_surface() {
        let table = endpoints_markdown();
        for needle in [
            "/v1/graphs",
            "/v1/graphs/&lt;id&gt;",
            "/v1/graphs/&lt;id&gt;/partition",
            "/v1/partition",
            "/metrics",
        ] {
            assert!(table.contains(needle), "endpoints table missing {needle}");
        }
    }

    #[test]
    fn endpoints_table_has_stable_error_code_column() {
        let table = endpoints_markdown();
        assert!(
            table.starts_with("| method | path | description | error codes |"),
            "missing error-codes column: {table}"
        );
        // Every backticked code in the table must come from the stable
        // set — the audit that keeps docs and wire behavior aligned.
        for line in table.lines().skip(2) {
            let codes = line.rsplit('|').nth(1).unwrap_or("").trim();
            if codes == "-" {
                continue;
            }
            for code in codes.split(',') {
                let code = code.trim().trim_matches('`');
                assert!(
                    tgp_service::envelope::is_stable_code(code),
                    "unstable code {code:?} in endpoints table"
                );
            }
        }
        assert!(table.contains("`deadline_exceeded`"));
        assert!(table.contains("`cancelled`"));
    }

    #[test]
    fn sessions_requires_exactly_one_source() {
        let none = Options::parse(&[]).unwrap();
        assert!(sessions(&none).is_err());
        let both = Options::parse(&strs(&["--addr", "127.0.0.1:1", "--file", "/tmp/x"])).unwrap();
        assert!(sessions(&both).is_err());
        // A missing journal file is a clean error, not a panic.
        let missing = Options::parse(&strs(&["--file", "/definitely/not/here.journal"])).unwrap();
        assert!(sessions(&missing).is_err());
    }

    #[test]
    fn serve_rejects_removed_cache_capacity_flag() {
        let opts = Options::parse(&strs(&["--cache-capacity", "1024"])).unwrap();
        let err = serve(&opts, false, false).unwrap_err().to_string();
        assert!(
            err.contains("--cache-bytes"),
            "migration hint missing: {err}"
        );
    }

    #[test]
    fn cut_serialization_is_plain_indices() {
        let cut = tgp_graph::CutSet::new(vec![EdgeId::new(4), EdgeId::new(1)]);
        let v = cut_to_json(cut.iter());
        assert_eq!(v, json!([1, 4]));
    }
}
