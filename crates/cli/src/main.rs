//! `tgp` — command-line front end for the task-graph partitioning
//! workspace.
//!
//! ```text
//! tgp generate chain --n 1000 --seed 7 > chain.json
//! tgp partition bandwidth --bound 500 --input chain.json
//! tgp analyze --bound 500 --input chain.json
//! tgp generate tree --n 1000 | tgp partition compose --bound 800
//! tgp coc --processors 8 --input chain.json
//! tgp simulate --bound 500 --items 100 --input chain.json
//! ```
//!
//! Graphs are exchanged as JSON: chains as
//! `{"node_weights": [...], "edge_weights": [...]}` and trees as
//! `{"node_weights": [...], "edges": [{"a": 0, "b": 1, "weight": 5}, ...]}`
//! (the `tgp_graph::json` encodings of `tgp_graph::PathGraph` /
//! `tgp_graph::Tree`).

use std::error::Error;
use std::io::Read;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgp_graph::json;
use tgp_graph::json::{FromJson, JsonError, ToJson, Value};

use tgp_baselines::bokhari::bokhari_partition;
use tgp_baselines::hansen_lih::hansen_lih_partition;
use tgp_baselines::hetero::{hetero_partition, HeteroArray};
use tgp_baselines::host_satellite::host_satellite_partition;
use tgp_core::approx::{partition_process_graph_best, ApproxMethod};
use tgp_core::bandwidth::{analyze_bandwidth, min_bandwidth_cut_lexicographic};
use tgp_core::bottleneck::min_bottleneck_cut;
use tgp_core::pipeline::{partition_chain, partition_tree};
use tgp_core::procmin::proc_min;
use tgp_core::tree_bandwidth::min_tree_bandwidth_cut;
use tgp_graph::generators::{random_chain, random_tree, WeightDist};
use tgp_graph::{EdgeId, NodeId, PathGraph, ProcessGraph, Tree, Weight};
use tgp_service::{Server, ServerConfig};
use tgp_shmem::machine::{Interconnect, Machine};
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};

type CliResult<T> = Result<T, Box<dyn Error>>;

/// Parsed `--key value` options (flags after the positional words).
#[derive(Debug, Default)]
struct Options {
    pairs: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> CliResult<Self> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {:?}", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Options { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> CliResult<Option<T>>
    where
        T::Err: Error + Send + Sync + 'static,
    {
        match self.get(key) {
            None => Ok(None),
            Some(v) => Ok(Some(v.parse::<T>().map_err(|e| format!("--{key}: {e}"))?)),
        }
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> CliResult<T>
    where
        T::Err: Error + Send + Sync + 'static,
    {
        self.num::<T>(key)?
            .ok_or_else(|| format!("missing required option --{key}").into())
    }
}

const USAGE: &str = "\
tgp — tree and linear task graph partitioning for shared-memory machines
(reproduction of Ray & Jiang, ICDCS 1994)

USAGE:
  tgp generate chain --n N [--seed S] [--node-lo 1] [--node-hi 100]
                          [--edge-lo 1] [--edge-hi 1000]
  tgp generate tree  --n N [same options]
  tgp partition bandwidth  --bound K [--input FILE]   # chains, O(n + p log q)
  tgp partition bottleneck --bound K [--input FILE]   # trees, Algorithm 2.1
  tgp partition procmin    --bound K [--input FILE]   # trees, Algorithm 2.2
  tgp partition compose    --bound K [--input FILE]   # trees, 2.1 + 2.2
  tgp partition lexicographic --bound K [--input FILE] # chains, §3 bicriteria
  tgp partition tree-bandwidth --bound K [--input FILE] # trees, exact O(n·K²)
  tgp analyze --bound K [--input FILE]                # Figure 2 statistics
  tgp coc --processors M [--algorithm bokhari|probe] [--input FILE]
  tgp hetero --speeds 4,2,1,1 [--input FILE]          # mixed-speed array
  tgp host-satellite --satellites M [--root 0] [--input FILE]  # trees
  tgp approx --bound K [--input FILE]                 # general graphs
  tgp simulate --bound K --items N [--processors P]
               [--interconnect bus|crossbar] [--input FILE]
  tgp serve [--addr 127.0.0.1:7070] [--workers 4] [--cache-capacity 1024]
            [--queue-depth 64]                    # HTTP partition service

Graphs are read from --input or stdin as JSON; results go to stdout as JSON.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            use std::io::Write;
            let text = output.pretty();
            // Tolerate a closed pipe (e.g. `tgp analyze ... | head`).
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{text}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> CliResult<Value> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "generate" => {
            let kind = args.get(1).map(String::as_str).unwrap_or("");
            let opts = Options::parse(&args[2..])?;
            generate(kind, &opts)
        }
        "partition" => {
            let objective = args.get(1).map(String::as_str).unwrap_or("");
            let opts = Options::parse(&args[2..])?;
            partition(objective, &opts)
        }
        "analyze" => {
            let opts = Options::parse(&args[1..])?;
            analyze(&opts)
        }
        "coc" => {
            let opts = Options::parse(&args[1..])?;
            coc(&opts)
        }
        "hetero" => {
            let opts = Options::parse(&args[1..])?;
            hetero(&opts)
        }
        "host-satellite" => {
            let opts = Options::parse(&args[1..])?;
            host_satellite(&opts)
        }
        "approx" => {
            let opts = Options::parse(&args[1..])?;
            approx(&opts)
        }
        "simulate" => {
            let opts = Options::parse(&args[1..])?;
            simulate(&opts)
        }
        "serve" => {
            let opts = Options::parse(&args[1..])?;
            serve(&opts)
        }
        "help" | "--help" | "-h" => Err(USAGE.into()),
        other => Err(format!("unknown command {other:?}").into()),
    }
}

fn dists(opts: &Options) -> CliResult<(WeightDist, WeightDist)> {
    let node = WeightDist::Uniform {
        lo: opts.num("node-lo")?.unwrap_or(1),
        hi: opts.num("node-hi")?.unwrap_or(100),
    };
    let edge = WeightDist::Uniform {
        lo: opts.num("edge-lo")?.unwrap_or(1),
        hi: opts.num("edge-hi")?.unwrap_or(1000),
    };
    Ok((node, edge))
}

fn generate(kind: &str, opts: &Options) -> CliResult<Value> {
    let n: usize = opts.required("n")?;
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let seed: u64 = opts.num("seed")?.unwrap_or(0);
    let (node, edge) = dists(opts)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind {
        "chain" => Ok(random_chain(n, node, edge, &mut rng).to_json()),
        "tree" => Ok(random_tree(n, node, edge, &mut rng).to_json()),
        other => Err(format!("generate expects 'chain' or 'tree', got {other:?}").into()),
    }
}

fn read_input(opts: &Options) -> CliResult<Value> {
    let text = match opts.get("input") {
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(Value::parse(&text).map_err(|e: JsonError| format!("invalid JSON input: {e}"))?)
}

fn load_chain(opts: &Options) -> CliResult<PathGraph> {
    let value = read_input(opts)?;
    Ok(PathGraph::from_json(&value)
        .map_err(|e| format!("input is not a chain (expected node_weights + edge_weights): {e}"))?)
}

fn load_tree(opts: &Options) -> CliResult<Tree> {
    let value = read_input(opts)?;
    Ok(Tree::from_json(&value)
        .map_err(|e| format!("input is not a tree (expected node_weights + edges): {e}"))?)
}

fn cut_to_json(cut: impl Iterator<Item = EdgeId>) -> Value {
    Value::Array(cut.map(|e| json!(e.index())).collect())
}

fn partition(objective: &str, opts: &Options) -> CliResult<Value> {
    let bound = Weight::new(opts.required("bound")?);
    match objective {
        "bandwidth" => {
            let chain = load_chain(opts)?;
            let part = partition_chain(&chain, bound)?;
            Ok(json!({
                "objective": "bandwidth",
                "bound": bound.get(),
                "cut": cut_to_json(part.cut.iter()),
                "segments": part.segments.iter().map(|s| json!({
                    "start": s.start, "end": s.end, "weight": s.weight.get(),
                })).collect::<Vec<_>>(),
                "processors": part.processors,
                "bandwidth": part.bandwidth.get(),
                "bottleneck": part.bottleneck.get(),
            }))
        }
        "bottleneck" => {
            let tree = load_tree(opts)?;
            let r = min_bottleneck_cut(&tree, bound)?;
            Ok(json!({
                "objective": "bottleneck",
                "bound": bound.get(),
                "cut": cut_to_json(r.cut.iter()),
                "bottleneck": r.bottleneck.get(),
                "components": tree.components(&r.cut)?.count(),
            }))
        }
        "procmin" => {
            let tree = load_tree(opts)?;
            let r = proc_min(&tree, bound)?;
            Ok(json!({
                "objective": "procmin",
                "bound": bound.get(),
                "cut": cut_to_json(r.cut.iter()),
                "processors": r.component_count,
            }))
        }
        "compose" => {
            let tree = load_tree(opts)?;
            let part = partition_tree(&tree, bound)?;
            Ok(json!({
                "objective": "compose",
                "bound": bound.get(),
                "cut": cut_to_json(part.cut.iter()),
                "processors": part.processors,
                "bottleneck": part.bottleneck.get(),
                "bandwidth": part.bandwidth.get(),
            }))
        }
        "lexicographic" => {
            let chain = load_chain(opts)?;
            let cut = min_bandwidth_cut_lexicographic(&chain, bound)?;
            Ok(json!({
                "objective": "lexicographic",
                "bound": bound.get(),
                "cut": cut_to_json(cut.iter()),
                "bottleneck": chain.bottleneck(&cut)?.get(),
                "bandwidth": chain.cut_weight(&cut)?.get(),
                "processors": cut.len() + 1,
            }))
        }
        "tree-bandwidth" => {
            let tree = load_tree(opts)?;
            let cut = min_tree_bandwidth_cut(&tree, bound)?;
            Ok(json!({
                "objective": "tree-bandwidth",
                "bound": bound.get(),
                "cut": cut_to_json(cut.iter()),
                "bandwidth": tree.cut_weight(&cut)?.get(),
                "processors": tree.components(&cut)?.count(),
            }))
        }
        other => Err(format!(
            "partition expects bandwidth|bottleneck|procmin|compose|lexicographic|tree-bandwidth, \
             got {other:?}"
        )
        .into()),
    }
}

fn analyze(opts: &Options) -> CliResult<Value> {
    let bound = Weight::new(opts.required("bound")?);
    let chain = load_chain(opts)?;
    let (cut, stats) = analyze_bandwidth(&chain, bound)?;
    Ok(json!({
        "bound": bound.get(),
        "n": stats.n,
        "p": stats.p,
        "r": stats.r,
        "q": stats.q_bar,
        "p_log_q": stats.p_log_q,
        "n_log_n": stats.n_log_n,
        "advantage_ratio": stats.advantage_ratio(),
        "avg_prime_edge_len": stats.avg_prime_edge_len,
        "max_temps_occupancy": stats.max_deque_len,
        "avg_temps_occupancy": stats.avg_deque_len,
        "cut": cut_to_json(cut.iter()),
        "cut_weight": stats.cut_weight,
    }))
}

fn coc(opts: &Options) -> CliResult<Value> {
    let m: usize = opts.required("processors")?;
    let chain = load_chain(opts)?;
    let algorithm = opts.get("algorithm").unwrap_or("probe");
    let result = match algorithm {
        "bokhari" => bokhari_partition(&chain, m)?,
        "probe" => hansen_lih_partition(&chain, m)?,
        other => return Err(format!("--algorithm must be bokhari or probe, got {other:?}").into()),
    };
    Ok(json!({
        "algorithm": algorithm,
        "processors": m,
        "boundaries": result.assignment.boundaries().to_vec(),
        "bottleneck": result.bottleneck.get(),
    }))
}

fn hetero(opts: &Options) -> CliResult<Value> {
    let speeds: Vec<u64> = opts
        .get("speeds")
        .ok_or("missing required option --speeds (e.g. --speeds 4,2,1)")?
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<u64>()
                .map_err(|e| format!("--speeds: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if speeds.is_empty() || speeds.contains(&0) {
        return Err("--speeds needs at least one positive speed".into());
    }
    let chain = load_chain(opts)?;
    let array = HeteroArray::new(speeds.clone());
    let r = hetero_partition(&chain, &array)?;
    Ok(json!({
        "speeds": speeds,
        "boundaries": r.assignment.boundaries().to_vec(),
        "bottleneck": r.bottleneck.get(),
    }))
}

fn host_satellite(opts: &Options) -> CliResult<Value> {
    let m: usize = opts.required("satellites")?;
    let root: usize = opts.num("root")?.unwrap_or(0);
    let tree = load_tree(opts)?;
    if root >= tree.len() {
        return Err(format!("--root {root} out of range for {} nodes", tree.len()).into());
    }
    let r = host_satellite_partition(&tree, NodeId::new(root), m)?;
    Ok(json!({
        "root": root,
        "max_satellites": m,
        "satellites_used": r.satellites,
        "uplinks": cut_to_json(r.cut.iter()),
        "bottleneck": r.bottleneck.get(),
    }))
}

fn approx(opts: &Options) -> CliResult<Value> {
    let bound = Weight::new(opts.required("bound")?);
    let value = read_input(opts)?;
    let g = ProcessGraph::from_json(&value)
        .map_err(|e| format!("input is not a process graph (node_weights + edges): {e}"))?;
    let part = partition_process_graph_best(&g, bound)?;
    let method = match part.method {
        ApproxMethod::LinearIdentity => "linear-identity",
        ApproxMethod::LinearBfs => "linear-bfs",
        ApproxMethod::SpanningTree => "spanning-tree",
        _ => "unknown",
    };
    Ok(json!({
        "bound": bound.get(),
        "method": method,
        "parts": part.parts,
        "part_of": part.part_of,
        "part_weights": part.part_weights.iter().map(|w| w.get()).collect::<Vec<_>>(),
        "cut_weight": part.cut_weight.get(),
    }))
}

fn simulate(opts: &Options) -> CliResult<Value> {
    let bound = Weight::new(opts.required("bound")?);
    let items: usize = opts.required("items")?;
    let chain = load_chain(opts)?;
    let part = partition_chain(&chain, bound)?;
    let processors = opts.num("processors")?.unwrap_or(part.processors);
    let interconnect = match opts.get("interconnect").unwrap_or("bus") {
        "bus" => Interconnect::Bus,
        "crossbar" => Interconnect::Crossbar,
        other => {
            return Err(format!("--interconnect must be bus or crossbar, got {other:?}").into())
        }
    };
    let machine = Machine::new(processors, 1, 1, 0, interconnect)?;
    let spec = PipelineSpec::from_partition(&chain, &part.cut)?;
    let report = simulate_pipeline(&spec, &machine, items)?;
    Ok(json!({
        "bound": bound.get(),
        "processors": processors,
        "items": items,
        "makespan": report.makespan,
        "throughput": report.throughput(),
        "mean_utilization": report.mean_utilization(),
        "interconnect_utilization": report.interconnect_utilization(),
        "total_traffic": report.total_traffic,
    }))
}

fn serve(opts: &Options) -> CliResult<Value> {
    let config = ServerConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:7070").to_string(),
        workers: opts.num("workers")?.unwrap_or(4),
        cache_capacity: opts.num("cache-capacity")?.unwrap_or(1024),
        queue_depth: opts.num("queue-depth")?.unwrap_or(64),
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let mut server = Server::start(config)?;
    eprintln!(
        "tgp serve: listening on http://{} ({workers} workers); \
         endpoints: POST /v1/partition, POST /v1/simulate, GET /healthz, GET /metrics",
        server.local_addr()
    );
    // Blocks until the acceptor exits (it never does on its own; kill
    // the process to stop serving).
    server.wait();
    Ok(json!({ "status": "stopped" }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_key_value_pairs() {
        let opts = Options::parse(&strs(&["--n", "10", "--seed", "7"])).unwrap();
        assert_eq!(opts.get("n"), Some("10"));
        assert_eq!(opts.num::<u64>("seed").unwrap(), Some(7));
        assert_eq!(opts.num::<u64>("missing").unwrap(), None);
        assert_eq!(opts.required::<usize>("n").unwrap(), 10);
    }

    #[test]
    fn options_reject_malformed_input() {
        assert!(Options::parse(&strs(&["n", "10"])).is_err());
        assert!(Options::parse(&strs(&["--n"])).is_err());
        let opts = Options::parse(&strs(&["--n", "ten"])).unwrap();
        assert!(opts.num::<u64>("n").is_err());
        assert!(opts.required::<u64>("x").is_err());
    }

    #[test]
    fn last_option_wins() {
        let opts = Options::parse(&strs(&["--n", "1", "--n", "2"])).unwrap();
        assert_eq!(opts.get("n"), Some("2"));
    }

    #[test]
    fn generate_chain_is_valid_json_roundtrip() {
        let opts = Options::parse(&strs(&["--n", "25", "--seed", "3"])).unwrap();
        let value = generate("chain", &opts).unwrap();
        let chain = PathGraph::from_json(&value).unwrap();
        assert_eq!(chain.len(), 25);
        assert_eq!(chain.edge_count(), 24);
    }

    #[test]
    fn generate_tree_is_valid_json_roundtrip() {
        let opts = Options::parse(&strs(&["--n", "25", "--seed", "3"])).unwrap();
        let value = generate("tree", &opts).unwrap();
        let tree = Tree::from_json(&value).unwrap();
        assert_eq!(tree.len(), 25);
    }

    #[test]
    fn generate_rejects_bad_kind_and_n() {
        let opts = Options::parse(&strs(&["--n", "5"])).unwrap();
        assert!(generate("pentagon", &opts).is_err());
        let zero = Options::parse(&strs(&["--n", "0"])).unwrap();
        assert!(generate("chain", &zero).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&strs(&["help"])).is_err()); // usage via Err channel
    }

    #[test]
    fn cut_serialization_is_plain_indices() {
        let cut = tgp_graph::CutSet::new(vec![EdgeId::new(4), EdgeId::new(1)]);
        let v = cut_to_json(cut.iter());
        assert_eq!(v, json!([1, 4]));
    }
}
