//! Log-linear (HDR-style) latency histogram with bounded memory.
//!
//! Values are bucketed on a log-linear grid: below [`LINEAR_MAX`]
//! every integer gets its own bucket (exact); above that, each
//! power-of-two octave is split into [`SUB_COUNT`] equal sub-buckets,
//! bounding the relative recording error at `1/SUB_COUNT` (12.5%)
//! across the entire `u64` range. The whole structure is a fixed
//! array of 496 `AtomicU64` counters plus exact `sum`/`count`/`max`
//! atomics (~4 KiB), so recording is lock-free and wait-free:
//! two `fetch_add`s and one `fetch_max`.
//!
//! The natural unit is nanoseconds (see [`Histogram::record_duration`])
//! but the structure is unit-agnostic; the loadgen records microseconds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power-of-two octave.
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Values strictly below this are recorded exactly (one bucket each).
pub const LINEAR_MAX: u64 = (2 * SUB_COUNT) as u64;
/// Octaves above the linear region: bit lengths `SUB_BITS+2 ..= 64`.
const OCTAVES: usize = 64 - (SUB_BITS as usize + 1);
/// Total bucket count (496 for `SUB_BITS = 3`).
pub const NUM_BUCKETS: usize = 2 * SUB_COUNT + OCTAVES * SUB_COUNT;

/// Map a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let bits = 64 - v.leading_zeros() as usize; // >= SUB_BITS + 2
    let exp = bits - 1 - SUB_BITS as usize; // >= 1
    let mantissa = (v >> exp) as usize - SUB_COUNT; // 0 .. SUB_COUNT
    LINEAR_MAX as usize + (exp - 1) * SUB_COUNT + mantissa
}

/// Largest value mapping to bucket `i` (inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if (i as u64) < LINEAR_MAX {
        return i as u64;
    }
    let exp = (i - LINEAR_MAX as usize) / SUB_COUNT + 1;
    let mantissa = (i - LINEAR_MAX as usize) % SUB_COUNT + SUB_COUNT;
    let upper = (((mantissa + 1) as u128) << exp) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// Concurrent log-linear histogram. See the module docs.
pub struct Histogram {
    counts: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Wait-free; `sum` stays exact.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Quantile estimate: the inclusive upper bound of the bucket
    /// containing the `q`-th sample (`0.0 ..= 1.0`), clamped to the
    /// observed maximum. Monotone in `q` by construction. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for i in 0..NUM_BUCKETS {
            let c = self.counts[i].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Number of samples `<= bound` according to bucket upper bounds
    /// (samples in a bucket straddling `bound` are excluded). Used to
    /// render cumulative Prometheus `_bucket` series at fixed bounds.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0u64;
        for i in 0..NUM_BUCKETS {
            if bucket_upper(i) > bound {
                break;
            }
            total += self.counts[i].load(Ordering::Relaxed);
        }
        total
    }

    /// Add every counter of `other` into `self`.
    pub fn merge(&self, other: &Histogram) {
        for i in 0..NUM_BUCKETS {
            let c = other.counts[i].load(Ordering::Relaxed);
            if c != 0 {
                self.counts[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Iterate non-empty buckets as `(upper_bound_inclusive, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..NUM_BUCKETS)
            .filter_map(|i| {
                let c = self.counts[i].load(Ordering::Relaxed);
                (c != 0).then(|| (bucket_upper(i), c))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn bucket_boundaries_linear_region_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_log_region_bounds_relative_error() {
        for v in [16u64, 17, 31, 32, 100, 1_000, 50_000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper {upper} < value {v}");
            // Relative error bounded by 1/SUB_COUNT.
            assert!(
                upper - v <= v / SUB_COUNT as u64,
                "bucket for {v} too wide: upper {upper}"
            );
            // Upper bound is the last value still mapping to bucket i.
            assert_eq!(bucket_index(upper), i);
            if upper != u64::MAX {
                assert_eq!(bucket_index(upper + 1), i + 1);
            }
        }
    }

    #[test]
    fn bucket_uppers_strictly_increase() {
        for i in 1..NUM_BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "at {i}");
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn known_bucket_arithmetic() {
        // 50_000 (50µs in ns): bits=16, exp=12, mantissa=4.
        assert_eq!(bucket_upper(bucket_index(50_000)), 53_247);
        // 200_000: bits=18, exp=14, mantissa=4.
        assert_eq!(bucket_upper(bucket_index(200_000)), 212_991);
    }

    #[test]
    fn count_sum_max_mean_are_exact() {
        let h = Histogram::new();
        for v in [5u64, 10, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_000_115);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.mean(), 250_028);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(q);
            assert!(est >= prev, "quantile({q}) = {est} < {prev}");
            prev = est;
            // Estimate is never below the true quantile and never
            // more than 12.5% above it.
            let rank = ((q * 1000.0).ceil() as u64).clamp(1, 1000);
            assert!(est >= rank);
            assert!(est <= rank + rank / 8 + 1, "quantile({q}) = {est}");
        }
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn cumulative_le_matches_manual_count() {
        let h = Histogram::new();
        for v in [50_000u64, 200_000, 500_000] {
            h.record(v);
        }
        assert_eq!(h.cumulative_le(100_000), 1);
        assert_eq!(h.cumulative_le(250_000), 2);
        assert_eq!(h.cumulative_le(1_000_000), 3);
        assert_eq!(h.cumulative_le(10), 0);
    }

    #[test]
    fn merge_adds_counts_and_preserves_quantiles() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.sum(), 500_500);
        assert_eq!(a.max(), 1000);
        let whole = Histogram::new();
        for v in 1..=1000u64 {
            whole.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for hdl in handles {
            hdl.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        let expected: u64 = (0..80_000u64).sum();
        assert_eq!(h.sum(), expected);
        assert_eq!(h.max(), 79_999);
    }
}
