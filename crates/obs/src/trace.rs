//! Request-scoped traces: ids, spans, a thread-local recorder, and a
//! bounded store of recently completed traces.
//!
//! A [`TraceId`] is a nonzero 64-bit identifier minted when a request
//! enters the system (at accept/frame time in epoll mode, at parse
//! time in threads mode) or adopted from an inbound `x-trace-id`
//! (16 hex chars) or W3C `traceparent` header (low 64 bits of the
//! trace-id field). The id travels with the work item through the
//! queue and the worker, and each stage appends a [`Span`] to the
//! thread-local [`SpanRecorder`]. When the response is built the
//! recorder is finished into a [`TraceRecord`] and committed to the
//! [`TraceStore`], which retains the most recent N for the
//! `/debug/trace/<id>` and `/debug/slow` endpoints.
//!
//! Stages that run after commit (the socket write, which in epoll
//! mode happens on the event-loop thread) are patched in afterwards
//! via [`TraceStore::append_span_at`], which also extends the
//! recorded total so that span durations always sum to at most the
//! total.

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A nonzero 64-bit trace identifier. Rendered as 16 lowercase hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        // RandomState is seeded per-process from the OS; hashing a
        // constant extracts that entropy without any new dependency.
        let mut h = RandomState::new().build_hasher();
        h.write_u64(0x0074_6770_5f6f_6273);
        h.finish()
    })
}

impl TraceId {
    /// The absent trace id (0). Never minted.
    pub const NONE: TraceId = TraceId(0);

    /// Mint a fresh process-unique id.
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(process_seed().wrapping_add(n));
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Raw value (0 means "none").
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw value.
    pub fn from_u64(v: u64) -> TraceId {
        TraceId(v)
    }

    /// True for [`TraceId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Parse 1–16 hex chars (the `x-trace-id` header format).
    /// Zero parses to `None` (it means "absent" on the wire).
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        match u64::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(TraceId(v)),
        }
    }

    /// Adopt the low 64 bits of a W3C `traceparent` header
    /// (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`).
    pub fn from_traceparent(value: &str) -> Option<TraceId> {
        let mut parts = value.trim().split('-');
        let _version = parts.next()?;
        let trace_id = parts.next()?;
        if trace_id.len() != 32 {
            return None;
        }
        Self::parse_hex(&trace_id[16..])
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A named request stage. The fixed set keeps per-stage histograms
/// and span rendering allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Time between enqueue and a worker picking the work up.
    Queue,
    /// HTTP request parsing (in threads mode this includes the
    /// blocking socket read).
    Parse,
    /// Streaming flat-array ingest: scanning the raw body straight
    /// into `tgp-store` arrays without materializing a JSON tree.
    /// Present only on requests the flat path accepted.
    Ingest,
    /// Result-cache probe.
    Cache,
    /// Session-store work: resident-graph lookup, edit-batch
    /// application, journal append.
    Session,
    /// Solver execution.
    Solve,
    /// Response body rendering.
    Serialize,
    /// Flushing the response bytes to the socket.
    Write,
    /// Cooperative deadline/cancel preemption: the sliver between the
    /// solve noticing its budget expired and the error response being
    /// built. Present only on traces that were cut short.
    Cancelled,
}

impl Stage {
    /// All stages, in pipeline order (must match declaration order —
    /// [`Stage::index`] is the discriminant).
    pub const ALL: [Stage; 9] = [
        Stage::Queue,
        Stage::Parse,
        Stage::Ingest,
        Stage::Cache,
        Stage::Session,
        Stage::Solve,
        Stage::Serialize,
        Stage::Write,
        Stage::Cancelled,
    ];

    /// Stable lowercase label (metrics `stage=` label, span JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Parse => "parse",
            Stage::Ingest => "ingest",
            Stage::Cache => "cache",
            Stage::Session => "session",
            Stage::Solve => "solve",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
            Stage::Cancelled => "cancelled",
        }
    }

    /// Dense index into [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One timed stage within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which stage.
    pub stage: Stage,
    /// Nanoseconds from the trace base to the span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// A completed request trace.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace id.
    pub id: TraceId,
    /// Endpoint label (e.g. `partition`).
    pub endpoint: &'static str,
    /// Objective label, `-` when not applicable.
    pub objective: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// End-to-end nanoseconds covered by the trace (enqueue →
    /// response built, extended by patched-in write spans).
    pub total_ns: u64,
    /// Recorded spans in completion order.
    pub spans: Vec<Span>,
}

/// Collects spans for one in-flight request on the worker thread.
#[derive(Debug)]
pub struct SpanRecorder {
    id: TraceId,
    base: Instant,
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// Start recording. `base` is the instant the trace's clock
    /// starts (the enqueue instant when known, else dequeue).
    pub fn new(id: TraceId, base: Instant) -> SpanRecorder {
        SpanRecorder {
            id,
            base,
            spans: Vec::with_capacity(Stage::ALL.len()),
        }
    }

    /// The current trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Replace the id (adopting a client-supplied one at parse time).
    pub fn set_id(&mut self, id: TraceId) {
        if !id.is_none() {
            self.id = id;
        }
    }

    /// Record a span that started at `start` and ran for `dur`.
    pub fn add(&mut self, stage: Stage, start: Instant, dur: Duration) {
        let start_ns = start.saturating_duration_since(self.base).as_nanos() as u64;
        self.spans.push(Span {
            stage,
            start_ns,
            dur_ns: dur.as_nanos() as u64,
        });
    }

    /// Finish into a [`TraceRecord`]; the total covers base → now.
    pub fn finish(
        self,
        endpoint: &'static str,
        objective: &'static str,
        status: u16,
    ) -> TraceRecord {
        self.finish_at(Instant::now(), endpoint, objective, status)
    }

    /// [`SpanRecorder::finish`] ended at an instant the caller already
    /// read; the total covers base → `at`.
    pub fn finish_at(
        self,
        at: Instant,
        endpoint: &'static str,
        objective: &'static str,
        status: u16,
    ) -> TraceRecord {
        TraceRecord {
            id: self.id,
            endpoint,
            objective,
            status,
            total_ns: at.saturating_duration_since(self.base).as_nanos() as u64,
            spans: self.spans,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<SpanRecorder>> = const { RefCell::new(None) };
}

/// Install `recorder` as the thread's active trace context,
/// replacing any stale one.
pub fn begin(recorder: SpanRecorder) {
    CURRENT.with(|c| *c.borrow_mut() = Some(recorder));
}

/// The active trace id on this thread, if any.
pub fn current_id() -> Option<TraceId> {
    CURRENT.with(|c| c.borrow().as_ref().map(|r| r.id()))
}

/// Adopt a (client-supplied) id into the active recorder.
pub fn adopt_id(id: TraceId) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.set_id(id);
        }
    });
}

/// Append a span to the active recorder; no-op when none is active
/// (e.g. batch subtasks running on sibling workers).
pub fn record(stage: Stage, start: Instant, dur: Duration) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.add(stage, start, dur);
        }
    });
}

/// Take the active recorder off the thread and finish it.
/// Returns `None` when no trace was active.
pub fn finish(endpoint: &'static str, objective: &'static str, status: u16) -> Option<TraceRecord> {
    finish_at(Instant::now(), endpoint, objective, status)
}

/// [`finish`] ended at an instant the caller already read.
pub fn finish_at(
    at: Instant,
    endpoint: &'static str,
    objective: &'static str,
    status: u16,
) -> Option<TraceRecord> {
    CURRENT
        .with(|c| c.borrow_mut().take())
        .map(|r| r.finish_at(at, endpoint, objective, status))
}

/// Bounded store of recently completed traces (newest first wins on
/// id collision lookups). One short-critical-section mutex; taken
/// once per completed request, never on a per-span basis.
pub struct TraceStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
}

/// The queue plus a monotone commit counter: record `i` of `q` has
/// sequence `next_seq - q.len() + i`, which is what lets
/// [`TraceStore::append_span_at`] patch by index instead of scanning.
#[derive(Debug, Default)]
struct StoreInner {
    q: VecDeque<TraceRecord>,
    next_seq: u64,
}

impl fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceStore")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl TraceStore {
    /// Retain up to `capacity` most recent traces (min 1).
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            inner: Mutex::new(StoreInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Commit a completed trace, evicting the oldest beyond capacity.
    /// Returns the trace's commit sequence — the O(1) handle for
    /// patching a late span in with [`TraceStore::append_span_at`].
    pub fn commit(&self, record: TraceRecord) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        if inner.q.len() == self.capacity {
            inner.q.pop_front();
        }
        inner.q.push_back(record);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        seq
    }

    /// Most recent trace with this id, if still retained.
    pub fn get(&self, id: TraceId) -> Option<TraceRecord> {
        let inner = self.inner.lock().unwrap();
        inner.q.iter().rev().find(|r| r.id == id).cloned()
    }

    /// The `n` slowest retained traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock().unwrap();
        let mut all: Vec<TraceRecord> = inner.q.iter().cloned().collect();
        drop(inner);
        all.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        all.truncate(n);
        all
    }

    /// Patch a span into an already-committed trace (the epoll write
    /// completes on the loop thread after commit). `seq` is the handle
    /// [`TraceStore::commit`] returned, making the lookup an index
    /// computation rather than a scan — under load the write can
    /// resolve hundreds of commits later, and a per-patch scan with
    /// the lock held is exactly the stall this store must not cause.
    /// The span starts at the current recorded total and extends it,
    /// so span durations sum to at most `total_ns` by construction.
    /// Returns `false` when the trace was evicted (or `seq`/`id`
    /// disagree — a recycled handle).
    pub fn append_span_at(&self, seq: u64, id: TraceId, stage: Stage, dur: Duration) -> bool {
        let dur_ns = dur.as_nanos() as u64;
        let mut inner = self.inner.lock().unwrap();
        let front_seq = inner.next_seq - inner.q.len() as u64;
        if seq < front_seq || seq >= inner.next_seq {
            return false;
        }
        let r = &mut inner.q[(seq - front_seq) as usize];
        if r.id != id {
            return false;
        }
        r.spans.push(Span {
            stage,
            start_ns: r.total_ns,
            dur_ns,
        });
        r.total_ns += dur_ns;
        true
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().q.len()
    }

    /// True when no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::mint();
            assert!(!id.is_none());
            assert!(seen.insert(id.as_u64()));
        }
    }

    #[test]
    fn hex_roundtrip_and_parsing() {
        let id = TraceId::from_u64(0x00c0_ffee_0ddf_00d1);
        let s = id.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(TraceId::parse_hex(&s), Some(id));
        assert_eq!(
            TraceId::parse_hex("deadbeef"),
            Some(TraceId::from_u64(0xdead_beef))
        );
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(TraceId::parse_hex("0"), None);
        assert_eq!(TraceId::parse_hex("xyz"), None);
        assert_eq!(TraceId::parse_hex("11112222333344445"), None); // 17 chars
    }

    #[test]
    fn traceparent_adopts_low_64_bits() {
        let tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        assert_eq!(
            TraceId::from_traceparent(tp),
            Some(TraceId::from_u64(0xa3ce_929d_0e0e_4736))
        );
        assert_eq!(TraceId::from_traceparent("garbage"), None);
        assert_eq!(TraceId::from_traceparent("00-short-x-01"), None);
    }

    #[test]
    fn recorder_collects_spans_relative_to_base() {
        let base = Instant::now();
        let mut r = SpanRecorder::new(TraceId::mint(), base);
        r.add(Stage::Queue, base, Duration::from_micros(10));
        r.add(
            Stage::Solve,
            base + Duration::from_micros(10),
            Duration::from_micros(5),
        );
        // The recorded total is real wall time since `base`; wait until
        // it covers the synthetic span durations above.
        while base.elapsed() < Duration::from_micros(20) {
            std::hint::spin_loop();
        }
        let rec = r.finish("partition", "bandwidth", 200);
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.spans[0].stage, Stage::Queue);
        assert_eq!(rec.spans[0].start_ns, 0);
        assert_eq!(rec.spans[1].start_ns, 10_000);
        assert_eq!(rec.spans[1].dur_ns, 5_000);
        let span_sum: u64 = rec.spans.iter().map(|s| s.dur_ns).sum();
        assert!(span_sum <= rec.total_ns);
    }

    #[test]
    fn thread_local_roundtrip_and_adoption() {
        begin(SpanRecorder::new(TraceId::from_u64(7), Instant::now()));
        assert_eq!(current_id(), Some(TraceId::from_u64(7)));
        adopt_id(TraceId::from_u64(9));
        assert_eq!(current_id(), Some(TraceId::from_u64(9)));
        adopt_id(TraceId::NONE); // ignored
        assert_eq!(current_id(), Some(TraceId::from_u64(9)));
        record(Stage::Parse, Instant::now(), Duration::from_nanos(100));
        let rec = finish("partition", "-", 200).unwrap();
        assert_eq!(rec.id, TraceId::from_u64(9));
        assert_eq!(rec.spans.len(), 1);
        assert!(finish("partition", "-", 200).is_none());
        assert_eq!(current_id(), None);
    }

    fn rec(id: u64, total_ns: u64) -> TraceRecord {
        TraceRecord {
            id: TraceId::from_u64(id),
            endpoint: "partition",
            objective: "bandwidth",
            status: 200,
            total_ns,
            spans: Vec::new(),
        }
    }

    #[test]
    fn store_evicts_oldest_and_finds_newest() {
        let store = TraceStore::new(3);
        for i in 1..=4u64 {
            store.commit(rec(i, i * 100));
        }
        assert_eq!(store.len(), 3);
        assert!(store.get(TraceId::from_u64(1)).is_none());
        assert!(store.get(TraceId::from_u64(4)).is_some());
        // Duplicate id: newest wins.
        store.commit(rec(4, 999));
        assert_eq!(store.get(TraceId::from_u64(4)).unwrap().total_ns, 999);
    }

    #[test]
    fn slowest_sorts_by_total() {
        let store = TraceStore::new(8);
        for (id, total) in [(1, 300), (2, 100), (3, 500)] {
            store.commit(rec(id, total));
        }
        let top = store.slowest(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, TraceId::from_u64(3));
        assert_eq!(top[1].id, TraceId::from_u64(1));
    }

    #[test]
    fn append_span_extends_total() {
        let store = TraceStore::new(2);
        let seq = store.commit(rec(5, 1_000));
        assert!(store.append_span_at(
            seq,
            TraceId::from_u64(5),
            Stage::Write,
            Duration::from_nanos(250)
        ));
        let r = store.get(TraceId::from_u64(5)).unwrap();
        assert_eq!(r.total_ns, 1_250);
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].start_ns, 1_000);
        assert_eq!(r.spans[0].dur_ns, 250);
        // A mismatched id on a live seq is refused (recycled handle).
        assert!(!store.append_span_at(seq, TraceId::from_u64(99), Stage::Write, Duration::ZERO));
    }

    #[test]
    fn append_span_refuses_evicted_and_unknown_seqs() {
        let store = TraceStore::new(2);
        let first = store.commit(rec(1, 100));
        store.commit(rec(2, 200));
        store.commit(rec(3, 300)); // evicts seq `first`
        assert!(!store.append_span_at(first, TraceId::from_u64(1), Stage::Write, Duration::ZERO));
        assert!(!store.append_span_at(
            first + 10, // never committed
            TraceId::from_u64(3),
            Stage::Write,
            Duration::ZERO
        ));
        // Live seqs still patch.
        assert!(store.append_span_at(
            first + 2,
            TraceId::from_u64(3),
            Stage::Write,
            Duration::from_nanos(7)
        ));
        assert_eq!(store.get(TraceId::from_u64(3)).unwrap().total_ns, 307);
    }
}
