//! `tgp-obs` — observability primitives for the tgp serving stack.
//!
//! Std-only, zero dependencies, no `unsafe`. Three building blocks:
//!
//! * [`ring`] — a lock-free fixed-capacity MPSC event journal
//!   ([`Journal`]). Producers on any thread append fixed-size events
//!   with nanosecond timestamps; the buffer drops the oldest entries
//!   on overflow and counts how many were overwritten. Readers take
//!   consistent snapshots without blocking writers (seqlock per slot).
//! * [`hist`] — a log-linear (HDR-style) latency [`Histogram`] with
//!   bounded memory (~4 KiB of atomics). Values below 16 are exact;
//!   above that each power of two is split into 8 sub-buckets, giving
//!   a worst-case relative error of 1/8 across the full `u64` range.
//!   Supports lock-free concurrent recording, quantiles, merge, and
//!   cumulative counts at arbitrary bounds (for Prometheus rendering).
//! * [`trace`] — request-scoped traces: a 64-bit [`TraceId`] minted
//!   locally or adopted from an inbound `x-trace-id` / `traceparent`
//!   header, a thread-local [`SpanRecorder`] collecting named
//!   [`Stage`] spans (queue-wait, parse, cache-lookup, solve,
//!   serialize, write), and a bounded [`TraceStore`] retaining recent
//!   completed traces for `/debug/trace/<id>` style endpoints.
//!
//! The hot-path cost model: one atomic fetch-add plus five atomic
//! stores per journal event, two atomic adds per histogram sample,
//! and a thread-local `Vec` push per span. No locks are taken on the
//! request path; the only mutex lives in [`TraceStore::commit`],
//! which runs once per request after the response is built.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod ring;
pub mod trace;

pub use hist::Histogram;
pub use ring::{Event, EventKind, Journal};
pub use trace::{Span, SpanRecorder, Stage, TraceId, TraceRecord, TraceStore};
