//! Lock-free fixed-capacity MPSC event journal.
//!
//! The journal is a ring of fixed-size slots. Any number of producer
//! threads append concurrently; each append claims a monotonically
//! increasing ticket with one `fetch_add` and writes its event into
//! slot `ticket % capacity`. When the ring is full the oldest entries
//! are overwritten (drop-oldest) and [`Journal::overwritten`] counts
//! how many were lost. Readers never block writers: each slot carries
//! a sequence word (seqlock) that lets a snapshot detect and discard
//! slots that were mid-overwrite while being copied.
//!
//! Every field of a slot is an `AtomicU64`, so torn reads are
//! impossible at the language level; the sequence protocol only
//! decides whether the copied fields belong to one consistent event.

use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

/// What happened. Encoded as a `u64` inside the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A connection was accepted by the event loop (`a` = slot index).
    Accept,
    /// A connection was closed (`a` = slot index).
    Close,
    /// A connection timer fired (`a` = slot index, `b` = 0 read / 1 write / 2 idle).
    Timeout,
    /// The framer rejected bytes on a connection (`a` = slot index).
    FrameError,
    /// A request (or connection, in threads mode) was pushed onto the
    /// worker queue (`a` = connection index).
    Enqueue,
    /// A worker popped the work item (`a` = connection index,
    /// `b` = queue-wait nanoseconds).
    Dequeue,
    /// The queue was full and the work was shed (`a` = connection index).
    Shed,
    /// Result cache hit.
    CacheHit,
    /// Result cache miss.
    CacheMiss,
    /// A response was produced by a worker (`a` = HTTP status,
    /// `b` = handler nanoseconds).
    Respond,
    /// A response finished flushing to the socket (`a` = connection
    /// index, `b` = write nanoseconds).
    WriteDone,
}

impl EventKind {
    const ALL: [EventKind; 11] = [
        EventKind::Accept,
        EventKind::Close,
        EventKind::Timeout,
        EventKind::FrameError,
        EventKind::Enqueue,
        EventKind::Dequeue,
        EventKind::Shed,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::Respond,
        EventKind::WriteDone,
    ];

    fn code(self) -> u64 {
        self as u64
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Self::ALL.get(code as usize).copied()
    }

    /// Stable lowercase name, used by `/debug/events` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Accept => "accept",
            EventKind::Close => "close",
            EventKind::Timeout => "timeout",
            EventKind::FrameError => "frame_error",
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::Shed => "shed",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::Respond => "respond",
            EventKind::WriteDone => "write_done",
        }
    }
}

/// One decoded journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Ticket number (position in the global append order).
    pub seq: u64,
    /// Nanoseconds since the journal was created.
    pub nanos: u64,
    /// Trace id the event belongs to (0 when not request-scoped).
    pub trace: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

/// Slot layout: a seqlock word plus five payload words.
///
/// `seq == 2*ticket + 1` while the writer for `ticket` is mid-store,
/// `seq == 2*ticket + 2` once the event for `ticket` is complete.
struct Slot {
    seq: AtomicU64,
    nanos: AtomicU64,
    trace: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Lock-free fixed-capacity MPSC ring-buffer event journal.
pub struct Journal {
    slots: Box<[Slot]>,
    head: AtomicU64,
    epoch: Instant,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.slots.len())
            .field("appended", &self.appended())
            .field("overwritten", &self.overwritten())
            .finish()
    }
}

impl Journal {
    /// Create a journal retaining the last `capacity` events
    /// (rounded up to at least 8).
    pub fn new(capacity: usize) -> Journal {
        let capacity = capacity.max(8);
        Journal {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds elapsed since the journal was created; the
    /// timestamp base for every event.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Append one event. Lock-free: one `fetch_add` plus six atomic
    /// stores; never blocks, drops the oldest entry when full.
    pub fn append(&self, kind: EventKind, trace: u64, a: u64, b: u64) {
        self.append_nanos(self.now_nanos(), kind, trace, a, b);
    }

    /// [`Journal::append`] stamped with an instant the caller already
    /// read — hot paths that just took a timestamp reuse it instead of
    /// paying a second clock read.
    pub fn append_at(&self, at: Instant, kind: EventKind, trace: u64, a: u64, b: u64) {
        let nanos = at.saturating_duration_since(self.epoch).as_nanos() as u64;
        self.append_nanos(nanos, kind, trace, a, b);
    }

    fn append_nanos(&self, nanos: u64, kind: EventKind, trace: u64, a: u64, b: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Seqlock write protocol: mark the slot dirty, publish the
        // fields, then mark it clean with the ticket's even sequence.
        // The fences order the field stores between the two markers so
        // a concurrent snapshot can detect a mid-overwrite slot.
        slot.seq.store(ticket * 2 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.nanos.store(nanos, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Total events ever appended.
    pub fn appended(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to drop-oldest overwrite.
    pub fn overwritten(&self) -> u64 {
        self.appended().saturating_sub(self.slots.len() as u64)
    }

    /// Copy out up to `max` most-recent events, oldest first.
    ///
    /// Non-blocking: slots being overwritten concurrently are skipped
    /// (they belong to events newer than the snapshot point anyway).
    pub fn snapshot(&self, max: usize) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let window = head.min(cap).min(max as u64);
        let mut out = Vec::with_capacity(window as usize);
        for ticket in (head - window)..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before != ticket * 2 + 2 {
                continue; // not yet written, or already overwritten
            }
            let nanos = slot.nanos.load(Ordering::Relaxed);
            let trace = slot.trace.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq_before {
                continue; // overwritten while copying
            }
            let Some(kind) = EventKind::from_code(kind) else {
                continue;
            };
            out.push(Event {
                seq: ticket,
                nanos,
                trace,
                kind,
                a,
                b,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn append_and_snapshot_in_order() {
        let j = Journal::new(16);
        for i in 0..5 {
            j.append(EventKind::Enqueue, 42, i, i * 10);
        }
        let events = j.snapshot(16);
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, EventKind::Enqueue);
            assert_eq!(e.trace, 42);
            assert_eq!(e.a, i as u64);
            assert_eq!(e.b, i as u64 * 10);
        }
        assert_eq!(j.appended(), 5);
        assert_eq!(j.overwritten(), 0);
    }

    #[test]
    fn wrap_around_keeps_newest_and_counts_overflow() {
        let j = Journal::new(8);
        for i in 0..20 {
            j.append(EventKind::Respond, 0, i, 0);
        }
        assert_eq!(j.appended(), 20);
        assert_eq!(j.overwritten(), 12);
        let events = j.snapshot(64);
        assert_eq!(events.len(), 8);
        let payloads: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn snapshot_max_limits_to_most_recent() {
        let j = Journal::new(32);
        for i in 0..10 {
            j.append(EventKind::Close, 0, i, 0);
        }
        let events = j.snapshot(3);
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<u64>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn timestamps_are_monotonic_per_producer() {
        let j = Journal::new(8);
        j.append(EventKind::Accept, 0, 0, 0);
        j.append(EventKind::Close, 0, 0, 0);
        let events = j.snapshot(8);
        assert!(events[0].nanos <= events[1].nanos);
    }

    #[test]
    fn concurrent_producers_lose_nothing_but_overwritten() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        let j = Arc::new(Journal::new(1024));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let j = Arc::clone(&j);
                thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        j.append(EventKind::Enqueue, t, i, t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.appended(), THREADS * PER_THREAD);
        assert_eq!(j.overwritten(), THREADS * PER_THREAD - 1024);
        let events = j.snapshot(2048);
        // Quiescent ring: nearly every slot holds a complete event (a
        // writer descheduled for more than a full ring lap can leave a
        // stale slot that the snapshot correctly skips).
        assert!(events.len() >= 1000, "only {} readable", events.len());
        assert!(events.len() <= 1024);
        // Events decode consistently: payload b encodes (trace, a).
        for e in &events {
            assert_eq!(e.b, e.trace * PER_THREAD + e.a, "torn slot: {e:?}");
        }
        // Snapshot is in global ticket order.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn snapshot_during_concurrent_writes_never_tears() {
        let j = Arc::new(Journal::new(64));
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let j = Arc::clone(&j);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut i = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        j.append(EventKind::Dequeue, t, i, t.wrapping_mul(1_000_000) ^ i);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for e in j.snapshot(64) {
                assert_eq!(
                    e.b,
                    e.trace.wrapping_mul(1_000_000) ^ e.a,
                    "torn slot: {e:?}"
                );
            }
        }
        stop.store(1, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn minimum_capacity_is_enforced() {
        let j = Journal::new(0);
        assert_eq!(j.capacity(), 8);
    }
}
