//! Vendored, dependency-free stand-in for the slice of the `proptest`
//! API the workspace's property tests use.
//!
//! The build environment has no crates.io access, so this crate re-creates
//! the parts of proptest that the test suites import — the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, integer-range and tuple
//! strategies, [`collection::vec`], [`arbitrary::any`], the [`proptest!`]
//! macro and the `prop_assert*` macros — on top of a deterministic
//! seeded xorshift sampler.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the assertion message and
//!   the case number; the run is reproducible because sampling is a pure
//!   function of the test name and case index.
//! * **No persistence files**, no forking, no timeouts.
//!
//! Each generated test runs `ProptestConfig::cases` sampled cases in a
//! plain loop, so `prop_assert!` maps directly onto `assert!`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic sampling state and run configuration.

    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The sampler handed to strategies: xorshift64* seeded from the test
    /// name and case index, so every run of a given test is identical.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the sampler for `(test_name, case)`.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, then SplitMix64 to fold in the case.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut z = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `[0, span)` (`span > 0`).
        pub fn below(&mut self, span: u128) -> u128 {
            assert!(span > 0, "cannot sample an empty range");
            if span > u64::MAX as u128 {
                // Only reachable for 128-bit spans wider than 2^64; stitch
                // two words. Bias is irrelevant at this width.
                let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
                wide % span
            } else {
                self.next_u64() as u128 % span
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can produce values of type `Value` from a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! Type-driven default strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A number of elements: either exact or a uniform range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "cannot sample empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `elem` and whose
    /// length comes from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors the real prelude's `prop` module (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` looping over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
          $(#[$attr:meta])*
          fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), __case);
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..10).prop_flat_map(|n| (Just(n), prop::collection::vec(1u64..100, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..=4, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            let _ = z;
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| (1..100).contains(&x)));
        }

        #[test]
        fn vec_of_tuples(pairs in prop::collection::vec((0usize..50, 1u64..9), 0..20)) {
            prop_assert!(pairs.len() < 20);
            for (a, b) in pairs {
                prop_assert!(a < 50, "a={}", a);
                prop_assert!((1..9).contains(&b));
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (1usize..100, 0u64..1000).prop_map(|(a, b)| a as u64 + b);
        let a: Vec<u64> = (0..32)
            .map(|c| s.sample(&mut TestRng::deterministic("t", c)))
            .collect();
        let b: Vec<u64> = (0..32)
            .map(|c| s.sample(&mut TestRng::deterministic("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }
}
