//! Non-Linux placeholder: the API shape of the epoll loop, with
//! [`EventLoop::spawn`] reporting `Unsupported`. The service falls
//! back to (and defaults to) threads mode on these targets; the framer
//! and timer wheel remain fully functional and tested.

use std::io;
use std::net::TcpListener;
use std::sync::Arc;

use crate::{ConnId, Handler, NetConfig, NetCounters};

/// Stand-in for the Linux event loop; cannot be constructed.
#[derive(Debug)]
pub struct EventLoop {
    _private: (),
}

/// Stand-in handle; obtainable only from an [`EventLoop`], so never.
#[derive(Clone, Debug)]
pub struct LoopHandle {
    _private: (),
}

impl LoopHandle {
    /// No loop exists to deliver to; unreachable in practice.
    pub fn submit(&self, _conn: ConnId, _bytes: Vec<u8>, _keep_alive: bool) {}

    /// No loop exists to stop; unreachable in practice.
    pub fn shutdown(&self) {}
}

impl EventLoop {
    /// Always fails with [`io::ErrorKind::Unsupported`] off Linux.
    pub fn spawn(
        _listener: TcpListener,
        _config: NetConfig,
        _counters: Arc<NetCounters>,
        _handler: Arc<dyn Handler>,
    ) -> io::Result<EventLoop> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the epoll connection layer requires Linux; use --io threads",
        ))
    }

    /// Always fails with [`io::ErrorKind::Unsupported`] off Linux.
    pub fn spawn_shard(
        _shard: u32,
        listener: TcpListener,
        config: NetConfig,
        counters: Arc<NetCounters>,
        handler: Arc<dyn Handler>,
    ) -> io::Result<EventLoop> {
        EventLoop::spawn(listener, config, counters, handler)
    }

    /// Unreachable: no [`EventLoop`] can exist on this target.
    pub fn handle(&self) -> LoopHandle {
        LoopHandle { _private: () }
    }

    /// Unreachable: no [`EventLoop`] can exist on this target.
    pub fn shutdown(self) {}
}
