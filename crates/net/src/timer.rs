//! A hashed timer wheel for connection timeouts.
//!
//! The event loop arms at most one timeout per connection (read, write
//! or idle — whichever its state calls for) and re-arms on every state
//! change, so cancellation must be cheap. The wheel makes both O(1):
//! arming hashes the deadline into one of `SLOTS` buckets, and
//! cancellation is *lazy* — the connection bumps a per-connection timer
//! generation, and stale wheel entries are discarded when their slot
//! comes around. Deadlines beyond one wheel revolution are re-hashed on
//! expiry rather than cascaded, which keeps the structure flat.
//!
//! Resolution is [`TICK`] (50 ms): plenty for second-scale socket
//! timeouts, and coarse enough that a busy loop touches the wheel a few
//! times per revolution, not per request.

use std::time::{Duration, Instant};

/// Wheel tick length — the timeout resolution.
pub const TICK: Duration = Duration::from_millis(50);

/// Number of slots; one revolution covers `SLOTS × TICK` = 12.8 s.
const SLOTS: usize = 256;

/// What a fired timeout means; the loop maps it to a close reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// The peer went quiet in the middle of sending a request.
    Read,
    /// The peer stopped draining a response we are writing.
    Write,
    /// A keep-alive connection sat idle past the idle limit.
    Idle,
}

impl TimeoutKind {
    /// Stable label for metrics (`tgp_timeout_closes_total{kind=…}`).
    pub fn as_str(self) -> &'static str {
        match self {
            TimeoutKind::Read => "read",
            TimeoutKind::Write => "write",
            TimeoutKind::Idle => "idle",
        }
    }
}

/// One armed timeout.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Slab index of the connection this timeout belongs to.
    conn: usize,
    /// The connection's timer generation when armed; a mismatch at fire
    /// time means the timeout was superseded (lazy cancellation).
    generation: u64,
    deadline: Instant,
    kind: TimeoutKind,
}

/// A fired, still-valid timeout handed back to the event loop.
#[derive(Debug, Clone, Copy)]
pub struct Expired {
    /// Slab index of the timed-out connection.
    pub conn: usize,
    /// The generation the entry was armed under; the loop re-checks it
    /// against the connection before acting.
    pub generation: u64,
    /// Which timeout fired.
    pub kind: TimeoutKind,
}

/// The wheel itself.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Wheel epoch: slot of a deadline = ticks-since-epoch mod SLOTS.
    epoch: Instant,
    /// Next tick index to sweep (monotonically increasing, not wrapped).
    next_tick: u64,
}

impl TimerWheel {
    /// An empty wheel anchored at `now`.
    pub fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            epoch: now,
            next_tick: 0,
        }
    }

    fn tick_of(&self, deadline: Instant) -> u64 {
        let since = deadline.saturating_duration_since(self.epoch);
        // Round up: a timeout must never fire early.
        since.as_micros().div_ceil(TICK.as_micros()) as u64
    }

    /// Arms a timeout for connection `conn` under `generation`.
    /// Superseding an earlier timeout is done by bumping the
    /// connection's generation, not by removing the old entry.
    pub fn arm(&mut self, conn: usize, generation: u64, deadline: Instant, kind: TimeoutKind) {
        let tick = self.tick_of(deadline).max(self.next_tick);
        self.slots[(tick % SLOTS as u64) as usize].push(Entry {
            conn,
            generation,
            deadline,
            kind,
        });
    }

    /// Sweeps every slot whose tick has passed, returning entries whose
    /// deadline is genuinely due. Entries hashed into a passed slot but
    /// due a future revolution are re-armed. Generation filtering
    /// against live connections is the caller's job (the wheel only
    /// knows indexes).
    pub fn expire(&mut self, now: Instant) -> Vec<Expired> {
        let mut fired = Vec::new();
        let current = self.tick_of(now);
        // Sweep at most one full revolution per call; a loop stalled
        // longer than a revolution still visits every slot once.
        let last = current.min(self.next_tick + SLOTS as u64);
        while self.next_tick <= last {
            let slot = (self.next_tick % SLOTS as u64) as usize;
            let mut entries = std::mem::take(&mut self.slots[slot]);
            for entry in entries.drain(..) {
                if entry.deadline <= now {
                    fired.push(Expired {
                        conn: entry.conn,
                        generation: entry.generation,
                        kind: entry.kind,
                    });
                } else {
                    // A later revolution's entry: re-hash it.
                    let tick = self.tick_of(entry.deadline).max(self.next_tick + 1);
                    self.slots[(tick % SLOTS as u64) as usize].push(entry);
                }
            }
            // Hand the allocation back to the slot we emptied.
            let reclaimed = std::mem::replace(&mut self.slots[slot], entries);
            if !reclaimed.is_empty() {
                self.slots[slot].extend(reclaimed);
            }
            self.next_tick += 1;
        }
        fired
    }

    /// How long the loop may sleep before the next sweep is due.
    /// Returns [`TICK`] when nothing sooner is armed — the wheel is
    /// sparse, so a fixed heartbeat is cheaper than tracking the true
    /// minimum deadline.
    pub fn next_sweep_in(&self, now: Instant) -> Duration {
        let next_deadline = self.epoch + TICK * self.next_tick as u32;
        next_deadline.saturating_duration_since(now).min(TICK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_due_entries_and_keeps_future_ones() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.arm(1, 7, t0 + Duration::from_millis(100), TimeoutKind::Read);
        wheel.arm(2, 9, t0 + Duration::from_millis(400), TimeoutKind::Idle);

        let fired = wheel.expire(t0 + Duration::from_millis(200));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 1);
        assert_eq!(fired[0].generation, 7);
        assert_eq!(fired[0].kind, TimeoutKind::Read);

        let fired = wheel.expire(t0 + Duration::from_millis(500));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 2);
        assert_eq!(fired[0].kind, TimeoutKind::Idle);
    }

    #[test]
    fn never_fires_early() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.arm(3, 1, t0 + Duration::from_millis(120), TimeoutKind::Write);
        assert!(wheel.expire(t0 + Duration::from_millis(119)).is_empty());
        assert_eq!(wheel.expire(t0 + Duration::from_millis(200)).len(), 1);
    }

    #[test]
    fn deadline_beyond_one_revolution_survives_the_sweep() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // > SLOTS × TICK = 12.8 s away: hashes onto a slot the first
        // revolution sweeps long before it is due.
        let far = t0 + Duration::from_secs(20);
        wheel.arm(4, 2, far, TimeoutKind::Idle);
        assert!(wheel.expire(t0 + Duration::from_secs(13)).is_empty());
        let fired = wheel.expire(t0 + Duration::from_secs(21));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 4);
    }

    #[test]
    fn stale_generations_are_the_callers_problem_but_both_fire() {
        // The wheel itself returns every due entry; the caller filters
        // by generation. Two arms for one connection both come back.
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.arm(5, 1, t0 + Duration::from_millis(60), TimeoutKind::Read);
        wheel.arm(5, 2, t0 + Duration::from_millis(60), TimeoutKind::Write);
        let fired = wheel.expire(t0 + Duration::from_millis(200));
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn next_sweep_is_bounded_by_tick() {
        let t0 = Instant::now();
        let wheel = TimerWheel::new(t0);
        assert!(wheel.next_sweep_in(t0) <= TICK);
        assert_eq!(
            wheel.next_sweep_in(t0 + Duration::from_secs(5)),
            Duration::ZERO
        );
    }
}
