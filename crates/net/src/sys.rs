//! Raw `extern "C"` bindings to the handful of Linux syscalls the event
//! loop needs: `epoll_create1`/`epoll_ctl`/`epoll_wait` for readiness,
//! `eventfd` for cross-thread wakeups, and `read`/`write`/`close` on the
//! eventfd itself.
//!
//! This is the only module in the workspace that uses `unsafe` — the
//! same vendoring philosophy as the in-tree `rand`/`proptest` shims: no
//! external dependency, just the minimal FFI surface, wrapped here in
//! fallible safe functions that translate `-1`/`errno` into
//! [`std::io::Error`]. Everything above this module is safe code.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

/// Readiness flag: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness flag: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness flag: an error condition is pending on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Readiness flag: the peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// Readiness flag: the peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// errno: the system-wide file table is full (`accept` did not consume
/// the pending connection).
pub const ENFILE: i32 = 23;
/// errno: the per-process fd limit is hit (`accept` did not consume the
/// pending connection).
pub const EMFILE: i32 = 24;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One `struct epoll_event`. The kernel packs this struct on x86-64
/// (and only there), so the layout is architecture-conditional exactly
/// as in the kernel headers.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// Caller-owned cookie, returned verbatim with the event.
    pub data: u64,
}

/// One `struct epoll_event` (naturally aligned on non-x86-64).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// Caller-owned cookie, returned verbatim with the event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the return value is checked.
    check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds `fd` to the epoll set with the given interest and cookie.
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: `ev` is a valid, live epoll_event for the duration of the
    // call; the kernel copies it before returning.
    check(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
}

/// Changes the interest set of an already-registered `fd`.
pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: as in `epoll_add`.
    check(unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
}

/// Removes `fd` from the epoll set.
pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    // Linux < 2.6.9 required a non-null event even for DEL; pass one
    // unconditionally, it is ignored on every kernel this can run on.
    let mut ev = EpollEvent { events: 0, data: 0 };
    // SAFETY: as in `epoll_add`.
    check(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
}

/// Waits for readiness events, filling `events`. Returns the number of
/// events written. `timeout_ms` of `-1` blocks indefinitely.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let n = loop {
        // SAFETY: the pointer/length pair describes the caller's live
        // buffer; the kernel writes at most `len` entries.
        let ret = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len().min(c_int::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        if ret >= 0 {
            break ret;
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        // EINTR: retry. (The timeout restarts, which slightly stretches
        // timer latency under heavy signal traffic — acceptable.)
    };
    Ok(n as usize)
}

/// Creates a non-blocking, close-on-exec eventfd for wakeups.
pub fn eventfd_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the return value is checked.
    check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Adds 1 to the eventfd counter, making it readable (a wakeup).
/// Writing from any thread is the documented, race-free use of eventfd.
pub fn eventfd_signal(fd: RawFd) -> io::Result<()> {
    let value: u64 = 1;
    // SAFETY: writes exactly 8 bytes from a live u64.
    let ret = unsafe { write(fd, (&raw const value).cast::<c_void>(), 8) };
    if ret == 8 {
        return Ok(());
    }
    let err = io::Error::last_os_error();
    // The counter saturating (EAGAIN on a non-blocking eventfd) still
    // leaves the fd readable, so the wakeup is already guaranteed.
    if err.kind() == io::ErrorKind::WouldBlock {
        return Ok(());
    }
    Err(err)
}

/// Drains the eventfd counter so the next signal is a fresh edge.
pub fn eventfd_drain(fd: RawFd) {
    let mut value: u64 = 0;
    // SAFETY: reads exactly 8 bytes into a live u64.
    let _ = unsafe { read(fd, (&raw mut value).cast::<c_void>(), 8) };
}

/// Closes a raw fd owned by the caller (epoll and eventfd descriptors;
/// sockets stay owned by their `TcpStream`s).
pub fn close_fd(fd: RawFd) {
    // SAFETY: the caller asserts ownership; double-close is prevented by
    // the owning types calling this exactly once, in `Drop`.
    let _ = unsafe { close(fd) };
}
