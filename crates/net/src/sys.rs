//! Raw `extern "C"` bindings to the handful of Linux syscalls the event
//! loop needs: `epoll_create1`/`epoll_ctl`/`epoll_wait` for readiness,
//! `eventfd` for cross-thread wakeups, `read`/`write`/`close` on the
//! eventfd itself, and `socket`/`setsockopt`/`bind`/`listen` for the
//! `SO_REUSEPORT` listener shards of the multi-loop runtime.
//!
//! This is the only module in the workspace that uses `unsafe` — the
//! same vendoring philosophy as the in-tree `rand`/`proptest` shims: no
//! external dependency, just the minimal FFI surface, wrapped here in
//! fallible safe functions that translate `-1`/`errno` into
//! [`std::io::Error`]. Everything above this module is safe code.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{FromRawFd, RawFd};

/// Readiness flag: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness flag: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness flag: an error condition is pending on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Readiness flag: the peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// Readiness flag: the peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// errno: the system-wide file table is full (`accept` did not consume
/// the pending connection).
pub const ENFILE: i32 = 23;
/// errno: the per-process fd limit is hit (`accept` did not consume the
/// pending connection).
pub const EMFILE: i32 = 24;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One `struct epoll_event`. The kernel packs this struct on x86-64
/// (and only there), so the layout is architecture-conditional exactly
/// as in the kernel headers.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// Caller-owned cookie, returned verbatim with the event.
    pub data: u64,
}

/// One `struct epoll_event` (naturally aligned on non-x86-64).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// Caller-owned cookie, returned verbatim with the event.
    pub data: u64,
}

const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;
const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;

/// `struct sockaddr_in` (IPv4), as the kernel lays it out.
#[repr(C)]
struct SockaddrIn {
    sin_family: u16,
    /// Network byte order.
    sin_port: u16,
    /// Network byte order (the octets in memory order).
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// `struct sockaddr_in6` (IPv6), as the kernel lays it out.
#[repr(C)]
struct SockaddrIn6 {
    sin6_family: u16,
    /// Network byte order.
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the return value is checked.
    check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds `fd` to the epoll set with the given interest and cookie.
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: `ev` is a valid, live epoll_event for the duration of the
    // call; the kernel copies it before returning.
    check(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
}

/// Changes the interest set of an already-registered `fd`.
pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: as in `epoll_add`.
    check(unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
}

/// Removes `fd` from the epoll set.
pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    // Linux < 2.6.9 required a non-null event even for DEL; pass one
    // unconditionally, it is ignored on every kernel this can run on.
    let mut ev = EpollEvent { events: 0, data: 0 };
    // SAFETY: as in `epoll_add`.
    check(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
}

/// Waits for readiness events, filling `events`. Returns the number of
/// events written. `timeout_ms` of `-1` blocks indefinitely.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let n = loop {
        // SAFETY: the pointer/length pair describes the caller's live
        // buffer; the kernel writes at most `len` entries.
        let ret = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len().min(c_int::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        if ret >= 0 {
            break ret;
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        // EINTR: retry. (The timeout restarts, which slightly stretches
        // timer latency under heavy signal traffic — acceptable.)
    };
    Ok(n as usize)
}

/// Creates a non-blocking, close-on-exec eventfd for wakeups.
pub fn eventfd_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the return value is checked.
    check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Adds 1 to the eventfd counter, making it readable (a wakeup).
/// Writing from any thread is the documented, race-free use of eventfd.
pub fn eventfd_signal(fd: RawFd) -> io::Result<()> {
    let value: u64 = 1;
    // SAFETY: writes exactly 8 bytes from a live u64.
    let ret = unsafe { write(fd, (&raw const value).cast::<c_void>(), 8) };
    if ret == 8 {
        return Ok(());
    }
    let err = io::Error::last_os_error();
    // The counter saturating (EAGAIN on a non-blocking eventfd) still
    // leaves the fd readable, so the wakeup is already guaranteed.
    if err.kind() == io::ErrorKind::WouldBlock {
        return Ok(());
    }
    Err(err)
}

/// Drains the eventfd counter so the next signal is a fresh edge.
pub fn eventfd_drain(fd: RawFd) {
    let mut value: u64 = 0;
    // SAFETY: reads exactly 8 bytes into a live u64.
    let _ = unsafe { read(fd, (&raw mut value).cast::<c_void>(), 8) };
}

/// Closes a raw fd owned by the caller (epoll and eventfd descriptors;
/// sockets stay owned by their `TcpStream`s).
pub fn close_fd(fd: RawFd) {
    // SAFETY: the caller asserts ownership; double-close is prevented by
    // the owning types calling this exactly once, in `Drop`.
    let _ = unsafe { close(fd) };
}

fn set_sockopt_one(fd: RawFd, optname: c_int) -> io::Result<()> {
    let one: c_int = 1;
    // SAFETY: optval points at a live c_int of the declared length; the
    // kernel copies it before returning.
    check(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            optname,
            (&raw const one).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    })
    .map(|_| ())
}

fn bind_addr(fd: RawFd, addr: &SocketAddr) -> io::Result<()> {
    match addr {
        SocketAddr::V4(a) => {
            let sa = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: a.port().to_be(),
                sin_addr: u32::from_ne_bytes(a.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: the pointer/length pair describes a live, fully
            // initialized sockaddr_in; the kernel copies it.
            check(unsafe {
                bind(
                    fd,
                    (&raw const sa).cast::<c_void>(),
                    std::mem::size_of::<SockaddrIn>() as u32,
                )
            })
            .map(|_| ())
        }
        SocketAddr::V6(a) => {
            let sa = SockaddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: a.port().to_be(),
                sin6_flowinfo: a.flowinfo().to_be(),
                sin6_addr: a.ip().octets(),
                sin6_scope_id: a.scope_id(),
            };
            // SAFETY: as in the V4 arm, with sockaddr_in6.
            check(unsafe {
                bind(
                    fd,
                    (&raw const sa).cast::<c_void>(),
                    std::mem::size_of::<SockaddrIn6>() as u32,
                )
            })
            .map(|_| ())
        }
    }
}

/// Creates a TCP listener with `SO_REUSEPORT` (and `SO_REUSEADDR`) set
/// *before* bind — std's `TcpListener::bind` offers no hook for that.
/// Multiple listeners bound this way to the same address share the
/// port, and the kernel hashes incoming connections across their accept
/// queues: the fan-out primitive of the sharded runtime. The returned
/// listener is a normal `TcpListener` owning its fd.
pub fn reuseport_listener(addr: &SocketAddr) -> io::Result<TcpListener> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: no pointers involved; the return value is checked.
    let fd = check(unsafe { socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    let configured = set_sockopt_one(fd, SO_REUSEADDR)
        .and_then(|_| set_sockopt_one(fd, SO_REUSEPORT))
        .and_then(|_| bind_addr(fd, addr))
        // SAFETY: no pointers involved; the return value is checked.
        .and_then(|_| check(unsafe { listen(fd, 1024) }).map(|_| ()));
    match configured {
        // SAFETY: `fd` is a freshly created, bound, listening socket we
        // exclusively own; from_raw_fd transfers that ownership.
        Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
        Err(e) => {
            close_fd(fd);
            Err(e)
        }
    }
}
