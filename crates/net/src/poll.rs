//! Safe wrappers over the epoll fd and the eventfd waker.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Arc;

use crate::sys;

/// A registration cookie: returned verbatim by the kernel with each
/// readiness event so the loop can find the connection it belongs to.
pub type Token = u64;

/// What readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
    /// Subscribe to `EPOLLRDHUP` (peer half-close). Level-triggered, so
    /// once a half-close has been *recorded* the subscription must be
    /// dropped or every subsequent `epoll_wait` returns immediately.
    pub rdhup: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        rdhup: true,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
        rdhup: true,
    };
    /// Neither — keep the registration, deliver only error/hang-up
    /// events (used while a request is parked with the worker pool).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
        rdhup: true,
    };

    /// The same interest minus the half-close subscription — for
    /// connections whose half-close is already recorded.
    pub fn without_rdhup(self) -> Interest {
        Interest {
            rdhup: false,
            ..self
        }
    }

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.rdhup {
            bits |= sys::EPOLLRDHUP;
        }
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The cookie given at registration.
    pub token: Token,
    /// The fd is readable (data, or a hang-up that read() will surface).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or hang-up: the connection is finished either way.
    pub closed: bool,
}

/// The epoll instance. Owns the epoll fd; closed on drop.
pub struct Poller {
    epfd: RawFd,
    buffer: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates an epoll instance with an event buffer of `capacity`.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            buffer: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(8)],
        })
    }

    /// Registers `fd` with the given interest.
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd.as_raw_fd(), interest.bits(), token)
    }

    /// Updates the interest of an already-registered `fd`.
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::epoll_mod(self.epfd, fd.as_raw_fd(), interest.bits(), token)
    }

    /// Removes `fd` from the set. (Closing the fd removes it too; this
    /// exists for the accept-backpressure pause, where the listener
    /// stays open but must stop producing events.)
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_del(self.epfd, fd.as_raw_fd())
    }

    /// Blocks for up to `timeout_ms` (−1 = forever) and returns the
    /// ready events.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<Vec<Event>> {
        let n = sys::epoll_wait_events(self.epfd, &mut self.buffer, timeout_ms)?;
        Ok(self.buffer[..n]
            .iter()
            .map(|raw| {
                // Copy out of the (possibly packed) struct before use.
                let bits = raw.events;
                let token = raw.data;
                Event {
                    token,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                }
            })
            .collect())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Wakes a [`Poller`] from any thread via an eventfd. Clone-cheap.
#[derive(Debug, Clone)]
pub struct Waker {
    inner: Arc<WakerFd>,
}

#[derive(Debug)]
struct WakerFd(RawFd);

impl Drop for WakerFd {
    fn drop(&mut self) {
        sys::close_fd(self.0);
    }
}

impl Waker {
    /// Creates a waker and registers it with the poller under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        let fd = sys::eventfd_create()?;
        sys::epoll_add(poller.epfd, fd, Interest::READ.bits(), token)?;
        Ok(Waker {
            inner: Arc::new(WakerFd(fd)),
        })
    }

    /// Makes the poller's next (or current) `wait` return immediately.
    pub fn wake(&self) {
        let _ = sys::eventfd_signal(self.inner.0);
    }

    /// Clears the pending wakeup edge; call when the waker's token is
    /// delivered so the next `wake` is observable again.
    pub fn drain(&self) {
        sys::eventfd_drain(self.inner.0);
    }
}
