//! `tgp-net` — a std-only, readiness-driven connection layer for the
//! partition service.
//!
//! The thread-per-connection model in `tgp-service` dedicates a blocking
//! worker to every in-flight connection, so persistent (keep-alive)
//! connections beyond `--workers` starve (EXPERIMENTS.md §SRV-OPEN).
//! This crate replaces socket babysitting with a single event-loop
//! thread built on raw `epoll`/`eventfd` bindings — no external
//! dependencies, the same vendoring philosophy as the in-tree
//! `rand`/`proptest` shims. The loop owns:
//!
//! - **non-blocking accept** with a connection cap and accept
//!   backpressure (the listener is paused, not the accept queue
//!   dropped, when the cap is hit);
//! - **per-connection state machines**: incremental request framing
//!   ([`framer`]), partial-write resumption, and keep-alive reuse;
//! - **timeouts** via a hashed timer wheel ([`timer`]): a total
//!   per-request read deadline (slowloris defense), a total per-response
//!   write deadline (stalled-reader defense), and an idle deadline for
//!   quiet keep-alive connections;
//! - **dispatch**: only *complete* requests are handed to the caller's
//!   [`Handler`], which typically enqueues them on a worker pool and
//!   later answers through [`LoopHandle::submit`] from any thread.
//!
//! Workers therefore compute instead of waiting on sockets: thousands
//! of connections can be open while `--workers` stays small.
//!
//! The epoll loop itself is Linux-only ([`EventLoop::spawn`] returns
//! `ErrorKind::Unsupported` elsewhere); the framer and timer wheel are
//! portable and unit-tested everywhere.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

pub mod framer;
pub mod shard;
pub mod timer;

#[cfg(target_os = "linux")]
mod event_loop;
#[cfg(target_os = "linux")]
mod poll;
#[cfg(target_os = "linux")]
mod sys;

#[cfg(target_os = "linux")]
pub use event_loop::{EventLoop, LoopHandle};

#[cfg(not(target_os = "linux"))]
mod stub;
#[cfg(not(target_os = "linux"))]
pub use stub::{EventLoop, LoopHandle};

pub use framer::{request_header_value, FrameError, FrameLimits, FrameStatus};
pub use shard::{LoopSet, ShardSpec};
pub use timer::TimeoutKind;

/// Identifies one accepted connection across the loop / worker
/// boundary. The `generation` makes stale completions harmless: if a
/// connection dies while its request is in flight, the slab slot is
/// reused under a new generation and the late [`LoopHandle::submit`]
/// is dropped instead of answering the wrong peer. With a sharded
/// [`LoopSet`], every loop has its own slab and generation space, so
/// `shard` is what distinguishes loop 0's connection 3 from loop 1's —
/// cross-loop consumers (the service's write-span table) must key on
/// all three fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId {
    /// Which event loop of the [`LoopSet`] owns the connection
    /// (0 for a standalone loop).
    pub shard: u32,
    /// Slab slot of the connection inside its owning event loop.
    pub index: u32,
    /// Reuse counter of that slot at the time the request was framed.
    pub generation: u32,
}

impl ConnId {
    /// Packs the id into an epoll registration token. Tokens are
    /// per-loop (each loop has its own epoll set), so the shard is not
    /// encoded — [`ConnId::from_token`] restores it from the loop's
    /// own id.
    pub fn token(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Recovers the id from a token produced by [`ConnId::token`], on
    /// behalf of the loop `shard`.
    pub fn from_token(token: u64, shard: u32) -> ConnId {
        ConnId {
            shard,
            index: (token & 0xffff_ffff) as u32,
            generation: (token >> 32) as u32,
        }
    }
}

/// Tuning knobs for the event loop.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum simultaneously open connections; accepts pause (and
    /// `accept_backpressure_total` increments) while at the cap.
    pub max_connections: usize,
    /// Total deadline for receiving one complete request, measured from
    /// its first byte (or from accept, for the first request). Not
    /// reset by progress — byte-at-a-time senders still time out.
    pub read_timeout: Duration,
    /// Deadline for writing a response: the timer renews each time it
    /// fires if at least [`NetConfig::write_min_bytes`] were flushed
    /// during the elapsed interval, so a slow-but-live reader of a
    /// large response survives. A reader draining below that rate is
    /// closed as before.
    pub write_timeout: Duration,
    /// Minimum write progress (bytes flushed to the socket) per
    /// `write_timeout` interval for the response timer to renew.
    /// `0` disables renewal, restoring the total-per-response deadline.
    pub write_min_bytes: usize,
    /// How long a keep-alive connection may sit with no request bytes
    /// buffered before it is closed.
    pub idle_timeout: Duration,
    /// Maximum size of a request head (request line + headers).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: u64,
    /// On shutdown, how long to wait for dispatched/writing
    /// connections to finish before force-closing them.
    pub drain_timeout: Duration,
    /// Optional event journal; when set, the loop appends
    /// accept/close/timeout/frame-error events (see `tgp-obs`).
    pub journal: Option<Arc<tgp_obs::Journal>>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_connections: 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            write_min_bytes: 1024,
            idle_timeout: Duration::from_secs(60),
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            drain_timeout: Duration::from_secs(5),
            journal: None,
        }
    }
}

/// Counters the loop maintains; the service renders them under
/// `/metrics`. All plain `AtomicU64`s so they can be shared with the
/// metrics registry without locking.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Currently open connections (gauge).
    pub open_connections: AtomicU64,
    /// Connections accepted since the loop started. With a sharded
    /// [`LoopSet`] this is the per-loop fairness signal: every loop of
    /// a healthy set should accept a share of the traffic.
    pub accepted_total: AtomicU64,
    /// Times the accept loop paused because the connection cap was hit.
    pub accept_backpressure: AtomicU64,
    /// Connections closed by the per-request read deadline.
    pub timeout_closes_read: AtomicU64,
    /// Connections closed by the per-response write deadline.
    pub timeout_closes_write: AtomicU64,
    /// Connections closed by the keep-alive idle deadline.
    pub timeout_closes_idle: AtomicU64,
    /// `epoll_wait` returns that delivered at least one event.
    pub readiness_wakeups: AtomicU64,
}

impl NetCounters {
    /// The close counter for a given timeout kind.
    pub fn timeout_closes(&self, kind: TimeoutKind) -> &AtomicU64 {
        match kind {
            TimeoutKind::Read => &self.timeout_closes_read,
            TimeoutKind::Write => &self.timeout_closes_write,
            TimeoutKind::Idle => &self.timeout_closes_idle,
        }
    }
}

/// What the [`Handler`] wants done with a complete request.
#[derive(Debug)]
pub enum Action {
    /// The handler took ownership (e.g. enqueued it on a worker pool)
    /// and will answer later via [`LoopHandle::submit`]. The connection
    /// parks with no readiness interest until then.
    Pending,
    /// Answer immediately from the loop thread (cache hits, shed/
    /// overload responses). `bytes` is the complete wire response.
    Respond {
        /// Full serialized HTTP response.
        bytes: Vec<u8>,
        /// Keep the connection open for another request afterwards.
        keep_alive: bool,
    },
}

/// The service-side hook the loop calls on its own thread. Callbacks
/// must be quick (a bounded-queue push, a cache probe); anything slow
/// belongs on the worker pool via [`Action::Pending`].
pub trait Handler: Send + Sync + 'static {
    /// Called once per complete framed request. `request` is the exact
    /// wire bytes (head + body) for the service's parser to re-parse,
    /// so both `--io` modes share one parse path.
    fn on_request(&self, conn: ConnId, request: Vec<u8>, handle: &LoopHandle) -> Action;

    /// Called when a connection's bytes can never frame (oversized
    /// head/body, bad `Content-Length`). Returns the full wire response
    /// to send; the connection always closes after it.
    fn on_frame_error(&self, err: FrameError) -> Vec<u8>;

    /// Called on the loop thread after a response has been fully
    /// flushed to the socket, with the time spent writing it (from
    /// first write attempt to last byte). Default: ignored. Used by
    /// the service to patch the `write` span into the request's
    /// trace, which is committed before the loop performs the write.
    fn on_write_complete(&self, _conn: ConnId, _elapsed: Duration) {}
}
