//! The epoll event loop: accept, per-connection state machines,
//! timeouts, and the completion channel back from worker threads.
//!
//! One thread runs [`EventLoop`]; everything it owns — the listener,
//! the connection slab, the timer wheel — is single-threaded and
//! lock-free. The only cross-thread surface is [`LoopHandle`]: a
//! mutex-guarded completion vector plus an eventfd waker, which worker
//! threads use to hand finished responses back.
//!
//! Connection lifecycle:
//!
//! ```text
//!  accept ──► Reading ──frame──► Dispatched ──submit──► Writing ──┐
//!               ▲   │ (complete)  (parked,               │        │
//!               │   │             interest ∅)            │ done   │
//!               │   └─► [frame error] ────► Writing ─────┤        │
//!               │                          (then close)  ▼        │
//!               └────────────── keep-alive ◄── residual? ┴─ close ◄┘
//! ```
//!
//! Timeout policy (one armed timer per connection, superseded by
//! generation bump): *read* = total deadline per request from its
//! first byte; *write* = progress-based deadline per response (the
//! timer renews while at least `write_min_bytes` reach the socket per
//! interval, so large responses to slow-but-live readers survive while
//! byte-at-a-time readers still reap); *idle* = quiet keep-alive
//! connection. Dispatched connections carry no timer — the worker pool
//! owns their latency.
//!
//! One `EventLoop` is a complete single-threaded runtime; a
//! [`crate::LoopSet`] runs several of them over `SO_REUSEPORT` listener
//! shards, each loop carrying its own `shard` id so [`ConnId`]s stay
//! distinct across loops.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tgp_obs::EventKind;

use crate::framer::{frame, FrameLimits, FrameStatus};
use crate::poll::{Event, Interest, Poller, Token, Waker};
use crate::sys;
use crate::timer::{TimeoutKind, TimerWheel};
use crate::{Action, ConnId, Handler, NetConfig, NetCounters};

const LISTENER_TOKEN: Token = u64::MAX;
const WAKER_TOKEN: Token = u64::MAX - 1;

/// Most bytes one connection may pull off its socket per readiness
/// event. A client shoving pipelined requests faster than the loop
/// drains them would otherwise keep `read()` returning data forever,
/// pinning the loop thread on one connection and growing `read_buf`
/// without bound. Level-triggered epoll redelivers, so the remainder is
/// picked up next iteration — after every other ready fd had a turn.
const READ_BUDGET_PER_EVENT: usize = 64 * 1024;

/// How long accepting stays paused after `accept` fails with
/// EMFILE/ENFILE. Those errors leave the pending connection in the
/// kernel queue, so retrying immediately fails identically forever; a
/// short pause lets closes free fds (a close also resumes eagerly).
const ACCEPT_EXHAUSTION_PAUSE: Duration = Duration::from_millis(100);

/// A worker's finished response travelling back to the loop.
struct Completion {
    conn: ConnId,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// State shared between the loop thread and [`LoopHandle`] clones.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    stop: AtomicBool,
    waker: Waker,
}

/// Cheap-to-clone handle for answering dispatched requests and for
/// shutting the loop down. Safe to use from any thread.
#[derive(Clone)]
pub struct LoopHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for LoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopHandle").finish_non_exhaustive()
    }
}

impl LoopHandle {
    /// Queues the wire response for `conn` and wakes the loop. If the
    /// connection died in the meantime the response is dropped — the
    /// generation in [`ConnId`] guarantees it can never reach a peer
    /// that reused the slot.
    pub fn submit(&self, conn: ConnId, bytes: Vec<u8>, keep_alive: bool) {
        self.shared.completions.lock().unwrap().push(Completion {
            conn,
            bytes,
            keep_alive,
        });
        self.shared.waker.wake();
    }

    /// Asks the loop to drain and exit: accepting stops immediately,
    /// idle connections close, and in-flight requests get
    /// `drain_timeout` to finish.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.waker.wake();
    }
}

/// A running event loop (the thread plus its [`LoopHandle`]).
pub struct EventLoop {
    handle: LoopHandle,
    thread: JoinHandle<()>,
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop").finish_non_exhaustive()
    }
}

impl EventLoop {
    /// Takes ownership of `listener` and starts the loop thread.
    /// Requests surface through `handler`; counters through `counters`.
    /// A standalone loop is shard 0.
    pub fn spawn(
        listener: TcpListener,
        config: NetConfig,
        counters: Arc<NetCounters>,
        handler: Arc<dyn Handler>,
    ) -> io::Result<EventLoop> {
        EventLoop::spawn_shard(0, listener, config, counters, handler)
    }

    /// [`EventLoop::spawn`] for one shard of a [`crate::LoopSet`]:
    /// `shard` is stamped into every [`ConnId`] the loop hands out.
    pub fn spawn_shard(
        shard: u32,
        listener: TcpListener,
        config: NetConfig,
        counters: Arc<NetCounters>,
        handler: Arc<dyn Handler>,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new(config.max_connections.min(1024) + 2)?;
        poller.register(&listener, LISTENER_TOKEN, Interest::READ)?;
        let waker = Waker::new(&poller, WAKER_TOKEN)?;
        let shared = Arc::new(Shared {
            completions: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            waker,
        });
        let handle = LoopHandle {
            shared: Arc::clone(&shared),
        };
        let state = Loop {
            shard,
            poller,
            listener,
            accept_paused: false,
            accept_resume_at: None,
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            wheel: TimerWheel::new(Instant::now()),
            timer_seq: 0,
            limits: FrameLimits {
                max_head_bytes: config.max_head_bytes,
                max_body_bytes: config.max_body_bytes,
            },
            config,
            counters,
            handler,
            handle: handle.clone(),
            drain_deadline: None,
        };
        let thread = thread::Builder::new()
            .name(format!("tgp-net-loop-{shard}"))
            .spawn(move || state.run())?;
        Ok(EventLoop { handle, thread })
    }

    /// A handle for workers to answer through.
    pub fn handle(&self) -> LoopHandle {
        self.handle.clone()
    }

    /// Signals shutdown and waits for the drain to finish.
    pub fn shutdown(self) {
        self.handle.shutdown();
        let _ = self.thread.join();
    }
}

/// What a connection is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes until the framer says complete.
    Reading,
    /// A complete request is with the worker pool; no readiness
    /// interest, no timer.
    Dispatched,
    /// Flushing a response, resuming on `EPOLLOUT` after short writes.
    Writing,
}

struct Connection {
    stream: TcpStream,
    state: ConnState,
    interest: Interest,
    /// Wheel generation of the currently armed timer (0 = none).
    timer_gen: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// `written` as of the last write-timer arm/renewal; the progress
    /// baseline the next firing compares against.
    write_mark: usize,
    /// Reuse the connection after the current response.
    keep_alive: bool,
    /// Peer half-closed (EPOLLRDHUP): finish the in-flight response,
    /// then close instead of waiting for more requests.
    rdhup: bool,
    /// When the current response's first write was attempted; reported
    /// to [`Handler::on_write_complete`] once the flush finishes.
    write_started: Option<Instant>,
}

/// One slab slot. `generation` survives reuse so stale tokens and
/// completions are detectable.
struct Slot {
    generation: u32,
    conn: Option<Connection>,
}

struct Loop {
    /// This loop's id within its [`crate::LoopSet`] (0 standalone);
    /// stamped into every [`ConnId`] handed across the thread boundary.
    shard: u32,
    poller: Poller,
    listener: TcpListener,
    accept_paused: bool,
    /// When set, a paused listener re-registers at this instant (the
    /// timed recovery path for fd exhaustion; cap-triggered pauses
    /// resume on connection close instead).
    accept_resume_at: Option<Instant>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    open: usize,
    wheel: TimerWheel,
    /// Monotonic wheel-generation source (never reused, so entries from
    /// a slot's previous occupant can never match its current one).
    timer_seq: u64,
    limits: FrameLimits,
    config: NetConfig,
    counters: Arc<NetCounters>,
    handler: Arc<dyn Handler>,
    handle: LoopHandle,
    drain_deadline: Option<Instant>,
}

impl Loop {
    /// Appends a connection-lifecycle event to the configured journal
    /// (no-op without one). Trace ids are unknown at this layer; the
    /// service journals the request-scoped events.
    fn journal_event(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(journal) = &self.config.journal {
            journal.append(kind, 0, a, b);
        }
    }

    fn run(mut self) {
        loop {
            let now = Instant::now();
            self.fire_timers(now);
            if self.accept_resume_at.is_some_and(|at| now >= at) {
                self.resume_accept();
            }
            self.drain_completions();
            if self.handle.shared.stop.load(Ordering::Acquire) && self.drain_deadline.is_none() {
                self.begin_drain(now);
            }
            if let Some(deadline) = self.drain_deadline {
                if self.open == 0 || now >= deadline {
                    break;
                }
            }
            let timeout_ms = self.wait_budget_ms(now);
            let events = match self.poller.wait(timeout_ms) {
                Ok(events) => events,
                Err(_) => break, // epoll fd itself failed; nothing to salvage
            };
            if !events.is_empty() {
                self.counters
                    .readiness_wakeups
                    .fetch_add(1, Ordering::Relaxed);
            }
            for event in events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.handle.shared.waker.drain(),
                    token => self.conn_event(token, event),
                }
            }
        }
        // Force-close whatever outlived the drain deadline.
        for idx in 0..self.slots.len() {
            if self.slots[idx].conn.is_some() {
                self.close_conn(idx);
            }
        }
    }

    /// How long `epoll_wait` may block: until the next timer sweep, the
    /// drain deadline, or the accept-resume instant, whichever is
    /// sooner. Minimum 1 ms so a just-missed tick does not busy-spin.
    fn wait_budget_ms(&self, now: Instant) -> i32 {
        let mut budget = self.wheel.next_sweep_in(now);
        if let Some(deadline) = self.drain_deadline {
            budget = budget.min(deadline.saturating_duration_since(now));
        }
        if let Some(resume_at) = self.accept_resume_at {
            budget = budget.min(resume_at.saturating_duration_since(now));
        }
        (budget.as_millis() as i32).max(1)
    }

    fn fire_timers(&mut self, now: Instant) {
        for expired in self.wheel.expire(now) {
            let live = self
                .slots
                .get(expired.conn)
                .and_then(|slot| slot.conn.as_ref())
                .is_some_and(|conn| conn.timer_gen == expired.generation);
            if live {
                if expired.kind == TimeoutKind::Write && self.renew_write_timer(expired.conn) {
                    continue;
                }
                self.counters
                    .timeout_closes(expired.kind)
                    .fetch_add(1, Ordering::Relaxed);
                self.journal_event(
                    EventKind::Timeout,
                    expired.conn as u64,
                    match expired.kind {
                        TimeoutKind::Read => 0,
                        TimeoutKind::Write => 1,
                        TimeoutKind::Idle => 2,
                    },
                );
                self.close_conn(expired.conn);
            }
        }
    }

    /// A live write timer fired: renew it (and return `true`) if the
    /// connection flushed at least `write_min_bytes` since the timer
    /// was armed — the reader is slow but draining. `write_min_bytes`
    /// of 0 keeps the old total-per-response behavior: never renew.
    fn renew_write_timer(&mut self, idx: usize) -> bool {
        let min = self.config.write_min_bytes;
        let progressed = self.slots[idx]
            .conn
            .as_mut()
            .filter(|conn| conn.state == ConnState::Writing)
            .is_some_and(|conn| {
                let moved = min > 0 && conn.written.saturating_sub(conn.write_mark) >= min;
                if moved {
                    conn.write_mark = conn.written;
                }
                moved
            });
        if progressed {
            self.arm_timer(idx, TimeoutKind::Write);
        }
        progressed
    }

    // ---- accept ---------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            if self.open >= self.config.max_connections {
                self.pause_accept();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => self.add_conn(stream),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // The peer aborted between the kernel queue and our
                // accept: that slot is consumed, keep accepting.
                Err(ref e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    // EMFILE/ENFILE do NOT consume the pending
                    // connection — accept would fail identically on an
                    // immediate retry, so park the listener until a
                    // close frees an fd or the pause elapses.
                    if matches!(e.raw_os_error(), Some(sys::EMFILE | sys::ENFILE)) {
                        self.pause_accept();
                        self.accept_resume_at = Some(Instant::now() + ACCEPT_EXHAUSTION_PAUSE);
                    }
                    // Anything else: bail out of the inner loop so
                    // timers, completions, and open connections keep
                    // being serviced; level-triggered epoll redelivers
                    // the listener if it is still ready.
                    return;
                }
            }
        }
    }

    fn pause_accept(&mut self) {
        if !self.accept_paused {
            self.accept_paused = true;
            self.counters
                .accept_backpressure
                .fetch_add(1, Ordering::Relaxed);
            let _ = self.poller.deregister(&self.listener);
        }
    }

    fn resume_accept(&mut self) {
        if self.accept_paused && self.drain_deadline.is_none() {
            self.accept_paused = false;
            self.accept_resume_at = None;
            let _ = self
                .poller
                .register(&self.listener, LISTENER_TOKEN, Interest::READ);
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot {
                generation: 0,
                conn: None,
            });
            self.slots.len() - 1
        });
        let token = self.token_of(idx);
        if self
            .poller
            .register(&stream, token, Interest::READ)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.slots[idx].conn = Some(Connection {
            stream,
            state: ConnState::Reading,
            interest: Interest::READ,
            timer_gen: 0,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            write_mark: 0,
            keep_alive: true,
            rdhup: false,
            write_started: None,
        });
        self.open += 1;
        self.counters
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        self.counters.accepted_total.fetch_add(1, Ordering::Relaxed);
        self.journal_event(EventKind::Accept, idx as u64, 0);
        // The first request's total deadline starts at accept.
        self.arm_timer(idx, TimeoutKind::Read);
    }

    fn token_of(&self, idx: usize) -> Token {
        self.conn_id(idx).token()
    }

    fn conn_id(&self, idx: usize) -> ConnId {
        ConnId {
            shard: self.shard,
            index: idx as u32,
            generation: self.slots[idx].generation,
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.slots[idx].conn.take() {
            // Dropping the stream closes the fd, which also removes it
            // from the epoll set.
            drop(conn);
            self.journal_event(EventKind::Close, idx as u64, 0);
            self.slots[idx].generation = self.slots[idx].generation.wrapping_add(1);
            self.free.push(idx);
            self.open -= 1;
            self.counters
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            self.resume_accept();
        }
    }

    // ---- timers ---------------------------------------------------

    fn arm_timer(&mut self, idx: usize, kind: TimeoutKind) {
        let duration = match kind {
            TimeoutKind::Read => self.config.read_timeout,
            TimeoutKind::Write => self.config.write_timeout,
            TimeoutKind::Idle => self.config.idle_timeout,
        };
        self.timer_seq += 1;
        let generation = self.timer_seq;
        if let Some(conn) = self.slots[idx].conn.as_mut() {
            conn.timer_gen = generation;
        }
        self.wheel
            .arm(idx, generation, Instant::now() + duration, kind);
    }

    fn cancel_timer(&mut self, idx: usize) {
        if let Some(conn) = self.slots[idx].conn.as_mut() {
            conn.timer_gen = 0;
        }
    }

    // ---- readiness dispatch --------------------------------------

    fn conn_event(&mut self, token: Token, event: Event) {
        let id = ConnId::from_token(token, self.shard);
        let idx = id.index as usize;
        let (state, rdhup_recorded) = {
            let Some(slot) = self.slots.get_mut(idx) else {
                return;
            };
            if slot.generation != id.generation {
                return; // stale event for a previous occupant
            }
            let Some(conn) = slot.conn.as_mut() else {
                return;
            };
            let mut rdhup_recorded = false;
            if event.readable && conn.state != ConnState::Reading {
                // EPOLLRDHUP while writing or dispatched: the peer
                // half-closed. The in-flight response still goes out
                // (their read half may be open) but the connection is
                // not reused afterwards.
                if !conn.rdhup {
                    conn.rdhup = true;
                    rdhup_recorded = true;
                }
                if conn.state == ConnState::Writing {
                    conn.keep_alive = false;
                }
            }
            (conn.state, rdhup_recorded)
        };
        if event.closed {
            self.close_conn(idx);
            return;
        }
        if rdhup_recorded {
            // The half-close is level-triggered: with EPOLLRDHUP still
            // subscribed, every epoll_wait would return this connection
            // immediately until the worker answers or the write
            // finishes. Re-register with the same readiness bits minus
            // RDHUP (set_interest drops it now that conn.rdhup is set).
            let current = self.slots[idx].conn.as_ref().unwrap().interest;
            self.set_interest(idx, current);
            if self.slots[idx].conn.is_none() {
                return; // re-registration failed and closed the conn
            }
        }
        match state {
            ConnState::Reading if event.readable && self.fill_read_buf(idx) => {
                self.advance(idx);
            }
            ConnState::Writing if event.writable => self.advance(idx),
            _ => {}
        }
    }

    /// Reads what is currently available, up to
    /// [`READ_BUDGET_PER_EVENT`] bytes — level-triggered epoll
    /// redelivers the remainder on the next loop iteration, so one
    /// fire-hose client cannot pin the loop thread or grow `read_buf`
    /// unboundedly while other connections wait. Returns `false` if the
    /// connection was closed (EOF or error).
    fn fill_read_buf(&mut self, idx: usize) -> bool {
        let was_empty = {
            let conn = self.slots[idx].conn.as_ref().unwrap();
            conn.read_buf.is_empty()
        };
        let mut chunk = [0u8; 4096];
        let mut budget = READ_BUDGET_PER_EVENT;
        loop {
            if budget == 0 {
                break;
            }
            let conn = self.slots[idx].conn.as_mut().unwrap();
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF — but a client that shut down its write half
                    // after a complete request still deserves its
                    // response, so let the framer decide: already
                    // buffered bytes may frame a final request. With
                    // nothing buffered there is nothing to serve.
                    if conn.read_buf.is_empty() {
                        self.close_conn(idx);
                        return false;
                    }
                    conn.rdhup = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    budget = budget.saturating_sub(n);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return false;
                }
            }
        }
        let conn = self.slots[idx].conn.as_ref().unwrap();
        if was_empty && !conn.read_buf.is_empty() {
            // First byte of a new request: the idle timer (if any)
            // yields to the request's total read deadline.
            self.arm_timer(idx, TimeoutKind::Read);
        }
        true
    }

    /// Drives a connection's state machine as far as it can go without
    /// blocking. Iterative (not recursive) so a buffer full of
    /// pipelined requests cannot grow the stack.
    fn advance(&mut self, idx: usize) {
        loop {
            let state = match self.slots[idx].conn.as_ref() {
                Some(conn) => conn.state,
                None => return,
            };
            match state {
                ConnState::Dispatched => return,
                ConnState::Reading => {
                    if !self.try_frame(idx) {
                        return;
                    }
                }
                ConnState::Writing => match self.try_write(idx) {
                    WriteOutcome::Blocked | WriteOutcome::Closed => return,
                    WriteOutcome::Done => {
                        if !self.finish_response(idx) {
                            return;
                        }
                    }
                },
            }
        }
    }

    /// Attempts to frame the next request. Returns `true` if the state
    /// machine should keep advancing (a write was started), `false` if
    /// the connection is parked (partial request, dispatched, closed).
    fn try_frame(&mut self, idx: usize) -> bool {
        let status = {
            let conn = self.slots[idx].conn.as_ref().unwrap();
            frame(&conn.read_buf, &self.limits)
        };
        match status {
            FrameStatus::Partial => {
                // A half-closed peer can never finish this request, and
                // its level-triggered EOF would spin the loop if we
                // kept read interest.
                if self.slots[idx].conn.as_ref().unwrap().rdhup {
                    self.close_conn(idx);
                } else {
                    self.set_interest(idx, Interest::READ);
                }
                false
            }
            FrameStatus::Complete { len } => {
                let id = self.conn_id(idx);
                let request = {
                    let conn = self.slots[idx].conn.as_mut().unwrap();
                    conn.read_buf.drain(..len).collect::<Vec<u8>>()
                };
                self.cancel_timer(idx);
                match self.handler.on_request(id, request, &self.handle) {
                    Action::Pending => {
                        let conn = self.slots[idx].conn.as_mut().unwrap();
                        conn.state = ConnState::Dispatched;
                        self.set_interest(idx, Interest::NONE);
                        false
                    }
                    Action::Respond { bytes, keep_alive } => {
                        self.start_write(idx, bytes, keep_alive);
                        true
                    }
                }
            }
            FrameStatus::Error(err) => {
                self.journal_event(EventKind::FrameError, idx as u64, 0);
                let response = self.handler.on_frame_error(err);
                self.start_write(idx, response, false);
                true
            }
        }
    }

    fn start_write(&mut self, idx: usize, bytes: Vec<u8>, keep_alive: bool) {
        {
            let conn = self.slots[idx].conn.as_mut().unwrap();
            conn.write_buf = bytes;
            conn.written = 0;
            conn.write_mark = 0;
            conn.keep_alive = keep_alive && !conn.rdhup;
            conn.state = ConnState::Writing;
            conn.write_started = Some(Instant::now());
        }
        self.arm_timer(idx, TimeoutKind::Write);
    }

    /// Writes as much of the pending response as the socket accepts.
    fn try_write(&mut self, idx: usize) -> WriteOutcome {
        loop {
            let conn = self.slots[idx].conn.as_mut().unwrap();
            if conn.written >= conn.write_buf.len() {
                return WriteOutcome::Done;
            }
            let offset = conn.written;
            match conn.stream.write(&conn.write_buf[offset..]) {
                Ok(0) => {
                    self.close_conn(idx);
                    return WriteOutcome::Closed;
                }
                Ok(n) => {
                    let conn = self.slots[idx].conn.as_mut().unwrap();
                    conn.written += n;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(idx, Interest::WRITE);
                    return WriteOutcome::Blocked;
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return WriteOutcome::Closed;
                }
            }
        }
    }

    /// A response fully flushed: close, or rotate back to reading.
    /// Returns `true` if the state machine should keep advancing
    /// (pipelined bytes are already buffered).
    fn finish_response(&mut self, idx: usize) -> bool {
        let (keep_alive, write_elapsed) = {
            let conn = self.slots[idx].conn.as_mut().unwrap();
            let elapsed = conn
                .write_started
                .take()
                .map(|started| started.elapsed())
                .unwrap_or_default();
            (conn.keep_alive && self.drain_deadline.is_none(), elapsed)
        };
        let id = self.conn_id(idx);
        self.handler.on_write_complete(id, write_elapsed);
        if !keep_alive {
            self.close_conn(idx);
            return false;
        }
        let has_residual = {
            let conn = self.slots[idx].conn.as_mut().unwrap();
            conn.write_buf = Vec::new();
            conn.written = 0;
            conn.state = ConnState::Reading;
            !conn.read_buf.is_empty()
        };
        if has_residual {
            // The next pipelined request's deadline starts now.
            self.arm_timer(idx, TimeoutKind::Read);
            true
        } else {
            self.arm_timer(idx, TimeoutKind::Idle);
            self.set_interest(idx, Interest::READ);
            false
        }
    }

    fn set_interest(&mut self, idx: usize, interest: Interest) {
        let token = self.token_of(idx);
        let conn = self.slots[idx].conn.as_mut().unwrap();
        // A recorded half-close is a level-triggered condition that
        // never clears; keep it out of every later registration or it
        // wakes the loop on each epoll_wait.
        let interest = if conn.rdhup {
            interest.without_rdhup()
        } else {
            interest
        };
        if conn.interest != interest {
            if self
                .poller
                .reregister(&conn.stream, token, interest)
                .is_err()
            {
                self.close_conn(idx);
                return;
            }
            let conn = self.slots[idx].conn.as_mut().unwrap();
            conn.interest = interest;
        }
    }

    // ---- completions from workers --------------------------------

    fn drain_completions(&mut self) {
        let completions = std::mem::take(&mut *self.handle.shared.completions.lock().unwrap());
        for completion in completions {
            if completion.conn.shard != self.shard {
                continue; // submitted through the wrong loop's handle
            }
            let idx = completion.conn.index as usize;
            let live = self
                .slots
                .get(idx)
                .filter(|slot| slot.generation == completion.conn.generation)
                .and_then(|slot| slot.conn.as_ref())
                .is_some_and(|conn| conn.state == ConnState::Dispatched);
            if !live {
                continue; // connection died while the worker computed
            }
            self.start_write(idx, completion.bytes, completion.keep_alive);
            self.advance(idx);
        }
    }

    // ---- shutdown -------------------------------------------------

    fn begin_drain(&mut self, now: Instant) {
        self.drain_deadline = Some(now + self.config.drain_timeout);
        self.accept_resume_at = None; // the listener never resumes now
        if !self.accept_paused {
            let _ = self.poller.deregister(&self.listener);
            self.accept_paused = true;
        }
        // Idle and mid-request connections close now; dispatched and
        // writing ones get until the deadline to finish.
        for idx in 0..self.slots.len() {
            let reading = self.slots[idx]
                .conn
                .as_ref()
                .is_some_and(|conn| conn.state == ConnState::Reading);
            if reading {
                self.close_conn(idx);
            }
        }
    }
}

enum WriteOutcome {
    Done,
    Blocked,
    Closed,
}
