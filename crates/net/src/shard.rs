//! The sharded multi-loop runtime: N `SO_REUSEPORT` listeners, one
//! [`EventLoop`] per core.
//!
//! A single event loop owns one accept path, one timer wheel, and one
//! eventfd — which caps dispatch at one core no matter how many workers
//! compute behind it. A [`LoopSet`] removes that ceiling with the same
//! shared-memory discipline the partitioning paper applies to task
//! graphs: give each of the p processors its own slice of the contended
//! state. Concretely:
//!
//! - every loop binds its *own* listener to the *same* address with
//!   `SO_REUSEPORT` set before bind, so the kernel hashes incoming
//!   connections (by 4-tuple) across the listeners' accept queues — no
//!   user-space accept lock, no thundering herd;
//! - every loop has its own epoll set, timer wheel, eventfd waker, and
//!   generation-tagged token space; a [`crate::ConnId`] carries the
//!   loop's `shard` id so ids stay distinct across loops;
//! - every loop gets its own [`NetCounters`] (so `/metrics` can both
//!   label per-loop series and sum request totals) and its own
//!   [`Handler`] (so the service can pin a worker-pool slice per loop
//!   and never take a queue lock across loops).
//!
//! Closing one listener (see [`LoopSet::shutdown_one`]) makes the
//! kernel redistribute new connections over the remaining shards, which
//! is what makes losing a loop a capacity event instead of an outage.
//!
//! Binding is Linux-only (it needs the raw `SO_REUSEPORT` socket path
//! in the private `sys` module); elsewhere [`LoopSet::bind`] reports
//! `Unsupported`, matching the stub [`EventLoop`].

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

use crate::{EventLoop, Handler, LoopHandle, NetConfig, NetCounters};

/// Everything one shard of a [`LoopSet`] needs: its listener (from
/// [`LoopSet::bind`]), its own counters, and its own handler.
pub struct ShardSpec {
    /// The shard's `SO_REUSEPORT` listener.
    pub listener: TcpListener,
    /// Per-loop counters; the service renders them with `loop=` labels
    /// and sums them for the totals.
    pub counters: Arc<NetCounters>,
    /// Per-loop request handler (typically wrapping a per-loop queue).
    pub handler: Arc<dyn Handler>,
}

impl std::fmt::Debug for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSpec")
            .field("listener", &self.listener)
            .finish_non_exhaustive()
    }
}

/// A set of running event loops sharing one listening address.
#[derive(Debug)]
pub struct LoopSet {
    /// `None` marks a shard that was individually shut down.
    loops: Vec<Option<EventLoop>>,
}

impl LoopSet {
    /// Binds `n` `SO_REUSEPORT` listeners to `addr` and returns them
    /// with the resolved local address. Port 0 works: the first bind
    /// picks the ephemeral port and the remaining listeners join it.
    #[cfg(target_os = "linux")]
    pub fn bind(addr: &SocketAddr, n: usize) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
        let n = n.max(1);
        let first = crate::sys::reuseport_listener(addr)?;
        let local = first.local_addr()?;
        let mut listeners = Vec::with_capacity(n);
        listeners.push(first);
        for _ in 1..n {
            listeners.push(crate::sys::reuseport_listener(&local)?);
        }
        Ok((listeners, local))
    }

    /// `SO_REUSEPORT` binding needs the Linux socket path; off Linux
    /// this reports `Unsupported` like the stub [`EventLoop`].
    #[cfg(not(target_os = "linux"))]
    pub fn bind(_addr: &SocketAddr, _n: usize) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "sharded listeners require Linux; use --io threads",
        ))
    }

    /// Starts one event loop per [`ShardSpec`], shard ids assigned in
    /// order. On a mid-way spawn failure the already-started loops are
    /// shut down before the error is returned.
    pub fn spawn(shards: Vec<ShardSpec>, config: &NetConfig) -> io::Result<LoopSet> {
        let mut loops: Vec<Option<EventLoop>> = Vec::with_capacity(shards.len());
        for (id, spec) in shards.into_iter().enumerate() {
            match EventLoop::spawn_shard(
                id as u32,
                spec.listener,
                config.clone(),
                spec.counters,
                spec.handler,
            ) {
                Ok(event_loop) => loops.push(Some(event_loop)),
                Err(e) => {
                    for started in loops.into_iter().flatten() {
                        started.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        Ok(LoopSet { loops })
    }

    /// Number of shards the set was spawned with (including any since
    /// shut down individually).
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// `true` when the set has no shards at all.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The submit/shutdown handle of shard `i` (`None` when that shard
    /// was already shut down).
    pub fn handle(&self, i: usize) -> Option<LoopHandle> {
        self.loops
            .get(i)
            .and_then(|l| l.as_ref())
            .map(EventLoop::handle)
    }

    /// Shuts down shard `i` alone and waits for its drain: its listener
    /// closes, so the kernel redistributes new connections across the
    /// remaining shards. Returns `false` if `i` was already down.
    /// This is the degraded-capacity path (and the robustness-test
    /// hook); whole-set teardown is [`LoopSet::shutdown`].
    pub fn shutdown_one(&mut self, i: usize) -> bool {
        match self.loops.get_mut(i).and_then(Option::take) {
            Some(event_loop) => {
                event_loop.shutdown();
                true
            }
            None => false,
        }
    }

    /// Signals every loop to drain, then joins them all. Signalling
    /// first means the shards drain concurrently — total teardown time
    /// is one drain window, not one per shard.
    pub fn shutdown(self) {
        for event_loop in self.loops.iter().flatten() {
            event_loop.handle().shutdown();
        }
        for event_loop in self.loops.into_iter().flatten() {
            event_loop.shutdown();
        }
    }
}
