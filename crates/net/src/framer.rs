//! Incremental HTTP/1.1 request *framing* (not parsing).
//!
//! The event loop needs exactly one thing from HTTP: to know where a
//! request ends, so it can hand a complete byte slice to a worker. Full
//! parsing — method/path dispatch, header validation, error responses —
//! stays in `tgp-service`, which re-parses the framed bytes with the
//! same code it uses in threads mode. That split keeps the two `--io`
//! modes byte-identical on the wire: the framer only ever answers
//! "complete / need more / unframeable", never "valid".
//!
//! Framing rules (mirroring the service's parser limits):
//! - the head (request line + headers) ends at the first blank line and
//!   may not exceed `max_head_bytes`;
//! - the body length is the last `Content-Length` value if present,
//!   else 0, and may not exceed `max_body_bytes`;
//! - `Transfer-Encoding` requests are framed with body 0 — the service
//!   rejects them with 400 + close, so the unread body is never
//!   misinterpreted as a pipelined request.

/// Why a connection's bytes cannot be framed. The service maps each
/// variant to the same HTTP error it produces in threads mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// No blank line within `max_head_bytes`.
    HeadTooLarge,
    /// `Content-Length` present but not a valid non-negative integer.
    BadContentLength,
    /// Declared body exceeds the configured cap.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: u64,
        /// The configured cap it exceeded.
        limit: u64,
    },
}

/// Result of a framing attempt over a connection's read buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// Not enough bytes yet; keep reading.
    Partial,
    /// A complete request occupies `buf[..len]`.
    Complete {
        /// Total framed length: head + blank line + body.
        len: usize,
    },
    /// The bytes can never become a frameable request.
    Error(FrameError),
}

/// Limits the framer enforces; mirror the service's parser caps.
#[derive(Debug, Clone, Copy)]
pub struct FrameLimits {
    /// Maximum bytes of request line + headers, including terminator.
    pub max_head_bytes: usize,
    /// Maximum declared body size in bytes.
    pub max_body_bytes: u64,
}

/// Attempts to frame one request at the start of `buf`.
pub fn frame(buf: &[u8], limits: &FrameLimits) -> FrameStatus {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None => {
            // The terminator straddles chunk boundaries, so only give up
            // once the buffer is past the cap with no terminator inside
            // the capped prefix.
            if buf.len() >= limits.max_head_bytes {
                return FrameStatus::Error(FrameError::HeadTooLarge);
            }
            return FrameStatus::Partial;
        }
    };
    if head_end > limits.max_head_bytes {
        return FrameStatus::Error(FrameError::HeadTooLarge);
    }
    let head = &buf[..head_end];
    let body_len = if has_header(head, b"transfer-encoding") {
        // Framed as body-less; the service's parser rejects it and the
        // connection closes, so trailing chunked bytes are never
        // replayed as a new request.
        0
    } else {
        match content_length(head) {
            Ok(len) => len,
            Err(e) => return FrameStatus::Error(e),
        }
    };
    if body_len > limits.max_body_bytes {
        return FrameStatus::Error(FrameError::BodyTooLarge {
            declared: body_len,
            limit: limits.max_body_bytes,
        });
    }
    let total = head_end + body_len as usize;
    if buf.len() >= total {
        FrameStatus::Complete { len: total }
    } else {
        FrameStatus::Partial
    }
}

/// Index one past the head terminator (`\r\n\r\n` or `\n\n`), if any.
/// The service's line-based parser treats a bare `\n` as a line ending,
/// so the framer must too, or the two modes would disagree on framing.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // Line ended at i. A following `\n` or `\r\n` is blank.
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Case-insensitively checks whether `head` contains header `name`.
fn has_header(head: &[u8], name: &[u8]) -> bool {
    header_value(head, name).is_some()
}

/// Returns the value of header `name` from a complete framed request
/// (head + body), or `None` when the header is absent or the head never
/// terminates. Lets the event loop and workers peek at routing-relevant
/// headers (e.g. `x-deadline-ms`) without running the full parser.
pub fn request_header_value<'a>(buf: &'a [u8], name: &[u8]) -> Option<&'a [u8]> {
    let head_end = find_head_end(buf)?;
    header_value(&buf[..head_end], name)
}

/// Returns the value slice of the *last* occurrence of header `name`
/// (the service's parser keeps the last duplicate; match it).
fn header_value<'a>(head: &'a [u8], name: &[u8]) -> Option<&'a [u8]> {
    let mut found = None;
    for line in head.split(|&b| b == b'\n').skip(1) {
        let line = trim_ascii(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue;
        };
        let key = trim_ascii(&line[..colon]);
        if key.len() == name.len()
            && key
                .iter()
                .zip(name.iter())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
        {
            found = Some(trim_ascii(&line[colon + 1..]));
        }
    }
    found
}

fn trim_ascii(mut bytes: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = bytes {
        if first.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = bytes {
        if last.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    bytes
}

/// Parses the `Content-Length` of `head`, defaulting to 0 when absent.
fn content_length(head: &[u8]) -> Result<u64, FrameError> {
    let Some(value) = header_value(head, b"content-length") else {
        return Ok(0);
    };
    let text = std::str::from_utf8(value).map_err(|_| FrameError::BadContentLength)?;
    text.trim()
        .parse::<u64>()
        .map_err(|_| FrameError::BadContentLength)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: FrameLimits = FrameLimits {
        max_head_bytes: 1024,
        max_body_bytes: 4096,
    };

    #[test]
    fn frames_a_bodyless_get() {
        let req = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        assert_eq!(
            frame(req, &LIMITS),
            FrameStatus::Complete { len: req.len() }
        );
    }

    #[test]
    fn frames_a_post_with_body_and_trailing_pipelined_bytes() {
        let req = b"POST /v2/partition HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /next";
        assert_eq!(
            frame(req, &LIMITS),
            FrameStatus::Complete { len: req.len() - 9 }
        );
    }

    #[test]
    fn partial_until_body_arrives() {
        let head = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(frame(head, &LIMITS), FrameStatus::Partial);
    }

    #[test]
    fn partial_mid_header() {
        assert_eq!(
            frame(b"GET / HTTP/1.1\r\nHost: ", &LIMITS),
            FrameStatus::Partial
        );
    }

    #[test]
    fn bare_lf_line_endings_frame_like_the_service_parser() {
        let req = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        assert_eq!(
            frame(req, &LIMITS),
            FrameStatus::Complete { len: req.len() }
        );
    }

    #[test]
    fn head_over_cap_is_an_error() {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        while req.len() < LIMITS.max_head_bytes + 10 {
            req.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(
            frame(&req, &LIMITS),
            FrameStatus::Error(FrameError::HeadTooLarge)
        );
    }

    #[test]
    fn body_over_cap_is_an_error_before_the_body_arrives() {
        let req = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert_eq!(
            frame(req, &LIMITS),
            FrameStatus::Error(FrameError::BodyTooLarge {
                declared: 999_999,
                limit: 4096
            })
        );
    }

    #[test]
    fn garbage_content_length_is_an_error() {
        let req = b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
        assert_eq!(
            frame(req, &LIMITS),
            FrameStatus::Error(FrameError::BadContentLength)
        );
    }

    #[test]
    fn last_duplicate_content_length_wins() {
        let req = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nabcd";
        assert_eq!(
            frame(req, &LIMITS),
            FrameStatus::Complete { len: req.len() }
        );
    }

    #[test]
    fn transfer_encoding_frames_with_zero_body() {
        // The service rejects it with 400 + close; the framer only needs
        // to terminate at the head.
        let req = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n";
        let head_len = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".len();
        assert_eq!(frame(req, &LIMITS), FrameStatus::Complete { len: head_len });
    }

    #[test]
    fn header_name_match_is_case_insensitive() {
        let req = b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 3\r\n\r\nabc";
        assert_eq!(
            frame(req, &LIMITS),
            FrameStatus::Complete { len: req.len() }
        );
    }
}
