//! Reproducible random workload generators.
//!
//! The paper's Figure 2 evaluates the bandwidth algorithm on simulated
//! linear task graphs with vertex weights drawn from a distribution; its
//! average-case analysis (§2.3.2) assumes weights uniform over `[w1, w2]`.
//! These generators supply those workloads plus tree-shaped ones for the
//! bottleneck/processor experiments. All take an explicit RNG so runs are
//! reproducible from a seed.

use rand::Rng;

use crate::{NodeId, PathGraph, ProcessGraph, Tree, TreeEdge, Weight};

/// A distribution over weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WeightDist {
    /// Every draw is the same value.
    Constant(u64),
    /// Uniform over the inclusive range `[lo, hi]` — the distribution the
    /// paper's average-case analysis assumes.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// With probability `heavy_permille/1000` draw uniformly from
    /// `[heavy_lo, heavy_hi]`, otherwise from `[lo, hi]` — models workloads
    /// with occasional expensive tasks.
    Bimodal {
        /// Light range lower bound (inclusive).
        lo: u64,
        /// Light range upper bound (inclusive).
        hi: u64,
        /// Heavy range lower bound (inclusive).
        heavy_lo: u64,
        /// Heavy range upper bound (inclusive).
        heavy_hi: u64,
        /// Probability of the heavy range, in thousandths.
        heavy_permille: u32,
    },
}

impl WeightDist {
    /// Draws one weight.
    ///
    /// # Panics
    ///
    /// Panics if a range is inverted (`lo > hi`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Weight {
        match *self {
            WeightDist::Constant(w) => Weight::new(w),
            WeightDist::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform range inverted: [{lo}, {hi}]");
                Weight::new(rng.gen_range(lo..=hi))
            }
            WeightDist::Bimodal {
                lo,
                hi,
                heavy_lo,
                heavy_hi,
                heavy_permille,
            } => {
                assert!(lo <= hi, "light range inverted: [{lo}, {hi}]");
                assert!(
                    heavy_lo <= heavy_hi,
                    "heavy range inverted: [{heavy_lo}, {heavy_hi}]"
                );
                if rng.gen_range(0..1000) < heavy_permille {
                    Weight::new(rng.gen_range(heavy_lo..=heavy_hi))
                } else {
                    Weight::new(rng.gen_range(lo..=hi))
                }
            }
        }
    }

    /// The largest value the distribution can produce.
    pub fn max_value(&self) -> u64 {
        match *self {
            WeightDist::Constant(w) => w,
            WeightDist::Uniform { hi, .. } => hi,
            WeightDist::Bimodal { hi, heavy_hi, .. } => hi.max(heavy_hi),
        }
    }
}

/// Generates a random linear task graph with `n` nodes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_chain<R: Rng + ?Sized>(
    n: usize,
    node_dist: WeightDist,
    edge_dist: WeightDist,
    rng: &mut R,
) -> PathGraph {
    assert!(n > 0, "chain must have at least one node");
    let node_weights: Vec<Weight> = (0..n).map(|_| node_dist.sample(rng)).collect();
    let edge_weights: Vec<Weight> = (0..n - 1).map(|_| edge_dist.sample(rng)).collect();
    PathGraph::from_weights(node_weights, edge_weights)
        .expect("generated chain dimensions are consistent")
}

/// Generates a random tree with `n` nodes by uniform random attachment:
/// node `i` connects to a parent drawn uniformly from `0..i`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(
    n: usize,
    node_dist: WeightDist,
    edge_dist: WeightDist,
    rng: &mut R,
) -> Tree {
    assert!(n > 0, "tree must have at least one node");
    let node_weights: Vec<Weight> = (0..n).map(|_| node_dist.sample(rng)).collect();
    let edges: Vec<TreeEdge> = (1..n)
        .map(|i| {
            let parent = rng.gen_range(0..i);
            TreeEdge::new(NodeId::new(parent), NodeId::new(i), edge_dist.sample(rng))
        })
        .collect();
    Tree::from_edges(node_weights, edges).expect("random attachment always yields a tree")
}

/// Generates a star: node 0 is the centre, nodes `1..n` are leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star<R: Rng + ?Sized>(
    n: usize,
    node_dist: WeightDist,
    edge_dist: WeightDist,
    rng: &mut R,
) -> Tree {
    assert!(n > 0, "star must have at least one node");
    let node_weights: Vec<Weight> = (0..n).map(|_| node_dist.sample(rng)).collect();
    let edges: Vec<TreeEdge> = (1..n)
        .map(|i| TreeEdge::new(NodeId::new(0), NodeId::new(i), edge_dist.sample(rng)))
        .collect();
    Tree::from_edges(node_weights, edges).expect("star dimensions are consistent")
}

/// Generates a caterpillar: a spine path of `spine` nodes, each spine node
/// carrying `legs` leaf children. Total nodes: `spine * (legs + 1)`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar<R: Rng + ?Sized>(
    spine: usize,
    legs: usize,
    node_dist: WeightDist,
    edge_dist: WeightDist,
    rng: &mut R,
) -> Tree {
    assert!(spine > 0, "caterpillar must have at least one spine node");
    let n = spine * (legs + 1);
    let node_weights: Vec<Weight> = (0..n).map(|_| node_dist.sample(rng)).collect();
    let mut edges = Vec::with_capacity(n - 1);
    for s in 1..spine {
        edges.push(TreeEdge::new(
            NodeId::new(s - 1),
            NodeId::new(s),
            edge_dist.sample(rng),
        ));
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            edges.push(TreeEdge::new(
                NodeId::new(s),
                NodeId::new(leaf),
                edge_dist.sample(rng),
            ));
        }
    }
    Tree::from_edges(node_weights, edges).expect("caterpillar dimensions are consistent")
}

/// Generates a complete binary tree of the given `depth` (depth 0 = a
/// single node). Total nodes: `2^(depth+1) - 1`.
pub fn balanced_binary<R: Rng + ?Sized>(
    depth: u32,
    node_dist: WeightDist,
    edge_dist: WeightDist,
    rng: &mut R,
) -> Tree {
    let n = (1usize << (depth + 1)) - 1;
    let node_weights: Vec<Weight> = (0..n).map(|_| node_dist.sample(rng)).collect();
    let edges: Vec<TreeEdge> = (1..n)
        .map(|i| {
            TreeEdge::new(
                NodeId::new((i - 1) / 2),
                NodeId::new(i),
                edge_dist.sample(rng),
            )
        })
        .collect();
    Tree::from_edges(node_weights, edges).expect("binary tree dimensions are consistent")
}

/// Generates a ring-shaped process graph (the "circular type logic circuit
/// or network" of Section 3).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring_process_graph<R: Rng + ?Sized>(
    n: usize,
    node_dist: WeightDist,
    edge_dist: WeightDist,
    rng: &mut R,
) -> ProcessGraph {
    assert!(n >= 3, "a ring needs at least three nodes");
    let node_weights: Vec<u64> = (0..n).map(|_| node_dist.sample(rng).get()).collect();
    let edges: Vec<(usize, usize, u64)> = (0..n)
        .map(|i| (i, (i + 1) % n, edge_dist.sample(rng).get()))
        .collect();
    ProcessGraph::from_raw(&node_weights, &edges).expect("ring dimensions are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn uniform_samples_stay_in_range() {
        let d = WeightDist::Uniform { lo: 5, hi: 9 };
        let mut r = rng();
        for _ in 0..1000 {
            let w = d.sample(&mut r).get();
            assert!((5..=9).contains(&w));
        }
        assert_eq!(d.max_value(), 9);
    }

    #[test]
    fn constant_is_constant() {
        let d = WeightDist::Constant(7);
        let mut r = rng();
        assert!((0..100).all(|_| d.sample(&mut r) == Weight::new(7)));
        assert_eq!(d.max_value(), 7);
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let d = WeightDist::Bimodal {
            lo: 1,
            hi: 10,
            heavy_lo: 1000,
            heavy_hi: 2000,
            heavy_permille: 500,
        };
        let mut r = rng();
        let mut light = 0;
        let mut heavy = 0;
        for _ in 0..2000 {
            let w = d.sample(&mut r).get();
            if w <= 10 {
                light += 1;
            } else {
                assert!((1000..=2000).contains(&w));
                heavy += 1;
            }
        }
        assert!(light > 500 && heavy > 500, "light={light} heavy={heavy}");
        assert_eq!(d.max_value(), 2000);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_uniform_range_panics() {
        WeightDist::Uniform { lo: 9, hi: 5 }.sample(&mut rng());
    }

    #[test]
    fn random_chain_shape() {
        let p = random_chain(
            100,
            WeightDist::Uniform { lo: 1, hi: 10 },
            WeightDist::Uniform { lo: 1, hi: 100 },
            &mut rng(),
        );
        assert_eq!(p.len(), 100);
        assert_eq!(p.edge_count(), 99);
        assert!(p.max_node_weight().get() <= 10);
    }

    #[test]
    fn random_chain_is_deterministic_per_seed() {
        let d = WeightDist::Uniform { lo: 1, hi: 1000 };
        let a = random_chain(50, d, d, &mut SmallRng::seed_from_u64(42));
        let b = random_chain(50, d, d, &mut SmallRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn random_tree_is_a_valid_tree() {
        let t = random_tree(
            500,
            WeightDist::Uniform { lo: 1, hi: 5 },
            WeightDist::Uniform { lo: 1, hi: 5 },
            &mut rng(),
        );
        assert_eq!(t.len(), 500);
        assert_eq!(t.edge_count(), 499);
    }

    #[test]
    fn star_shape() {
        let t = star(
            10,
            WeightDist::Constant(1),
            WeightDist::Constant(2),
            &mut rng(),
        );
        assert_eq!(t.degree(NodeId::new(0)), 9);
        assert_eq!(t.leaves().count(), 9);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(
            4,
            3,
            WeightDist::Constant(1),
            WeightDist::Constant(1),
            &mut rng(),
        );
        assert_eq!(t.len(), 16);
        // Spine interior nodes have degree 2 + legs; spine ends 1 + legs.
        assert_eq!(t.degree(NodeId::new(0)), 4);
        assert_eq!(t.degree(NodeId::new(1)), 5);
        assert_eq!(t.leaves().count(), 12);
    }

    #[test]
    fn balanced_binary_shape() {
        let t = balanced_binary(
            3,
            WeightDist::Constant(1),
            WeightDist::Constant(1),
            &mut rng(),
        );
        assert_eq!(t.len(), 15);
        assert_eq!(t.degree(NodeId::new(0)), 2);
        assert_eq!(t.leaves().count(), 8);
    }

    #[test]
    fn ring_shape() {
        let g = ring_process_graph(
            6,
            WeightDist::Constant(1),
            WeightDist::Constant(3),
            &mut rng(),
        );
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 6);
        for v in 0..6 {
            assert_eq!(g.neighbors(NodeId::new(v)).len(), 2);
        }
    }
}
