//! Weighted free trees (tree task graphs).

use crate::{EdgeId, GraphError, NodeId, UnionFind, Weight};

/// An undirected edge of a [`Tree`] with a communication weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeEdge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Communication weight `δ(e)`.
    pub weight: Weight,
}

impl TreeEdge {
    /// Creates an edge between `a` and `b` with the given weight.
    pub fn new(a: NodeId, b: NodeId, weight: Weight) -> Self {
        TreeEdge { a, b, weight }
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!(
                "node {node} is not an endpoint of edge ({}, {})",
                self.a, self.b
            )
        }
    }
}

/// A weighted free (unrooted) tree task graph `T = (V, E)`.
///
/// Vertex weights model processing requirements (`ω` in the paper), edge
/// weights model communication volumes (`δ`). This is the graph class for
/// the paper's bottleneck-minimization (Algorithm 2.1) and
/// processor-minimization (Algorithm 2.2) problems.
///
/// Construction validates that the edge set forms a tree: exactly `n - 1`
/// edges, no self loops, no duplicates, no cycles (which together with the
/// edge count implies connectivity).
///
/// # Examples
///
/// ```
/// use tgp_graph::{NodeId, Tree, Weight};
///
/// # fn main() -> Result<(), tgp_graph::GraphError> {
/// // A star: center v0 with three leaves.
/// let tree = Tree::from_raw(&[1, 2, 3, 4], &[(0, 1, 10), (0, 2, 20), (0, 3, 30)])?;
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.degree(NodeId::new(0)), 3);
/// assert!(tree.is_leaf(NodeId::new(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    node_weights: Vec<Weight>,
    edges: Vec<TreeEdge>,
    /// `adjacency[v]` lists `(neighbor, edge id)` pairs.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Tree {
    /// Builds a tree from vertex weights and an edge list.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if there are no nodes.
    /// * [`GraphError::WrongEdgeCount`] if `edges.len() != nodes - 1`.
    /// * [`GraphError::NodeOutOfRange`] if an edge endpoint is invalid.
    /// * [`GraphError::SelfLoop`] if an edge connects a node to itself.
    /// * [`GraphError::DuplicateEdge`] if two edges connect the same pair.
    /// * [`GraphError::Cycle`] if the edges contain a cycle.
    /// * [`GraphError::WeightOverflow`] if the combined total of all vertex
    ///   and edge weights reaches `u64::MAX` (the crate-wide budget that
    ///   keeps downstream arithmetic overflow-free).
    pub fn from_edges(node_weights: Vec<Weight>, edges: Vec<TreeEdge>) -> Result<Self, GraphError> {
        let n = node_weights.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if edges.len() != n - 1 {
            return Err(GraphError::WrongEdgeCount {
                nodes: n,
                edges: edges.len(),
            });
        }
        let edge_weights: Vec<Weight> = edges.iter().map(|e| e.weight).collect();
        crate::weight::check_combined_total(&node_weights, &edge_weights)?;
        let mut uf = UnionFind::new(n);
        for (i, e) in edges.iter().enumerate() {
            for endpoint in [e.a, e.b] {
                if endpoint.index() >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: endpoint,
                        len: n,
                    });
                }
            }
            if e.a == e.b {
                return Err(GraphError::SelfLoop { node: e.a });
            }
            if !uf.union(e.a.index(), e.b.index()) {
                // The edge closed a cycle; distinguish a parallel edge for a
                // friendlier message.
                if edges[..i]
                    .iter()
                    .any(|f| (f.a, f.b) == (e.a, e.b) || (f.a, f.b) == (e.b, e.a))
                {
                    return Err(GraphError::DuplicateEdge { a: e.a, b: e.b });
                }
                return Err(GraphError::Cycle {
                    edge: EdgeId::new(i),
                });
            }
        }
        // n - 1 successful unions on n nodes guarantee connectivity.
        let mut adjacency = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a.index()].push((e.b, EdgeId::new(i)));
            adjacency[e.b.index()].push((e.a, EdgeId::new(i)));
        }
        Ok(Tree {
            node_weights,
            edges,
            adjacency,
        })
    }

    /// Builds a tree from raw tuples (convenience for tests and examples):
    /// `edges[i] = (a, b, weight)`.
    ///
    /// # Errors
    ///
    /// Same as [`Tree::from_edges`].
    pub fn from_raw(
        node_weights: &[u64],
        edges: &[(usize, usize, u64)],
    ) -> Result<Self, GraphError> {
        Self::from_edges(
            node_weights.iter().copied().map(Weight::new).collect(),
            edges
                .iter()
                .map(|&(a, b, w)| TreeEdge::new(NodeId::new(a), NodeId::new(b), Weight::new(w)))
                .collect(),
        )
    }

    /// Builds a rooted tree from a parent array: node 0 is the root;
    /// `parents[i] = (parent, edge weight)` attaches node `i + 1`.
    ///
    /// This is the natural constructor for trees produced by recursive
    /// decompositions (heaps, divide-and-conquer task trees).
    ///
    /// # Errors
    ///
    /// Same as [`Tree::from_edges`]; additionally every parent index must
    /// be `< i + 1` or [`GraphError::Cycle`]/[`GraphError::NodeOutOfRange`]
    /// is reported by the underlying validation.
    ///
    /// # Examples
    ///
    /// ```
    /// use tgp_graph::{NodeId, Tree, Weight};
    ///
    /// # fn main() -> Result<(), tgp_graph::GraphError> {
    /// // A binary heap shape: node i's parent is (i - 1) / 2.
    /// let tree = Tree::from_parents(
    ///     vec![Weight::new(1); 7],
    ///     &[(0, 5), (0, 5), (1, 3), (1, 3), (2, 3), (2, 3)]
    ///         .map(|(p, w)| (NodeId::new(p), Weight::new(w))),
    /// )?;
    /// assert_eq!(tree.degree(NodeId::new(0)), 2);
    /// assert_eq!(tree.leaves().count(), 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_parents(
        node_weights: Vec<Weight>,
        parents: &[(NodeId, Weight)],
    ) -> Result<Self, GraphError> {
        let edges: Vec<TreeEdge> = parents
            .iter()
            .enumerate()
            .map(|(i, &(p, w))| TreeEdge::new(p, NodeId::new(i + 1), w))
            .collect();
        Self::from_edges(node_weights, edges)
    }

    /// Re-derives the adjacency cache; needed after deserializing, because
    /// the cache is skipped during serialization.
    pub fn rebuild_cache(&mut self) {
        let mut adjacency = vec![Vec::new(); self.node_weights.len()];
        for (i, e) in self.edges.iter().enumerate() {
            adjacency[e.a.index()].push((e.b, EdgeId::new(i)));
            adjacency[e.b.index()].push((e.a, EdgeId::new(i)));
        }
        self.adjacency = adjacency;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_weights.len()
    }

    /// Always `false`: construction rejects empty trees.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges (`n - 1`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Weight `ω(v)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.len()`.
    pub fn node_weight(&self, node: NodeId) -> Weight {
        self.node_weights[node.index()]
    }

    /// All node weights in index order.
    pub fn node_weights(&self) -> &[Weight] {
        &self.node_weights
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `edge.index() >= self.edge_count()`.
    pub fn edge(&self, edge: EdgeId) -> TreeEdge {
        self.edges[edge.index()]
    }

    /// Weight `δ(e)` of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge.index() >= self.edge_count()`.
    pub fn edge_weight(&self, edge: EdgeId) -> Weight {
        self.edges[edge.index()].weight
    }

    /// All edges in id order.
    pub fn edges(&self) -> &[TreeEdge] {
        &self.edges
    }

    /// Total vertex weight of the tree.
    pub fn total_weight(&self) -> Weight {
        self.node_weights.iter().copied().sum()
    }

    /// The maximum single vertex weight (the feasibility floor for the load
    /// bound `K`).
    pub fn max_node_weight(&self) -> Weight {
        self.node_weights
            .iter()
            .copied()
            .max()
            .expect("trees are non-empty")
    }

    /// Degree of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.len()`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// `(neighbor, edge)` pairs incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.len()`.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[node.index()]
    }

    /// Returns `true` if `node` has degree ≤ 1 (a leaf, or the sole node of
    /// a single-vertex tree).
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.degree(node) <= 1
    }

    /// All leaves in index order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len())
            .map(NodeId::new)
            .filter(move |&v| self.is_leaf(v))
    }

    /// All internal (non-leaf) nodes in index order.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len())
            .map(NodeId::new)
            .filter(move |&v| !self.is_leaf(v))
    }

    /// Nodes in post-order of the tree rooted at `root` (children before
    /// parents). Iterative, so arbitrarily deep trees are safe.
    ///
    /// # Panics
    ///
    /// Panics if `root.index() >= self.len()`.
    pub fn post_order(&self, root: NodeId) -> Vec<NodeId> {
        assert!(root.index() < self.len(), "root {root} out of range");
        // Reverse pre-order with children visited right-to-left equals
        // post-order when reversed.
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![(root, root)];
        while let Some((v, parent)) = stack.pop() {
            order.push(v);
            for &(u, _) in self.neighbors(v) {
                if u != parent {
                    stack.push((u, v));
                }
            }
        }
        order.reverse();
        order
    }

    /// For every node, its parent and connecting edge under the rooting at
    /// `root`; `parent[root] = None`.
    ///
    /// # Panics
    ///
    /// Panics if `root.index() >= self.len()`.
    pub fn parents(&self, root: NodeId) -> Vec<Option<(NodeId, EdgeId)>> {
        assert!(root.index() < self.len(), "root {root} out of range");
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; self.len()];
        let mut visited = vec![false; self.len()];
        visited[root.index()] = true;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &(u, e) in self.neighbors(v) {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    parent[u.index()] = Some((v, e));
                    stack.push(u);
                }
            }
        }
        parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The caterpillar 0-1-2-3 with legs 4,5 on node 1 and leg 6 on node 2.
    fn caterpillar() -> Tree {
        Tree::from_raw(
            &[1, 2, 3, 4, 5, 6, 7],
            &[
                (0, 1, 10),
                (1, 2, 20),
                (2, 3, 30),
                (1, 4, 40),
                (1, 5, 50),
                (2, 6, 60),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_happy_path() {
        let t = caterpillar();
        assert_eq!(t.len(), 7);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.total_weight(), Weight::new(28));
        assert_eq!(t.max_node_weight(), Weight::new(7));
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::from_raw(&[5], &[]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.is_leaf(NodeId::new(0)));
        assert_eq!(t.leaves().count(), 1);
        assert_eq!(t.internal_nodes().count(), 0);
        assert_eq!(t.post_order(NodeId::new(0)), vec![NodeId::new(0)]);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Tree::from_raw(&[], &[]), Err(GraphError::Empty));
    }

    #[test]
    fn rejects_wrong_edge_count() {
        assert_eq!(
            Tree::from_raw(&[1, 2, 3], &[(0, 1, 1)]),
            Err(GraphError::WrongEdgeCount { nodes: 3, edges: 1 })
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Tree::from_raw(&[1, 2], &[(1, 1, 5)]),
            Err(GraphError::SelfLoop {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Tree::from_raw(&[1, 2], &[(0, 5, 1)]),
            Err(GraphError::NodeOutOfRange {
                node: NodeId::new(5),
                len: 2
            })
        );
    }

    #[test]
    fn rejects_cycle() {
        assert_eq!(
            Tree::from_raw(&[1, 2, 3, 4], &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]),
            Err(GraphError::Cycle {
                edge: EdgeId::new(2)
            })
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        assert_eq!(
            Tree::from_raw(&[1, 2, 3], &[(0, 1, 1), (1, 0, 2)]),
            Err(GraphError::DuplicateEdge {
                a: NodeId::new(1),
                b: NodeId::new(0)
            })
        );
    }

    #[test]
    fn rejects_disconnected_as_cycle_or_count() {
        // 4 nodes, 3 edges but one is a duplicate pair component: the edge
        // (0,1) twice with (2,3) leaves the graph disconnected; union-find
        // reports the duplicate.
        let err = Tree::from_raw(&[1, 1, 1, 1], &[(0, 1, 1), (0, 1, 2), (2, 3, 1)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::DuplicateEdge {
                a: NodeId::new(0),
                b: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_weight_overflow() {
        assert_eq!(
            Tree::from_raw(&[u64::MAX, 1], &[(0, 1, 1)]),
            Err(GraphError::WeightOverflow)
        );
    }

    #[test]
    fn degrees_and_leaves() {
        let t = caterpillar();
        assert_eq!(t.degree(NodeId::new(1)), 4);
        assert_eq!(t.degree(NodeId::new(0)), 1);
        let leaves: Vec<usize> = t.leaves().map(NodeId::index).collect();
        assert_eq!(leaves, vec![0, 3, 4, 5, 6]);
        let internal: Vec<usize> = t.internal_nodes().map(NodeId::index).collect();
        assert_eq!(internal, vec![1, 2]);
    }

    #[test]
    fn edge_accessors() {
        let t = caterpillar();
        let e = t.edge(EdgeId::new(1));
        assert_eq!((e.a, e.b), (NodeId::new(1), NodeId::new(2)));
        assert_eq!(e.weight, Weight::new(20));
        assert_eq!(e.other(NodeId::new(1)), NodeId::new(2));
        assert_eq!(e.other(NodeId::new(2)), NodeId::new(1));
        assert_eq!(t.edge_weight(EdgeId::new(5)), Weight::new(60));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let t = caterpillar();
        t.edge(EdgeId::new(0)).other(NodeId::new(6));
    }

    #[test]
    fn post_order_visits_children_first() {
        let t = caterpillar();
        let order = t.post_order(NodeId::new(0));
        assert_eq!(order.len(), 7);
        let pos = |v: usize| order.iter().position(|&x| x == NodeId::new(v)).unwrap();
        // Root last; every child precedes its parent under rooting at 0.
        assert_eq!(order.last(), Some(&NodeId::new(0)));
        assert!(pos(2) < pos(1));
        assert!(pos(4) < pos(1));
        assert!(pos(5) < pos(1));
        assert!(pos(3) < pos(2));
        assert!(pos(6) < pos(2));
    }

    #[test]
    fn parents_under_rooting() {
        let t = caterpillar();
        let parent = t.parents(NodeId::new(0));
        assert_eq!(parent[0], None);
        assert_eq!(parent[1].unwrap().0, NodeId::new(0));
        assert_eq!(parent[2].unwrap().0, NodeId::new(1));
        assert_eq!(parent[3].unwrap().0, NodeId::new(2));
        assert_eq!(parent[4].unwrap().0, NodeId::new(1));
    }

    #[test]
    fn deep_path_post_order_does_not_overflow_stack() {
        let n = 200_000;
        let weights = vec![1u64; n];
        let edges: Vec<(usize, usize, u64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        let t = Tree::from_raw(&weights, &edges).unwrap();
        let order = t.post_order(NodeId::new(0));
        assert_eq!(order.len(), n);
        assert_eq!(order[0], NodeId::new(n - 1));
        assert_eq!(order[n - 1], NodeId::new(0));
    }

    #[test]
    fn rebuild_cache_restores_adjacency() {
        let mut t = caterpillar();
        t.adjacency.clear();
        t.rebuild_cache();
        assert_eq!(t.degree(NodeId::new(1)), 4);
    }
}
