//! Tree super-graph approximation of a general process graph.
//!
//! The paper's conclusion: "more general cases may be approximated by
//! generating a linear **or tree** supergraph of the original process
//! graph". The tree variant keeps a *maximum-weight spanning tree* of the
//! process graph: the heaviest-communication pairs stay adjacent in the
//! tree (so the tree algorithms try hard to keep them together), and every
//! dropped non-tree edge is the lightest one on some cycle.
//!
//! A cut of the spanning tree under-estimates the true cut cost (dropped
//! edges may also cross the partition); callers evaluate candidate
//! partitions back on the original graph — see
//! [`TreeSupergraph::cut_cost_on_graph`].

use crate::{Components, CutSet, NodeId, ProcessGraph, Tree, TreeEdge, UnionFind, Weight};

/// A maximum-weight spanning tree of a process graph, with the mapping
/// back to the original edges.
#[derive(Debug, Clone)]
pub struct TreeSupergraph {
    tree: Tree,
    /// `graph_edge[t]` = index into the process graph's edge list of the
    /// edge that became tree edge `t`.
    graph_edge: Vec<usize>,
}

impl TreeSupergraph {
    /// The spanning tree (same node ids and weights as the process graph).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The process-graph edge index behind tree edge `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn graph_edge(&self, t: crate::EdgeId) -> usize {
        self.graph_edge[t.index()]
    }

    /// Evaluates a spanning-tree cut on the *original* process graph:
    /// total weight of all graph edges whose endpoints land in different
    /// components (including non-tree edges the approximation ignored).
    ///
    /// # Panics
    ///
    /// Panics if `cut` does not fit the spanning tree or `g` is not the
    /// graph this super-graph was built from.
    pub fn cut_cost_on_graph(&self, g: &ProcessGraph, cut: &CutSet) -> Weight {
        let comps = self
            .tree
            .components(cut)
            .expect("cut must fit the spanning tree");
        let mut total = Weight::ZERO;
        for e in g.edges() {
            if comps.component_of(e.a) != comps.component_of(e.b) {
                total += e.weight;
            }
        }
        total
    }

    /// The components a spanning-tree cut induces (valid for the process
    /// graph too, since the node sets coincide).
    ///
    /// # Panics
    ///
    /// Panics if `cut` does not fit the spanning tree.
    pub fn components(&self, cut: &CutSet) -> Components {
        self.tree
            .components(cut)
            .expect("cut must fit the spanning tree")
    }
}

/// Builds the maximum-weight spanning tree super-graph of `g` (Kruskal on
/// descending edge weight; ties broken by edge index for determinism).
///
/// # Examples
///
/// ```
/// use tgp_graph::spanning::tree_supergraph;
/// use tgp_graph::ProcessGraph;
///
/// # fn main() -> Result<(), tgp_graph::GraphError> {
/// // A triangle: the lightest edge (weight 2) is dropped.
/// let g = ProcessGraph::from_raw(&[1, 1, 1], &[(0, 1, 5), (1, 2, 7), (2, 0, 2)])?;
/// let sup = tree_supergraph(&g);
/// assert_eq!(sup.tree().edge_count(), 2);
/// let kept: u64 = sup.tree().edges().iter().map(|e| e.weight.get()).sum();
/// assert_eq!(kept, 12);
/// # Ok(())
/// # }
/// ```
pub fn tree_supergraph(g: &ProcessGraph) -> TreeSupergraph {
    let n = g.len();
    let mut order: Vec<usize> = (0..g.edge_count()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(g.edges()[i].weight), i));
    let mut uf = UnionFind::new(n);
    let mut edges: Vec<TreeEdge> = Vec::with_capacity(n - 1);
    let mut graph_edge = Vec::with_capacity(n - 1);
    for i in order {
        let e = g.edges()[i];
        if uf.union(e.a.index(), e.b.index()) {
            edges.push(TreeEdge::new(e.a, e.b, e.weight));
            graph_edge.push(i);
            if edges.len() == n - 1 {
                break;
            }
        }
    }
    debug_assert_eq!(edges.len(), n - 1, "connected graphs span fully");
    let node_weights: Vec<Weight> = (0..n).map(|v| g.node_weight(NodeId::new(v))).collect();
    let tree = Tree::from_edges(node_weights, edges).expect("a spanning tree is a valid tree");
    TreeSupergraph { tree, graph_edge }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeId;

    fn ring_with_chord() -> ProcessGraph {
        ProcessGraph::from_raw(
            &[1, 2, 3, 4, 5],
            &[
                (0, 1, 10),
                (1, 2, 20),
                (2, 3, 30),
                (3, 4, 40),
                (4, 0, 50),
                (1, 3, 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn keeps_heavy_edges() {
        let g = ring_with_chord();
        let sup = tree_supergraph(&g);
        assert_eq!(sup.tree().len(), 5);
        assert_eq!(sup.tree().edge_count(), 4);
        let kept: Vec<u64> = sup.tree().edges().iter().map(|e| e.weight.get()).collect();
        // Heaviest four of {10, 20, 30, 40, 50, 5} that stay acyclic:
        // 50, 40, 30, 20.
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![20, 30, 40, 50]);
    }

    #[test]
    fn node_weights_carry_over() {
        let g = ring_with_chord();
        let sup = tree_supergraph(&g);
        for v in 0..5 {
            assert_eq!(
                sup.tree().node_weight(NodeId::new(v)),
                g.node_weight(NodeId::new(v))
            );
        }
        assert_eq!(sup.tree().total_weight(), g.total_weight());
    }

    #[test]
    fn graph_edge_mapping_is_consistent() {
        let g = ring_with_chord();
        let sup = tree_supergraph(&g);
        for t in 0..sup.tree().edge_count() {
            let te = sup.tree().edge(EdgeId::new(t));
            let ge = g.edges()[sup.graph_edge(EdgeId::new(t))];
            assert_eq!((te.a, te.b, te.weight), (ge.a, ge.b, ge.weight));
        }
    }

    #[test]
    fn cut_cost_on_graph_counts_dropped_edges() {
        let g = ring_with_chord();
        let sup = tree_supergraph(&g);
        // Empty cut: one component, zero crossing cost.
        assert_eq!(sup.cut_cost_on_graph(&g, &CutSet::empty()), Weight::ZERO);
        // Any single tree-edge cut: the true cost includes the dropped
        // ring edge (10) and possibly the chord, so it is at least the
        // tree edge's own weight.
        for t in 0..sup.tree().edge_count() {
            let cut = CutSet::new(vec![EdgeId::new(t)]);
            let true_cost = sup.cut_cost_on_graph(&g, &cut);
            let tree_cost = sup.tree().cut_weight(&cut).unwrap();
            assert!(true_cost >= tree_cost, "tree cost under-estimates");
            let comps = sup.components(&cut);
            assert_eq!(comps.count(), 2);
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let g = ProcessGraph::from_raw(&[1, 1, 1], &[(0, 1, 5), (1, 2, 5), (2, 0, 5)]).unwrap();
        let a = tree_supergraph(&g);
        let b = tree_supergraph(&g);
        assert_eq!(a.tree(), b.tree());
        // Ties broken by edge index: edges (0,1) and (1,2) kept.
        assert_eq!(a.graph_edge(EdgeId::new(0)), 0);
        assert_eq!(a.graph_edge(EdgeId::new(1)), 1);
    }

    #[test]
    fn single_node_graph() {
        let g = ProcessGraph::from_raw(&[7], &[]).unwrap();
        let sup = tree_supergraph(&g);
        assert_eq!(sup.tree().len(), 1);
        assert_eq!(sup.tree().edge_count(), 0);
    }
}
