//! The [`Weight`] newtype used for all vertex and edge weights.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A non-negative integral weight.
///
/// Vertex weights model processing requirements (e.g. instruction counts),
/// edge weights model communication volumes (e.g. bits transferred), exactly
/// as in Section 1 of the paper. Arithmetic is checked: overflow or underflow
/// panics with a descriptive message rather than silently wrapping, because a
/// wrapped weight would corrupt every feasibility decision downstream.
///
/// # Examples
///
/// ```
/// use tgp_graph::Weight;
///
/// let a = Weight::new(3);
/// let b = Weight::new(4);
/// assert_eq!(a + b, Weight::new(7));
/// assert_eq!((a + b).get(), 7);
/// assert!(a < b);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight(u64);

impl Weight {
    /// The zero weight.
    pub const ZERO: Weight = Weight(0);

    /// The maximum representable weight.
    pub const MAX: Weight = Weight(u64::MAX);

    /// Creates a weight from a raw value.
    ///
    /// # Examples
    ///
    /// ```
    /// use tgp_graph::Weight;
    /// assert_eq!(Weight::new(5).get(), 5);
    /// ```
    #[inline]
    pub const fn new(value: u64) -> Self {
        Weight(value)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if the weight is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use tgp_graph::Weight;
    /// assert!(Weight::ZERO.is_zero());
    /// assert!(!Weight::new(1).is_zero());
    /// ```
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; returns `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Weight) -> Option<Weight> {
        self.0.checked_add(rhs.0).map(Weight)
    }

    /// Checked subtraction; returns `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: Weight) -> Option<Weight> {
        self.0.checked_sub(rhs.0).map(Weight)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Weight) -> Weight {
        Weight(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: Weight) -> Weight {
        Weight(self.0.saturating_sub(rhs.0))
    }
}

/// Validates the crate-wide weight budget: the combined total of all
/// vertex and edge weights must be strictly below `u64::MAX`, so that any
/// sum of distinct weights (span weights, cut weights, dynamic-programming
/// costs of the form "edge weight + sum of other weights") fits `u64`
/// without overflow, and `u64::MAX` stays free as an "unset" sentinel in
/// the solvers.
pub(crate) fn check_combined_total(
    node_weights: &[Weight],
    edge_weights: &[Weight],
) -> Result<(), crate::GraphError> {
    let mut total: u128 = 0;
    for w in node_weights.iter().chain(edge_weights) {
        total += u128::from(w.get());
    }
    if total >= u128::from(u64::MAX) {
        return Err(crate::GraphError::WeightOverflow);
    }
    Ok(())
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Weight {
    #[inline]
    fn from(value: u64) -> Self {
        Weight(value)
    }
}

impl From<u32> for Weight {
    #[inline]
    fn from(value: u32) -> Self {
        Weight(u64::from(value))
    }
}

impl From<Weight> for u64 {
    #[inline]
    fn from(value: Weight) -> Self {
        value.0
    }
}

impl Add for Weight {
    type Output = Weight;

    /// # Panics
    ///
    /// Panics if the sum overflows `u64`.
    #[inline]
    fn add(self, rhs: Weight) -> Weight {
        Weight(
            self.0
                .checked_add(rhs.0)
                .expect("weight addition overflowed u64"),
        )
    }
}

impl AddAssign for Weight {
    #[inline]
    fn add_assign(&mut self, rhs: Weight) {
        *self = *self + rhs;
    }
}

impl Sub for Weight {
    type Output = Weight;

    /// # Panics
    ///
    /// Panics if the difference underflows (would be negative).
    #[inline]
    fn sub(self, rhs: Weight) -> Weight {
        Weight(
            self.0
                .checked_sub(rhs.0)
                .expect("weight subtraction underflowed"),
        )
    }
}

impl SubAssign for Weight {
    #[inline]
    fn sub_assign(&mut self, rhs: Weight) {
        *self = *self - rhs;
    }
}

impl Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        iter.fold(Weight::ZERO, |acc, w| acc + w)
    }
}

impl<'a> Sum<&'a Weight> for Weight {
    fn sum<I: Iterator<Item = &'a Weight>>(iter: I) -> Weight {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Weight::new(7).get(), 7);
        assert_eq!(Weight::default(), Weight::ZERO);
        assert!(Weight::ZERO.is_zero());
        assert!(!Weight::new(1).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Weight::new(10);
        let b = Weight::new(3);
        assert_eq!(a + b, Weight::new(13));
        assert_eq!(a - b, Weight::new(7));
        let mut c = a;
        c += b;
        assert_eq!(c, Weight::new(13));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn checked_arithmetic() {
        assert_eq!(Weight::MAX.checked_add(Weight::new(1)), None);
        assert_eq!(Weight::ZERO.checked_sub(Weight::new(1)), None);
        assert_eq!(
            Weight::new(2).checked_add(Weight::new(3)),
            Some(Weight::new(5))
        );
        assert_eq!(Weight::MAX.saturating_add(Weight::new(1)), Weight::MAX);
        assert_eq!(Weight::ZERO.saturating_sub(Weight::new(1)), Weight::ZERO);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = Weight::MAX + Weight::new(1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Weight::ZERO - Weight::new(1);
    }

    #[test]
    fn ordering_and_sum() {
        assert!(Weight::new(1) < Weight::new(2));
        let ws = [Weight::new(1), Weight::new(2), Weight::new(3)];
        let total: Weight = ws.iter().sum();
        assert_eq!(total, Weight::new(6));
        let total2: Weight = ws.into_iter().sum();
        assert_eq!(total2, Weight::new(6));
    }

    #[test]
    fn conversions() {
        assert_eq!(Weight::from(5u64), Weight::new(5));
        assert_eq!(Weight::from(5u32), Weight::new(5));
        assert_eq!(u64::from(Weight::new(5)), 5);
    }

    #[test]
    fn display_is_raw_value() {
        assert_eq!(Weight::new(42).to_string(), "42");
    }
}
