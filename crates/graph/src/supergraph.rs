//! Linear super-graph approximation of a general process graph.
//!
//! Section 3 of the paper: "for a more general system, we may first
//! approximate the original system by generating a super-graph, which is
//! linear, from the process graph, then apply the algorithm to the
//! super-graph."
//!
//! The approximation works in two steps:
//!
//! 1. Arrange the processes on a line (a *linear ordering*). We provide the
//!    identity ordering and a BFS ordering from a pseudo-peripheral node
//!    (which keeps neighbours close for circular/linear-ish systems, the
//!    case the paper targets).
//! 2. Build a [`PathGraph`] whose node `i` is the `i`-th process in the
//!    ordering, and whose edge `i` carries the total weight of original
//!    edges *crossing the boundary* between positions `≤ i` and `> i`.
//!
//! Cutting boundary `i` of the super-graph then costs exactly the message
//! volume that would cross that boundary. For an original edge spanning
//! several boundaries of which more than one is cut, the model counts it at
//! each cut boundary — an over-estimate, which is why this is an
//! *approximation* (exact for circular/linear systems where edges connect
//! near neighbours).

use crate::{GraphError, NodeId, PathGraph, ProcessGraph, Weight};

/// How to arrange the processes on a line before building the super-graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum LinearOrdering {
    /// Keep the node-index order (appropriate when the system is already
    /// pipeline-shaped).
    Identity,
    /// Breadth-first order from a pseudo-peripheral node (double BFS sweep).
    #[default]
    BfsFromPeriphery,
}

/// The linear super-graph of a process graph together with the ordering
/// used to build it.
#[derive(Debug, Clone)]
pub struct LinearSupergraph {
    path: PathGraph,
    /// `order[i]` = the process placed at position `i`.
    order: Vec<NodeId>,
    /// `position[v]` = the position of process `v`.
    position: Vec<usize>,
}

impl LinearSupergraph {
    /// The resulting path graph.
    pub fn path(&self) -> &PathGraph {
        &self.path
    }

    /// The process placed at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn process_at(&self, i: usize) -> NodeId {
        self.order[i]
    }

    /// The position of process `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position_of(&self, v: NodeId) -> usize {
        self.position[v.index()]
    }

    /// The full ordering.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }
}

/// Builds the linear super-graph of `g` under the given ordering.
///
/// # Errors
///
/// [`GraphError::WeightOverflow`] if a boundary weight or the total vertex
/// weight overflows `u64`.
///
/// # Examples
///
/// ```
/// use tgp_graph::supergraph::{linear_supergraph, LinearOrdering};
/// use tgp_graph::{ProcessGraph, Weight};
///
/// # fn main() -> Result<(), tgp_graph::GraphError> {
/// let ring = ProcessGraph::from_raw(
///     &[1, 1, 1, 1],
///     &[(0, 1, 10), (1, 2, 10), (2, 3, 10), (3, 0, 10)],
/// )?;
/// let sup = linear_supergraph(&ring, LinearOrdering::Identity)?;
/// assert_eq!(sup.path().len(), 4);
/// // Boundary 0 is crossed by edges (0,1) and (3,0): weight 20.
/// assert_eq!(sup.path().edge_weights()[0], Weight::new(20));
/// # Ok(())
/// # }
/// ```
pub fn linear_supergraph(
    g: &ProcessGraph,
    ordering: LinearOrdering,
) -> Result<LinearSupergraph, GraphError> {
    let order: Vec<NodeId> = match ordering {
        LinearOrdering::Identity => (0..g.len()).map(NodeId::new).collect(),
        LinearOrdering::BfsFromPeriphery => g.bfs_order(g.peripheral_node()),
    };
    debug_assert_eq!(order.len(), g.len());
    let mut position = vec![0usize; g.len()];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let node_weights: Vec<Weight> = order.iter().map(|&v| g.node_weight(v)).collect();
    // boundary_weight[i] = Σ weight of edges (u, v) with
    // position[u] <= i < position[v]. Computed by a sweep over a difference
    // array: an edge spanning positions [lo, hi) contributes to boundaries
    // lo..hi.
    let n = g.len();
    let mut diff = vec![0i128; n + 1];
    for e in g.edges() {
        let (mut lo, mut hi) = (position[e.a.index()], position[e.b.index()]);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        diff[lo] += i128::from(e.weight.get());
        diff[hi] -= i128::from(e.weight.get());
    }
    let mut edge_weights = Vec::with_capacity(n.saturating_sub(1));
    let mut acc: i128 = 0;
    for d in diff.iter().take(n.saturating_sub(1)) {
        acc += d;
        let w = u64::try_from(acc).map_err(|_| GraphError::WeightOverflow)?;
        edge_weights.push(Weight::new(w));
    }
    let path = PathGraph::from_weights(node_weights, edge_weights)?;
    Ok(LinearSupergraph {
        path,
        order,
        position,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_a_path_graph_is_exact() {
        // A process graph that is already a path: super-graph must be it.
        let g =
            ProcessGraph::from_raw(&[2, 3, 5, 7], &[(0, 1, 10), (1, 2, 20), (2, 3, 30)]).unwrap();
        let sup = linear_supergraph(&g, LinearOrdering::Identity).unwrap();
        assert_eq!(sup.path().node_weights(), g.node_weights());
        let ws: Vec<u64> = sup.path().edge_weights().iter().map(|w| w.get()).collect();
        assert_eq!(ws, vec![10, 20, 30]);
    }

    #[test]
    fn ring_boundaries_count_both_crossing_edges() {
        let ring = ProcessGraph::from_raw(
            &[1, 1, 1, 1],
            &[(0, 1, 10), (1, 2, 20), (2, 3, 30), (3, 0, 40)],
        )
        .unwrap();
        let sup = linear_supergraph(&ring, LinearOrdering::Identity).unwrap();
        let ws: Vec<u64> = sup.path().edge_weights().iter().map(|w| w.get()).collect();
        // Boundary 0: edges (0,1) + (0,3) = 50; boundary 1: (1,2) + (0,3) = 60;
        // boundary 2: (2,3) + (0,3) = 70.
        assert_eq!(ws, vec![50, 60, 70]);
    }

    #[test]
    fn bfs_ordering_is_a_permutation_and_positions_invert_it() {
        let g = ProcessGraph::from_raw(
            &[1, 1, 1, 1, 1],
            &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 4, 1), (3, 4, 1)],
        )
        .unwrap();
        let sup = linear_supergraph(&g, LinearOrdering::BfsFromPeriphery).unwrap();
        let mut seen = [false; 5];
        for i in 0..5 {
            let v = sup.process_at(i);
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
            assert_eq!(sup.position_of(v), i);
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(sup.order().len(), 5);
    }

    #[test]
    fn single_process_supergraph() {
        let g = ProcessGraph::from_raw(&[9], &[]).unwrap();
        let sup = linear_supergraph(&g, LinearOrdering::default()).unwrap();
        assert_eq!(sup.path().len(), 1);
        assert_eq!(sup.path().edge_count(), 0);
    }

    #[test]
    fn total_weight_is_preserved() {
        let g = ProcessGraph::from_raw(&[2, 4, 8], &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
        for ordering in [LinearOrdering::Identity, LinearOrdering::BfsFromPeriphery] {
            let sup = linear_supergraph(&g, ordering).unwrap();
            assert_eq!(sup.path().total_weight(), g.total_weight());
        }
    }
}
