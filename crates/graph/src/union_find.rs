//! Disjoint-set (union-find) structure with union by size and path halving.

/// A disjoint-set forest over `0..len` with union by size and path halving.
///
/// Used for tree validation, the optimized bottleneck-minimization sweep,
/// and component bookkeeping. Amortized cost per operation is effectively
/// constant (inverse Ackermann).
///
/// # Examples
///
/// ```
/// use tgp_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.find(0), uf.find(1));
/// assert_ne!(uf.find(0), uf.find(2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements in the structure.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Returns the canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if two distinct sets were merged, `false` if `a` and
    /// `b` were already in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }
}

/// A compact [`UnionFind`] over `u32` indices — half the memory, same
/// semantics.
///
/// The out-of-core solvers allocate a disjoint-set forest over every
/// node of a graph that may itself barely fit in the memory budget, so
/// the forest's footprint is load-bearing: 8 bytes per element here
/// versus 16 for [`UnionFind`]. Capacity is capped at `u32::MAX`
/// elements, which every flat graph already guarantees
/// (`FlatTreeBuilder` refuses larger node counts).
///
/// # Examples
///
/// ```
/// use tgp_graph::UnionFind32;
///
/// let mut uf = UnionFind32::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0));
/// assert_eq!(uf.find(0), uf.find(1));
/// assert_eq!(uf.component_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind32 {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind32 {
    /// Creates `len` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `len > u32::MAX`; use [`UnionFind`] for larger
    /// universes.
    pub fn new(len: usize) -> Self {
        assert!(
            u32::try_from(len).is_ok(),
            "UnionFind32 holds at most u32::MAX elements (got {len})"
        );
        UnionFind32 {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements in the structure.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Returns the canonical representative of `x`'s set, with path
    /// halving.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets containing `a` and `b` (union by size).
    ///
    /// Returns `true` if two distinct sets were merged.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 4);
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 3));
    }

    #[test]
    fn chain_of_unions_converges_to_one_component() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.set_size(0), n);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    fn compact_matches_wide_on_random_unions() {
        // xorshift-driven random union sequence; both structures must
        // agree on every merge outcome and component count.
        let n = 257usize;
        let mut wide = UnionFind::new(n);
        let mut compact = UnionFind32::new(n);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x as usize) % n;
            let b = ((x >> 32) as usize) % n;
            assert_eq!(wide.union(a, b), compact.union(a as u32, b as u32));
            assert_eq!(wide.component_count(), compact.component_count());
            assert_eq!(
                wide.same_set(a, b),
                compact.find(a as u32) == compact.find(b as u32)
            );
        }
        assert_eq!(compact.len(), n);
        assert!(!compact.is_empty());
    }

    #[test]
    #[should_panic(expected = "at most u32::MAX")]
    fn compact_refuses_oversized_universe() {
        let _ = UnionFind32::new(u32::MAX as usize + 1);
    }
}
