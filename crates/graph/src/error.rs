//! Error type for graph construction and queries.

use std::error::Error;
use std::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced when constructing or querying graphs.
///
/// Every constructor in this crate validates its input (C-VALIDATE); the
/// variants below describe exactly which invariant was violated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph must contain at least one node.
    Empty,
    /// A graph with `nodes` nodes must have exactly `nodes - 1` edges to be
    /// a path or tree; `edges` were supplied.
    WrongEdgeCount {
        /// Number of nodes supplied.
        nodes: usize,
        /// Number of edges supplied.
        edges: usize,
    },
    /// An edge refers to a node index outside `0..len`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop {
        /// The node with the self loop.
        node: NodeId,
    },
    /// The supplied edges contain a cycle (so the graph is not a tree).
    Cycle {
        /// The edge whose insertion closed a cycle.
        edge: EdgeId,
    },
    /// The supplied edges leave the graph disconnected.
    Disconnected,
    /// Two parallel edges connect the same pair of nodes.
    DuplicateEdge {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// An edge id is outside `0..edge_count`.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// Number of edges in the graph.
        len: usize,
    },
    /// The total weight of the graph overflows `u64`.
    WeightOverflow,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph must contain at least one node"),
            GraphError::WrongEdgeCount { nodes, edges } => write!(
                f,
                "a path or tree on {nodes} node(s) needs exactly {} edge(s), got {edges}",
                nodes - 1
            ),
            GraphError::NodeOutOfRange { node, len } => {
                write!(
                    f,
                    "node {node} is out of range for a graph of {len} node(s)"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::Cycle { edge } => write!(f, "edge {edge} closes a cycle"),
            GraphError::Disconnected => write!(f, "graph is disconnected"),
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "duplicate edge between {a} and {b}")
            }
            GraphError::EdgeOutOfRange { edge, len } => {
                write!(
                    f,
                    "edge {edge} is out of range for a graph of {len} edge(s)"
                )
            }
            GraphError::WeightOverflow => write!(f, "total graph weight overflows u64"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::Empty, "at least one node"),
            (
                GraphError::WrongEdgeCount { nodes: 3, edges: 5 },
                "needs exactly 2 edge(s), got 5",
            ),
            (
                GraphError::NodeOutOfRange {
                    node: NodeId::new(9),
                    len: 3,
                },
                "v9 is out of range",
            ),
            (
                GraphError::SelfLoop {
                    node: NodeId::new(1),
                },
                "self loop at node v1",
            ),
            (
                GraphError::Cycle {
                    edge: EdgeId::new(2),
                },
                "e2 closes a cycle",
            ),
            (GraphError::Disconnected, "disconnected"),
            (
                GraphError::DuplicateEdge {
                    a: NodeId::new(0),
                    b: NodeId::new(1),
                },
                "duplicate edge",
            ),
            (
                GraphError::EdgeOutOfRange {
                    edge: EdgeId::new(4),
                    len: 2,
                },
                "e4 is out of range",
            ),
            (GraphError::WeightOverflow, "overflows"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error messages start lowercase: {msg:?}"
            );
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
